//! PyG-T-style training loops, mirroring `stgraph::train` so the harness
//! can time both frameworks on identical work. The baseline stores every
//! DTDG snapshot fully materialised ([`BaselineDtdg`]) — the storage
//! behaviour the paper's Figure 8 sweep exposes.

use crate::coo::CooGraph;
use crate::model::BaselineTgcn;
use rand::Rng;
use std::rc::Rc;
use stgraph_dyngraph::DtdgSource;
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::optim::Adam;
use stgraph_tensor::{Tape, Tensor, Var};

/// A DTDG stored PyG-T style: one fully-materialised COO per timestamp,
/// resident for the whole training run.
pub struct BaselineDtdg {
    /// Per-timestamp graphs.
    pub snapshots: Vec<CooGraph>,
}

impl BaselineDtdg {
    /// Materialises every snapshot upfront.
    pub fn new(source: &DtdgSource) -> BaselineDtdg {
        BaselineDtdg {
            snapshots: source
                .snapshots
                .iter()
                .map(|edges| CooGraph::new(source.num_nodes, edges))
                .collect(),
        }
    }

    /// Number of timestamps.
    pub fn num_timestamps(&self) -> usize {
        self.snapshots.len()
    }
}

/// Baseline TGCN + readout for node regression (mirrors
/// `stgraph::train::NodeRegressor` including parameter order).
pub struct BaselineRegressor {
    /// The recurrent cell.
    pub cell: BaselineTgcn,
    readout: Linear,
}

impl BaselineRegressor {
    /// Wraps a cell with a readout head.
    pub fn new(
        params: &mut ParamSet,
        cell: BaselineTgcn,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> BaselineRegressor {
        let readout = Linear::new(params, "readout", cell.hidden_size(), out_dim, true, rng);
        BaselineRegressor { cell, readout }
    }

    /// One step: `(prediction, new_hidden)`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        graph: &CooGraph,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> (Var<'t>, Var<'t>) {
        let h_new = self.cell.step(tape, graph, x, h);
        let pred = self.readout.forward(tape, &h_new.relu());
        (pred, h_new)
    }
}

impl stgraph_tensor::StateDict for BaselineRegressor {
    fn parameters(&self) -> Vec<stgraph_tensor::Param> {
        let mut out = stgraph_tensor::StateDict::parameters(&self.cell);
        out.extend(stgraph_tensor::StateDict::parameters(&self.readout));
        out
    }
}

/// One epoch of node regression on a static graph (same sequence split and
/// detach-across-sequences policy as `stgraph::train`).
pub fn train_epoch_node_regression(
    model: &BaselineRegressor,
    graph: &CooGraph,
    opt: &mut Adam,
    features: &[Tensor],
    targets: &[Tensor],
    seq_len: usize,
) -> f32 {
    let total = features.len();
    let mut carried: Option<Tensor> = None;
    let mut epoch_loss = 0.0f64;
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        opt.zero_grad();
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        #[allow(clippy::needless_range_loop)] // t is a timestamp, not just an index
        for t in start..end {
            let x = tape.constant(features[t].clone());
            let (pred, h_new) = model.forward(&tape, graph, &x, h.as_ref());
            let l = pred.mse_loss(&targets[t]);
            seq_loss = Some(match seq_loss {
                Some(acc) => acc.add(&l),
                None => l,
            });
            h = Some(h_new);
        }
        let loss = seq_loss.unwrap().mul_scalar(1.0 / (end - start) as f32);
        epoch_loss += loss.value().item() as f64 * (end - start) as f64;
        carried = h.map(|v| v.value().clone());
        tape.backward(&loss);
        opt.step();
        start = end;
    }
    (epoch_loss / total as f64) as f32
}

/// One epoch of link prediction over a fully-materialised DTDG, mirroring
/// `stgraph::train::train_epoch_link_prediction` (same batches type).
pub fn train_epoch_link_prediction(
    cell: &BaselineTgcn,
    dtdg: &BaselineDtdg,
    opt: &mut Adam,
    features: &Tensor,
    batches: &[stgraph::train::LinkPredBatch],
    seq_len: usize,
) -> f32 {
    let total = batches.len();
    let mut carried: Option<Tensor> = None;
    let mut epoch_loss = 0.0f64;
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        opt.zero_grad();
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        #[allow(clippy::needless_range_loop)] // t is a timestamp, not just an index
        for t in start..end {
            let x = tape.constant(features.clone());
            let h_new = cell.step(&tape, &dtdg.snapshots[t], &x, h.as_ref());
            let batch = &batches[t];
            let hu = h_new.gather_rows(Rc::clone(&batch.src));
            let hv = h_new.gather_rows(Rc::clone(&batch.dst));
            let logits = hu.mul(&hv).sum_cols();
            let l = logits.bce_with_logits_loss(&batch.labels);
            seq_loss = Some(match seq_loss {
                Some(acc) => acc.add(&l),
                None => l,
            });
            h = Some(h_new);
        }
        let loss = seq_loss.unwrap().mul_scalar(1.0 / (end - start) as f32);
        epoch_loss += loss.value().item() as f64 * (end - start) as f64;
        carried = h.map(|v| v.value().clone());
        tape.backward(&loss);
        opt.step();
        start = end;
    }
    (epoch_loss / total as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn baseline_regression_loss_decreases() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let graph = CooGraph::new(n, &edges);
        let mut ps = ParamSet::new();
        let cell = BaselineTgcn::new(&mut ps, "t", 3, 6, &mut rng);
        let model = BaselineRegressor::new(&mut ps, cell, 1, &mut rng);
        let mut opt = Adam::new(ps, 0.01);
        let feats: Vec<Tensor> = (0..8)
            .map(|_| Tensor::rand_uniform((n, 3), -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Tensor> = feats
            .iter()
            .map(|x| x.sum_axis1().mul_scalar(1.0 / 3.0).reshape((n, 1)))
            .collect();
        let first = train_epoch_node_regression(&model, &graph, &mut opt, &feats, &targets, 4);
        let mut last = first;
        for _ in 0..30 {
            last = train_epoch_node_regression(&model, &graph, &mut opt, &feats, &targets, 4);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    fn baseline_dtdg_materialises_all_snapshots() {
        let src = DtdgSource::from_snapshot_edges(
            4,
            vec![vec![(0, 1)], vec![(0, 1), (1, 2)], vec![(1, 2)]],
        );
        let d = BaselineDtdg::new(&src);
        assert_eq!(d.num_timestamps(), 3);
        assert_eq!(d.snapshots[1].num_real_edges, 2);
    }
}
