//! COO graph storage, PyG style: flat `src`/`dst` edge-index arrays with
//! self-loops appended and per-edge GCN normalisation coefficients
//! precomputed. PyG-T stores every DTDG snapshot in this form, fully
//! materialised — the storage behaviour Figure 8 compares against.

use std::rc::Rc;
use stgraph_tensor::mem::BytesCharge;
use stgraph_tensor::Tensor;

/// A PyG-style COO graph with self-loops and GCN edge weights.
pub struct CooGraph {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Source endpoint per edge (self-loops appended at the end).
    pub src: Rc<Vec<u32>>,
    /// Destination endpoint per edge.
    pub dst: Rc<Vec<u32>>,
    /// Per-edge weight `norm[src] * norm[dst]` with
    /// `norm = 1/sqrt(1 + in_degree)` — identical math to STGraph's GCN,
    /// so the two frameworks are numerically equivalent.
    pub edge_norm: Tensor,
    /// Number of original (non-self-loop) edges.
    pub num_real_edges: usize,
    _charge: BytesCharge,
}

impl CooGraph {
    /// Builds the COO form of a graph, appending one self-loop per vertex
    /// (as PyG's `GCNConv(add_self_loops=True)` does).
    pub fn new(num_nodes: usize, edges: &[(u32, u32)]) -> CooGraph {
        let m = edges.len();
        let total = m + num_nodes;
        let mut src = Vec::with_capacity(total);
        let mut dst = Vec::with_capacity(total);
        let mut in_deg = vec![0u32; num_nodes];
        for &(u, v) in edges {
            src.push(u);
            dst.push(v);
            in_deg[v as usize] += 1;
        }
        for v in 0..num_nodes as u32 {
            src.push(v);
            dst.push(v);
        }
        let norm: Vec<f32> = in_deg
            .iter()
            .map(|&d| 1.0 / ((1.0 + d as f32).sqrt()))
            .collect();
        let weights: Vec<f32> = src
            .iter()
            .zip(&dst)
            .map(|(&u, &v)| norm[u as usize] * norm[v as usize])
            .collect();
        let charge = BytesCharge::new(2 * total * std::mem::size_of::<u32>());
        CooGraph {
            num_nodes,
            src: Rc::new(src),
            dst: Rc::new(dst),
            edge_norm: Tensor::from_vec(total, weights),
            num_real_edges: m,
            _charge: charge,
        }
    }

    /// Total stored edges including self-loops.
    pub fn num_edges_with_loops(&self) -> usize {
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_self_loops() {
        let g = CooGraph::new(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_real_edges, 2);
        assert_eq!(g.num_edges_with_loops(), 5);
        assert_eq!(&g.src[2..], &[0, 1, 2]);
        assert_eq!(&g.dst[2..], &[0, 1, 2]);
    }

    #[test]
    fn edge_norms_match_formula() {
        let g = CooGraph::new(3, &[(0, 1), (2, 1)]);
        // in-deg: [0, 2, 0]; norms: [1, 1/sqrt(3), 1].
        let w = g.edge_norm.to_vec();
        let n1 = 1.0 / 3.0f32.sqrt();
        assert!((w[0] - n1).abs() < 1e-6); // (0,1)
        assert!((w[1] - n1).abs() < 1e-6); // (2,1)
        assert!((w[2] - 1.0).abs() < 1e-6); // loop at 0
        assert!((w[3] - n1 * n1).abs() < 1e-6); // loop at 1
    }

    #[test]
    fn memory_is_charged() {
        stgraph_tensor::mem::with_pool("coo-test", || {
            let g = CooGraph::new(10, &[(0, 1); 5]);
            assert!(stgraph_tensor::mem::stats("coo-test").live >= (2 * 15 * 4) as u64);
            drop(g);
            assert_eq!(stgraph_tensor::mem::stats("coo-test").live, 0);
        });
    }
}
