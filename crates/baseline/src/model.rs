//! The edge-parallel GCN/TGCN baseline, replicating PyG(-T)'s execution
//! strategy (§VII's analysis of why STGraph wins):
//!
//! * **edge parallelism with feature duplication** — message creation is a
//!   row gather `x[src]` producing an `[m, F]` tensor;
//! * **retention until backward** — the duplicated message tensor is kept
//!   alive by the autograd graph for the whole sequence, exactly like
//!   PyG's saved-for-backward message tensors (`_retained` below);
//! * **identical mathematics** — the same `D̂^{-1/2} Â D̂^{-1/2}` propagation
//!   as STGraph's GCN, so losses agree to float tolerance and only
//!   time/memory differ.

use crate::coo::CooGraph;
use rand::Rng;
use std::rc::Rc;
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::{Param, StateDict, Tape, Tensor, Var};

/// Edge-parallel normalised message passing: `out = Â_norm h`.
///
/// Forward materialises the duplicated per-edge messages; the backward
/// closure *captures* them so they stay resident until backprop reaches
/// this op — the PyG retention behaviour the paper measures.
pub fn propagate<'t>(tape: &'t Tape, graph: &CooGraph, h: &Var<'t>) -> Var<'t> {
    let _ = tape;
    let n = graph.num_nodes;
    let src = Rc::clone(&graph.src);
    let dst = Rc::clone(&graph.dst);
    let norm = graph.edge_norm.clone();
    // Message creation: duplicate source features per edge, then weight.
    let messages = h.value().gather_rows(&src).scale_rows(&norm);
    let out = messages.scatter_add_rows(&dst, n);
    h.tape().custom(&[h], out, move |g| {
        // PyG's autograd keeps the duplicated message tensor alive until
        // this point; dropping the closure (after backward) releases it.
        let _retained = &messages;
        let gm = g.gather_rows(&dst).scale_rows(&norm);
        vec![gm.scatter_add_rows(&src, n)]
    })
}

/// Edge-parallel `GCNConv`: dense transform + [`propagate`].
pub struct BaselineGcnConv {
    linear: Linear,
}

impl BaselineGcnConv {
    /// A new layer (identical parameter layout and init order to
    /// `stgraph::GcnConv`, enabling bitwise weight equivalence).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> BaselineGcnConv {
        BaselineGcnConv {
            linear: Linear::new(params, name, in_features, out_features, true, rng),
        }
    }

    /// Applies the layer on `graph`.
    pub fn forward<'t>(&self, tape: &'t Tape, graph: &CooGraph, x: &Var<'t>) -> Var<'t> {
        let h = self.linear.forward(tape, x);
        propagate(tape, graph, &h)
    }

    /// The weight parameter (for cross-framework weight copying).
    pub fn weight_param(&self) -> &stgraph_tensor::Param {
        &self.linear.weight
    }

    /// The bias parameter.
    pub fn bias_param(&self) -> Option<&stgraph_tensor::Param> {
        self.linear.bias.as_ref()
    }
}

impl StateDict for BaselineGcnConv {
    fn parameters(&self) -> Vec<Param> {
        self.linear.parameters()
    }
}

/// The PyG-T TGCN cell on the edge-parallel backend. Gate structure and
/// parameter creation order are identical to `stgraph::tgnn::Tgcn`, so
/// seeding both with the same RNG yields identical initial weights.
pub struct BaselineTgcn {
    conv_z: BaselineGcnConv,
    conv_r: BaselineGcnConv,
    conv_h: BaselineGcnConv,
    lin_z: Linear,
    lin_r: Linear,
    lin_h: Linear,
    hidden: usize,
}

impl BaselineTgcn {
    /// A new baseline TGCN cell.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> BaselineTgcn {
        BaselineTgcn {
            conv_z: BaselineGcnConv::new(
                params,
                &format!("{name}.conv_z"),
                in_features,
                hidden,
                rng,
            ),
            conv_r: BaselineGcnConv::new(
                params,
                &format!("{name}.conv_r"),
                in_features,
                hidden,
                rng,
            ),
            conv_h: BaselineGcnConv::new(
                params,
                &format!("{name}.conv_h"),
                in_features,
                hidden,
                rng,
            ),
            lin_z: Linear::new(
                params,
                &format!("{name}.lin_z"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            lin_r: Linear::new(
                params,
                &format!("{name}.lin_r"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            lin_h: Linear::new(
                params,
                &format!("{name}.lin_h"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// One recurrent step on `graph`.
    pub fn step<'t>(
        &self,
        tape: &'t Tape,
        graph: &CooGraph,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t> {
        let n = x.value().rows();
        let h = match h {
            Some(v) => v.clone(),
            None => tape.constant(Tensor::zeros((n, self.hidden))),
        };
        let cz = self.conv_z.forward(tape, graph, x);
        let z = self
            .lin_z
            .forward(tape, &Var::concat_cols(&[&cz, &h]))
            .sigmoid();
        let cr = self.conv_r.forward(tape, graph, x);
        let r = self
            .lin_r
            .forward(tape, &Var::concat_cols(&[&cr, &h]))
            .sigmoid();
        let ch = self.conv_h.forward(tape, graph, x);
        let rh = r.mul(&h);
        let htilde = self
            .lin_h
            .forward(tape, &Var::concat_cols(&[&ch, &rh]))
            .tanh();
        z.mul(&h).add(&z.one_minus().mul(&htilde))
    }
}

impl StateDict for BaselineTgcn {
    fn parameters(&self) -> Vec<Param> {
        let mut out = Vec::new();
        out.extend(self.conv_z.parameters());
        out.extend(self.conv_r.parameters());
        out.extend(self.conv_h.parameters());
        out.extend(self.lin_z.parameters());
        out.extend(self.lin_r.parameters());
        out.extend(self.lin_h.parameters());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_tensor::autograd::check::{assert_close, numeric_grad};

    fn graph() -> CooGraph {
        CooGraph::new(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 3)])
    }

    #[test]
    fn propagate_matches_dense_oracle() {
        let g = graph();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = propagate(&tape, &g, &xv);
        // Oracle: for each edge (incl. loops) out[dst] += w * x[src].
        let mut want = vec![0.0f32; 15];
        let w = g.edge_norm.data();
        for ((&u, &v), &we) in g.src.iter().zip(g.dst.iter()).zip(w.iter()) {
            let (u, v) = (u as usize, v as usize);
            for j in 0..3 {
                want[v * 3 + j] += we * x.at(u, j);
            }
        }
        assert!(y.value().approx_eq(&Tensor::from_vec((5, 3), want), 1e-5));
    }

    #[test]
    fn propagate_gradcheck() {
        let g = graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x0 = Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let (x, gx) = tape.input(x0.clone());
        let loss = propagate(&tape, &g, &x).square().sum();
        tape.backward(&loss);
        let mut f = |t: &Tensor| {
            let tape = Tape::new();
            let xv = tape.constant(t.clone());
            propagate(&tape, &g, &xv).square().sum().value().item()
        };
        assert_close(&gx.get().unwrap(), &numeric_grad(&mut f, &x0, 1e-2), 2e-2);
    }

    #[test]
    fn tgcn_step_shapes() {
        let g = graph();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let cell = BaselineTgcn::new(&mut ps, "t", 3, 4, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng));
        let h1 = cell.step(&tape, &g, &x, None);
        let h2 = cell.step(&tape, &g, &x, Some(&h1));
        assert_eq!(h2.value().shape(), stgraph_tensor::Shape::Mat(5, 4));
        assert!(h2.value().data().iter().all(|v| v.abs() <= 1.0));
        let loss = h2.square().sum();
        tape.backward(&loss);
        assert!(ps.iter().any(|p| p.grad().data().iter().any(|&g| g != 0.0)));
    }

    #[test]
    fn messages_are_retained_until_backward() {
        // The [m, F] duplicated tensor must stay charged between forward
        // and backward — this is the PyG behaviour the paper measures.
        stgraph_tensor::mem::with_pool("baseline-retention", || {
            let g = CooGraph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]);
            let f = 16;
            let tape = Tape::new();
            let x = tape.constant(Tensor::zeros((4, f)));
            let before = stgraph_tensor::mem::stats("baseline-retention").live;
            let y = propagate(&tape, &g, &x);
            let live_after_fwd = stgraph_tensor::mem::stats("baseline-retention").live;
            // messages (10 edges x 16 features x 4 bytes) are still alive.
            let msg_bytes = (g.num_edges_with_loops() * f * 4) as u64;
            assert!(
                live_after_fwd >= before + msg_bytes,
                "{live_after_fwd} vs {before} + {msg_bytes}"
            );
            let loss = y.sum();
            tape.backward(&loss);
            drop(y);
            drop(x);
            let after = stgraph_tensor::mem::stats("baseline-retention").live;
            assert!(
                after < before + msg_bytes,
                "messages must be freed after backward"
            );
        });
    }
}
