//! # pygt-baseline
//!
//! A faithful stand-in for PyTorch Geometric Temporal v0.54: edge-parallel
//! message passing with per-edge feature duplication retained until
//! backward, fully-materialised COO snapshot storage for DTDGs, and a TGCN
//! whose gate structure, parameter order and mathematics match STGraph's —
//! so the frameworks compute the same model and only time/memory differ
//! (the comparison of §VII).

#![warn(missing_docs)]

pub mod coo;
pub mod model;
pub mod train;

pub use coo::CooGraph;
pub use model::{propagate, BaselineGcnConv, BaselineTgcn};
pub use train::{BaselineDtdg, BaselineRegressor};
