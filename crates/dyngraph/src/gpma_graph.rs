//! `GPMAGraph` (§V.D): the DTDG is stored as a *base graph plus a list of
//! temporal updates* inside a GPMA, and snapshots are constructed on demand.
//!
//! * `Get-Graph(G, t)` (Algorithm 2) rolls the GPMA forward to timestamp
//!   `t` by applying edge insertion/deletion batches, relabels the edges,
//!   and materialises the snapshot (gapped CSR + Algorithm-3 reverse CSR).
//! * `Get-Backward-Graph(G, t)` applies the *reverse* updates, walking the
//!   graph back down the sequence in LIFO order.
//! * The Algorithm-2 cache holds the GPMA state at the most advanced
//!   timestamp seen, so the next sequence's forward pass restores it
//!   instead of replaying updates from the rewound position.

use crate::source::{DtdgGraph, DtdgSource, UpdateBatch};
use std::time::Duration;
use stgraph_graph::base::Snapshot;
use stgraph_pma::Gpma;
use stgraph_telemetry::{span_timed, TimeAccumulator};

/// A DTDG stored as a base GPMA plus per-timestamp update batches.
pub struct GpmaGraph {
    gpma: Gpma,
    /// `updates[t-1]` transforms snapshot `t-1` into snapshot `t`.
    updates: Vec<UpdateBatch>,
    curr_time: usize,
    /// Algorithm-2 cache: GPMA state at the given timestamp.
    cache: Option<(usize, Gpma)>,
    num_timestamps: usize,
    update_time: TimeAccumulator,
}

impl GpmaGraph {
    /// Builds the base graph (snapshot 0) and the update log from a source.
    pub fn new(source: &DtdgSource) -> GpmaGraph {
        let gpma = Gpma::from_edges(source.num_nodes, &source.snapshots[0]);
        GpmaGraph {
            gpma,
            updates: source.diffs(),
            curr_time: 0,
            cache: None,
            num_timestamps: source.num_timestamps(),
            update_time: TimeAccumulator::new(),
        }
    }

    /// The timestamp the GPMA currently represents.
    pub fn current_time(&self) -> usize {
        self.curr_time
    }

    /// Bytes held by the GPMA (snapshots themselves are transient).
    pub fn bytes(&self) -> usize {
        self.gpma.bytes() + self.cache.as_ref().map_or(0, |(_, g)| g.bytes())
    }

    /// Applies the update batch that advances `t-1 -> t`.
    fn step_forward(&mut self, t: usize) {
        let u = &self.updates[t - 1];
        stgraph_telemetry::counter("gpma.edges_inserted").add(u.additions.len() as u64);
        stgraph_telemetry::counter("gpma.edges_deleted").add(u.deletions.len() as u64);
        self.gpma.insert_edges(&u.additions);
        self.gpma.delete_edges(&u.deletions);
    }

    /// Applies the inverse batch, rewinding `t -> t-1`.
    fn step_backward(&mut self, t: usize) {
        let u = &self.updates[t - 1];
        stgraph_telemetry::counter("gpma.edges_inserted").add(u.deletions.len() as u64);
        stgraph_telemetry::counter("gpma.edges_deleted").add(u.additions.len() as u64);
        self.gpma.delete_edges(&u.additions);
        self.gpma.insert_edges(&u.deletions);
    }

    /// Relabels edges and materialises the snapshot for the current state.
    ///
    /// Carries the `snapshot.build` fault point: an injected failure here
    /// models transient memory pressure during materialisation and is
    /// retried with backoff. The build itself is pure compute with no real
    /// failure mode, so if injection outlasts the retry budget the build
    /// proceeds anyway — degraded latency, never a lost snapshot.
    fn build_snapshot(&mut self) -> Snapshot {
        let _sp = stgraph_telemetry::span_cat("snapshot.build", "snapshot");
        let _ = stgraph_faultline::retry(&stgraph_faultline::RetryPolicy::default(), || {
            stgraph_faultline::fault_point!("snapshot.build")
        });
        let start = std::time::Instant::now();
        self.gpma.relabel_edges();
        let (csr, in_deg) = self.gpma.csr_view();
        let snap = Snapshot::from_csr_with_in_degrees(csr, in_deg);
        stgraph_telemetry::histogram("snapshot.build_ns").record_duration(start.elapsed());
        snap
    }
}

impl DtdgGraph for GpmaGraph {
    fn num_nodes(&self) -> usize {
        self.gpma.num_nodes()
    }

    fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Algorithm 2. Restores the cache when it is between the current
    /// position and the target, then applies updates up to `t` (edge
    /// updates run in reverse when `t` precedes the current position —
    /// e.g. at an epoch boundary, when training restarts at timestamp 0
    /// while the GPMA still sits at the last sequence's start).
    fn get_graph(&mut self, t: usize) -> Snapshot {
        assert!(t < self.num_timestamps, "timestamp {t} out of range");
        let _sp = span_timed("snapshot.forward", &self.update_time);
        if let Some((ct, state)) = &self.cache {
            if *ct <= t && *ct > self.curr_time {
                self.gpma = state.clone_state();
                self.curr_time = *ct;
            }
        }
        while self.curr_time < t {
            let next = self.curr_time + 1;
            self.step_forward(next);
            self.curr_time = next;
        }
        while self.curr_time > t {
            let cur = self.curr_time;
            self.step_backward(cur);
            self.curr_time = cur - 1;
        }
        // Cache the most advanced state for the next sequence (Alg 2 l.10).
        let should_cache = match &self.cache {
            Some((ct, _)) => *ct < t,
            None => true,
        };
        if should_cache {
            self.cache = Some((t, self.gpma.clone_state()));
        }
        self.build_snapshot()
    }

    /// Reverse updates from the current position down to `t` (strict LIFO
    /// relative to the forward pass), then materialise the reverse graph.
    fn get_backward_graph(&mut self, t: usize) -> Snapshot {
        let _sp = span_timed("snapshot.backward", &self.update_time);
        assert!(
            t <= self.curr_time,
            "Get-Backward-Graph must move backward (at {}, asked {t})",
            self.curr_time
        );
        while self.curr_time > t {
            let cur = self.curr_time;
            self.step_backward(cur);
            self.curr_time = cur - 1;
        }
        self.build_snapshot()
    }

    fn take_update_time(&mut self) -> Duration {
        self.update_time.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveGraph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::STGraphBase;

    fn source() -> DtdgSource {
        DtdgSource::from_snapshot_edges(
            5,
            vec![
                vec![(0, 1), (1, 2), (2, 3), (3, 4)],
                vec![(0, 1), (2, 3), (3, 4), (4, 0)],
                vec![(0, 1), (3, 4), (4, 0), (1, 3)],
                vec![(3, 4), (4, 0), (1, 3), (2, 0)],
            ],
        )
    }

    fn random_source(seed: u64, n: u32, t: usize) -> DtdgSource {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut snaps = Vec::new();
        let mut cur: std::collections::BTreeSet<(u32, u32)> = (0..200)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        snaps.push(cur.iter().copied().collect::<Vec<_>>());
        for _ in 1..t {
            // ~10% churn.
            let removals: Vec<(u32, u32)> =
                cur.iter().copied().filter(|_| rng.gen_bool(0.1)).collect();
            for r in &removals {
                cur.remove(r);
            }
            for _ in 0..removals.len() {
                cur.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            snaps.push(cur.iter().copied().collect());
        }
        DtdgSource::from_snapshot_edges(n as usize, snaps)
    }

    #[test]
    fn forward_snapshots_match_naive() {
        let src = source();
        let mut gpma = GpmaGraph::new(&src);
        let mut naive = NaiveGraph::new(&src);
        for t in 0..src.num_timestamps() {
            let a = gpma.get_graph(t);
            let b = naive.get_graph(t);
            assert!(a.same_structure(&b), "divergence at t={t}");
        }
    }

    #[test]
    fn backward_retraces_forward_snapshots() {
        let src = random_source(5, 50, 6);
        let mut gpma = GpmaGraph::new(&src);
        let mut naive = NaiveGraph::new(&src);
        let fwd: Vec<Snapshot> = (0..src.num_timestamps())
            .map(|t| gpma.get_graph(t))
            .collect();
        for t in (0..src.num_timestamps()).rev() {
            let b = gpma.get_backward_graph(t);
            assert!(b.same_structure(&fwd[t]), "backward divergence at t={t}");
            assert!(b.same_structure(&naive.get_graph(t)));
        }
        assert_eq!(gpma.current_time(), 0);
    }

    #[test]
    fn cache_restores_across_sequences() {
        // Sequence 1: t=0..2 forward, back to 0. Sequence 2: t=3 forward.
        // The cache at t=2 must be restored instead of replaying 0->3.
        let src = source();
        let mut g = GpmaGraph::new(&src);
        for t in 0..3 {
            let _ = g.get_graph(t);
        }
        for t in (0..3).rev() {
            let _ = g.get_backward_graph(t);
        }
        assert_eq!(g.current_time(), 0);
        let s3 = g.get_graph(3);
        let naive = NaiveGraph::new(&src).get_graph(3);
        assert!(s3.same_structure(&naive));
        assert_eq!(g.current_time(), 3);
    }

    #[test]
    fn get_graph_rewinds_at_epoch_boundary() {
        // Epoch 2 restarts at t=0 while the GPMA sits mid-sequence.
        let src = source();
        let mut g = GpmaGraph::new(&src);
        let _ = g.get_graph(2);
        let s0 = g.get_graph(0);
        assert!(s0.same_structure(&NaiveGraph::new(&src).get_graph(0)));
        assert_eq!(g.current_time(), 0);
    }

    #[test]
    #[should_panic(expected = "must move backward")]
    fn backward_cannot_advance() {
        let src = source();
        let mut g = GpmaGraph::new(&src);
        let _ = g.get_graph(1);
        let _ = g.get_backward_graph(3);
    }

    #[test]
    fn relabel_keeps_forward_backward_labels_consistent() {
        let src = random_source(9, 30, 4);
        let mut g = GpmaGraph::new(&src);
        let s = g.get_graph(2);
        let fwd: std::collections::HashMap<u32, (u32, u32)> = s
            .csr
            .triples()
            .into_iter()
            .map(|(a, b, e)| (e, (a, b)))
            .collect();
        for (dst, src_v, e) in s.reverse_csr.triples() {
            assert_eq!(fwd[&e], (src_v, dst));
        }
        // Edge ids are dense 0..m.
        let mut ids: Vec<u32> = fwd.keys().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..s.num_edges() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn memory_stays_near_single_snapshot() {
        // The whole point of GPMAGraph: storing T snapshots must not cost
        // T x snapshot bytes. We compare against naive's resident set.
        stgraph_tensor::mem::with_pool("gpma-vs-naive", || {
            let src = random_source(13, 100, 20);
            let gpma = GpmaGraph::new(&src);
            let naive = NaiveGraph::new(&src);
            let naive_bytes: usize = (0..20).map(|t| naive.snapshot(t).csr.bytes()).sum();
            assert!(
                gpma.bytes() * 3 < naive_bytes,
                "gpma {} vs naive csr-only {naive_bytes}",
                gpma.bytes()
            );
        });
    }

    #[test]
    fn update_time_accumulates_and_drains() {
        let src = source();
        let mut g = GpmaGraph::new(&src);
        let _ = g.get_graph(2);
        assert!(g.take_update_time() > Duration::ZERO);
        assert_eq!(g.take_update_time(), Duration::ZERO);
    }
}
