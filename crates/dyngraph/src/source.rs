//! DTDG sources: snapshot sequences and the windowed snapshot builder the
//! paper's evaluation uses ("the first half of the dataset is the first
//! snapshot, then the window is moved so the percent change between
//! consecutive snapshots is always less than X%", §VII.B).

use std::collections::BTreeSet;
use std::time::Duration;
use stgraph_graph::base::Snapshot;

/// A discrete-time dynamic graph expressed as per-timestamp edge sets, the
/// common input to `NaiveGraph`, `GPMAGraph` and the PyG-T baseline.
///
/// ```
/// use stgraph_dyngraph::DtdgSource;
///
/// // A temporal edge stream, windowed at <10% churn per snapshot.
/// let stream: Vec<(u32, u32)> = (0..200).map(|i| (i % 10, (i / 3) % 10)).collect();
/// let src = DtdgSource::from_temporal_edges(10, &stream, 10.0);
/// assert!(src.num_timestamps() > 1);
/// // diffs()[t] turns snapshot t into snapshot t+1.
/// assert_eq!(src.diffs().len(), src.num_timestamps() - 1);
/// ```
#[derive(Clone)]
pub struct DtdgSource {
    /// Number of vertices (fixed across timestamps).
    pub num_nodes: usize,
    /// Sorted, deduplicated edge set per timestamp.
    pub snapshots: Vec<Vec<(u32, u32)>>,
}

/// Edge changes turning snapshot `t-1` into snapshot `t`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Edges present at `t` but not `t-1`.
    pub additions: Vec<(u32, u32)>,
    /// Edges present at `t-1` but not `t`.
    pub deletions: Vec<(u32, u32)>,
}

impl UpdateBatch {
    /// Total number of changed edges.
    pub fn len(&self) -> usize {
        self.additions.len() + self.deletions.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DtdgSource {
    /// Builds a source directly from per-timestamp edge lists (deduplicated
    /// and sorted internally).
    pub fn from_snapshot_edges(num_nodes: usize, snaps: Vec<Vec<(u32, u32)>>) -> DtdgSource {
        let snapshots = snaps
            .into_iter()
            .map(|s| {
                let set: BTreeSet<(u32, u32)> = s.into_iter().collect();
                set.into_iter().collect()
            })
            .collect();
        DtdgSource {
            num_nodes,
            snapshots,
        }
    }

    /// The paper's preprocessing: slide a half-length window over a
    /// time-ordered temporal edge list so consecutive snapshots differ by
    /// roughly `pct_change` percent (each slide of `s` edges retires `s`
    /// old edges and admits `s` new ones against a window of `W`, i.e.
    /// ~`2s/W` change).
    pub fn from_temporal_edges(
        num_nodes: usize,
        edges: &[(u32, u32)],
        pct_change: f64,
    ) -> DtdgSource {
        assert!(pct_change > 0.0 && pct_change <= 100.0);
        let m = edges.len();
        let w = (m / 2).max(1);
        let slide = ((pct_change / 100.0) * w as f64 / 2.0).floor().max(1.0) as usize;
        let mut snaps = Vec::new();
        let mut start = 0usize;
        loop {
            let end = (start + w).min(m);
            snaps.push(edges[start..end].to_vec());
            if end == m {
                break;
            }
            start += slide;
        }
        DtdgSource::from_snapshot_edges(num_nodes, snaps)
    }

    /// Number of timestamps.
    pub fn num_timestamps(&self) -> usize {
        self.snapshots.len()
    }

    /// The update batches turning each snapshot into the next
    /// (`diffs()[t]` maps snapshot `t` to `t+1`).
    pub fn diffs(&self) -> Vec<UpdateBatch> {
        let mut out = Vec::with_capacity(self.snapshots.len().saturating_sub(1));
        for w in self.snapshots.windows(2) {
            let prev: BTreeSet<(u32, u32)> = w[0].iter().copied().collect();
            let next: BTreeSet<(u32, u32)> = w[1].iter().copied().collect();
            out.push(UpdateBatch {
                additions: next.difference(&prev).copied().collect(),
                deletions: prev.difference(&next).copied().collect(),
            });
        }
        out
    }

    /// The suffix of update batches starting at generation `from`
    /// (`diffs_from(g)[0]` maps snapshot `g` to `g+1`) — the stream an
    /// online trainer replays when resuming mid-stream without recomputing
    /// batches it has already consumed. `from` past the end yields an
    /// empty vector.
    pub fn diffs_from(&self, from: usize) -> Vec<UpdateBatch> {
        let mut diffs = self.diffs();
        if from >= diffs.len() {
            return Vec::new();
        }
        diffs.drain(..from);
        diffs
    }

    /// Average relative change `|Δ| / |snapshot|` between consecutive
    /// snapshots, as a percentage.
    pub fn mean_pct_change(&self) -> f64 {
        let diffs = self.diffs();
        if diffs.is_empty() {
            return 0.0;
        }
        let total: f64 = diffs
            .iter()
            .zip(&self.snapshots)
            .map(|(d, s)| d.len() as f64 / s.len().max(1) as f64)
            .sum();
        100.0 * total / diffs.len() as f64
    }
}

/// The DTDG interface consumed by the temporally-aware executor: snapshots
/// are produced *on demand* per timestamp, forward during forward
/// propagation and in strict LIFO order during backward propagation
/// (Algorithm 1 lines 9-12 and 19-22).
pub trait DtdgGraph {
    /// Number of vertices.
    fn num_nodes(&self) -> usize;
    /// Number of timestamps.
    fn num_timestamps(&self) -> usize;
    /// `Get-Graph(G, t)` — the snapshot for timestamp `t` during the
    /// forward pass (Algorithm 2).
    fn get_graph(&mut self, t: usize) -> Snapshot;
    /// `Get-Backward-Graph(G, t)` — the snapshot for timestamp `t` during
    /// the backward pass (reverse updates for GPMA).
    fn get_backward_graph(&mut self, t: usize) -> Snapshot;
    /// Cumulative time spent performing graph updates / snapshot
    /// construction since the last call (drained) — the "graph update time"
    /// series of Figure 9.
    fn take_update_time(&mut self) -> Duration;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_snapshot_edges_dedups_and_sorts() {
        let src =
            DtdgSource::from_snapshot_edges(4, vec![vec![(1, 2), (0, 1), (1, 2)], vec![(3, 0)]]);
        assert_eq!(src.snapshots[0], vec![(0, 1), (1, 2)]);
        assert_eq!(src.num_timestamps(), 2);
    }

    #[test]
    fn diffs_are_exact_set_differences() {
        let src = DtdgSource::from_snapshot_edges(
            4,
            vec![vec![(0, 1), (1, 2)], vec![(1, 2), (2, 3)], vec![(2, 3)]],
        );
        let d = src.diffs();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].additions, vec![(2, 3)]);
        assert_eq!(d[0].deletions, vec![(0, 1)]);
        assert_eq!(d[1].additions, vec![]);
        assert_eq!(d[1].deletions, vec![(1, 2)]);
    }

    #[test]
    fn diffs_from_is_the_resume_suffix() {
        let src = DtdgSource::from_snapshot_edges(
            4,
            vec![vec![(0, 1), (1, 2)], vec![(1, 2), (2, 3)], vec![(2, 3)]],
        );
        let d = src.diffs();
        assert_eq!(src.diffs_from(0), d);
        assert_eq!(src.diffs_from(1), d[1..].to_vec());
        assert!(src.diffs_from(2).is_empty());
        assert!(src.diffs_from(99).is_empty());
    }

    #[test]
    fn windowed_builder_first_snapshot_is_half() {
        let edges: Vec<(u32, u32)> = (0..100)
            .map(|i| (i as u32 % 10, (i as u32 * 7) % 10))
            .collect();
        let src = DtdgSource::from_temporal_edges(10, &edges, 10.0);
        // Window = 50 raw edges (snapshot is the dedup'd set of those).
        assert!(src.num_timestamps() > 2);
        let set: BTreeSet<(u32, u32)> = edges[0..50].iter().copied().collect();
        assert_eq!(src.snapshots[0], set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn windowed_builder_respects_pct_change_bound() {
        // Distinct edges so set size == window size.
        let edges: Vec<(u32, u32)> = (0..2000u32).map(|i| (i / 50, i % 1000)).collect();
        let src = DtdgSource::from_temporal_edges(1000, &edges, 10.0);
        let w = 1000.0;
        for (d, s) in src.diffs().iter().zip(&src.snapshots) {
            let pct = 100.0 * d.len() as f64 / s.len() as f64;
            assert!(pct <= 10.0 + 1e-9, "change {pct}% exceeds bound (w={w})");
        }
        // Smaller pct_change must yield more snapshots.
        let fine = DtdgSource::from_temporal_edges(1000, &edges, 2.0);
        assert!(fine.num_timestamps() > src.num_timestamps());
    }

    #[test]
    fn mean_pct_change_tracks_slide() {
        let edges: Vec<(u32, u32)> = (0..2000u32).map(|i| (i / 50, i % 1000)).collect();
        let src = DtdgSource::from_temporal_edges(1000, &edges, 5.0);
        let mean = src.mean_pct_change();
        assert!(mean > 1.0 && mean <= 5.5, "mean change {mean}%");
    }
}
