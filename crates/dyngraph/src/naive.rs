//! `NaiveGraph` (§V.C): every DTDG snapshot is fully materialised — forward
//! CSR, reverse CSR, edge labels, degree arrays and the degree-sorted
//! `node_ids` — ahead of training and kept resident for the whole run.
//! Snapshot access is array indexing, so per-epoch time is the best of the
//! STGraph variants, but memory scales with `T × (2 copies + labels)`,
//! which is the overhead Figure 8 shows.

use crate::source::{DtdgGraph, DtdgSource};
use std::time::Duration;
use stgraph_graph::base::Snapshot;
use stgraph_telemetry::{span_timed, TimeAccumulator};

/// A DTDG stored as one pre-processed [`Snapshot`] per timestamp.
pub struct NaiveGraph {
    num_nodes: usize,
    snapshots: Vec<Snapshot>,
    update_time: TimeAccumulator,
}

impl NaiveGraph {
    /// Pre-processes every snapshot of the source (the expensive, memory-
    /// hungry step the paper attributes to this variant).
    pub fn new(source: &DtdgSource) -> NaiveGraph {
        let snapshots = source
            .snapshots
            .iter()
            .map(|edges| Snapshot::from_edges(source.num_nodes, edges))
            .collect();
        NaiveGraph {
            num_nodes: source.num_nodes,
            snapshots,
            update_time: TimeAccumulator::new(),
        }
    }

    /// Direct snapshot access (tests).
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }
}

impl DtdgGraph for NaiveGraph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_timestamps(&self) -> usize {
        self.snapshots.len()
    }

    fn get_graph(&mut self, t: usize) -> Snapshot {
        let _sp = span_timed("snapshot.forward", &self.update_time);
        self.snapshots[t].clone()
    }

    fn get_backward_graph(&mut self, t: usize) -> Snapshot {
        let _sp = span_timed("snapshot.backward", &self.update_time);
        self.snapshots[t].clone()
    }

    fn take_update_time(&mut self) -> Duration {
        self.update_time.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_graph::base::STGraphBase;

    fn source() -> DtdgSource {
        DtdgSource::from_snapshot_edges(
            4,
            vec![
                vec![(0, 1), (1, 2), (2, 3)],
                vec![(0, 1), (2, 3), (3, 0)],
                vec![(3, 0), (0, 2)],
            ],
        )
    }

    #[test]
    fn snapshots_match_source() {
        let mut g = NaiveGraph::new(&source());
        assert_eq!(g.num_timestamps(), 3);
        assert_eq!(g.num_nodes(), 4);
        for (t, edges) in source().snapshots.iter().enumerate() {
            let s = g.get_graph(t);
            let got: Vec<(u32, u32)> = s.csr.triples().iter().map(|&(a, b, _)| (a, b)).collect();
            assert_eq!(&got, edges, "timestamp {t}");
        }
    }

    #[test]
    fn forward_and_backward_return_same_structure() {
        let mut g = NaiveGraph::new(&source());
        let f = g.get_graph(1);
        let b = g.get_backward_graph(1);
        assert!(f.same_structure(&b));
        assert_eq!(f.num_edges(), 3);
    }

    #[test]
    fn random_access_any_order() {
        // Naive storage allows arbitrary access order (no LIFO requirement).
        let mut g = NaiveGraph::new(&source());
        let s2 = g.get_graph(2);
        let s0 = g.get_graph(0);
        assert_eq!(s2.num_edges(), 2);
        assert_eq!(s0.num_edges(), 3);
    }

    #[test]
    fn update_time_is_negligible_and_drains() {
        let mut g = NaiveGraph::new(&source());
        let _ = g.get_graph(0);
        let t1 = g.take_update_time();
        assert_eq!(g.take_update_time(), Duration::ZERO);
        assert!(t1 < Duration::from_millis(50));
    }
}
