//! Streaming edge-cut partitioning for [`crate::ShardedGraph`].
//!
//! Vertices are assigned to K shards by streaming greedy passes in the
//! linear-deterministic-greedy family (LDG, Stanton & Kliot KDD'12),
//! extended with a per-vertex **confidence counter** so the pass can
//! *reassign* as well as assign: every same-shard edge raises both
//! endpoints' confidence, and on a cross-shard edge the lower-confidence
//! endpoint defects to its partner's shard once its confidence is worn
//! down (capacity permitting). That single extension is what lets the
//! partitioner recover from early hash-seeded placements when the stream
//! arrives in arbitrary order — plain one-pass LDG fragments each
//! community across the hash roots its first few edges happen to create,
//! while the defection rule collapses those fragments toward the
//! community's plurality shard. Additional [`Partition::refine`] passes
//! over the same stream keep improving the cut (two passes roughly halve
//! it on community graphs).
//!
//! Every pass needs O(n) state (owner + confidence) and never
//! materialises the edge list, so it scales to the 10M+-node streaming
//! generators. Capacity carries a small slack factor so communities can
//! stay together without unbounding the largest shard.
//!
//! Edges themselves are *not* partitioned here: [`crate::ShardedGraph`]
//! stores every edge in the shard owning its **destination**, so each
//! shard holds complete in-neighbour rows and cross-shard edges surface
//! only as ghost sources in the halo table.

/// Owner sentinel for a vertex not yet assigned.
const UNASSIGNED: u32 = u32::MAX;

/// Per-shard capacity slack over the perfectly balanced n/k.
const CAP_SLACK: f64 = 1.05;

/// A vertex defects across a conflict edge while its confidence is below
/// this. Too low and fragments never dissolve; too high and assignments
/// thrash before communities form. 3 is the knee on community graphs.
const DEFECT_BELOW: u32 = 3;

/// SplitMix64 finaliser — the deterministic hash fallback.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn hash_owner(v: u32, k: usize) -> u32 {
    (mix(v as u64) % k as u64) as u32
}

/// A vertex → shard assignment plus the partitioner's quality counters.
pub struct Partition {
    k: usize,
    owner: Vec<u32>,
    /// Same-shard edge evidence per vertex; worn down by conflict edges.
    conf: Vec<u32>,
    shard_sizes: Vec<usize>,
    /// Edges whose endpoints sat in different shards when last counted.
    edge_cut: usize,
    /// Edges seen by that count.
    total_edges: usize,
}

impl Partition {
    /// One streaming greedy pass over `edges`: co-locate endpoints while
    /// shards have capacity, hash otherwise, and let low-confidence
    /// endpoints defect across conflict edges. Vertices untouched by any
    /// edge are spread over the least-loaded shards at the end.
    pub fn ldg(num_nodes: usize, k: usize, edges: impl Iterator<Item = (u32, u32)>) -> Partition {
        assert!(k >= 1, "need at least one shard");
        let mut p = Partition {
            k,
            owner: vec![UNASSIGNED; num_nodes],
            conf: vec![0; num_nodes],
            shard_sizes: vec![0; k],
            edge_cut: 0,
            total_edges: 0,
        };
        p.pass(edges);
        // Isolated vertices: deterministic least-loaded fill.
        for v in 0..num_nodes {
            if p.owner[v] == UNASSIGNED {
                let s = (0..k).min_by_key(|&s| (p.shard_sizes[s], s)).unwrap();
                p.owner[v] = s as u32;
                p.shard_sizes[s] += 1;
            }
        }
        p
    }

    /// Another greedy pass over a (replayed) stream, reusing the owner and
    /// confidence state. Each pass only moves vertices whose confidence
    /// has been worn down by conflict edges, so repeated passes converge:
    /// two passes roughly halve the seed cut on community graphs.
    pub fn refine(&mut self, edges: impl Iterator<Item = (u32, u32)>) {
        if self.k > 1 {
            self.pass(edges);
        }
    }

    /// The shared per-edge greedy step (see module docs). Also counts the
    /// stream's cut *as placed during this pass* — approximate while
    /// vertices are still moving; [`Partition::measure_cut`] gives the
    /// exact figure for a frozen assignment.
    fn pass(&mut self, edges: impl Iterator<Item = (u32, u32)>) {
        let k = self.k;
        let cap = ((self.owner.len() as f64 / k as f64) * CAP_SLACK).ceil() as usize + 1;
        let mut edge_cut = 0usize;
        let mut total_edges = 0usize;
        // Place v on shard `want` if it has room, else hash + linear probe
        // (total capacity k*cap > n guarantees a shard with room exists).
        let place = |v: usize, want: u32, sizes: &mut [usize]| -> u32 {
            let s = if sizes[want as usize] < cap {
                want
            } else {
                let mut s = hash_owner(v as u32, k);
                let mut probes = 0;
                while sizes[s as usize] >= cap && probes < k {
                    s = (s + 1) % k as u32;
                    probes += 1;
                }
                s
            };
            sizes[s as usize] += 1;
            s
        };
        for (u, v) in edges {
            total_edges += 1;
            let (u, v) = (u as usize, v as usize);
            if u == v {
                if self.owner[u] == UNASSIGNED {
                    let s = place(u, hash_owner(u as u32, k), &mut self.shard_sizes);
                    self.owner[u] = s;
                    self.conf[u] = 1;
                }
                continue;
            }
            let (ou, ov) = (self.owner[u], self.owner[v]);
            match (ou != UNASSIGNED, ov != UNASSIGNED) {
                (false, false) => {
                    let s = place(u, hash_owner(u as u32, k), &mut self.shard_sizes);
                    self.owner[u] = s;
                    self.conf[u] = 1;
                    let t = place(v, s, &mut self.shard_sizes);
                    self.owner[v] = t;
                    self.conf[v] = 1;
                }
                (true, false) => {
                    let t = place(v, ou, &mut self.shard_sizes);
                    self.owner[v] = t;
                    self.conf[v] = 1;
                    if t == ou {
                        self.conf[u] = self.conf[u].saturating_add(1);
                    }
                }
                (false, true) => {
                    let t = place(u, ov, &mut self.shard_sizes);
                    self.owner[u] = t;
                    self.conf[u] = 1;
                    if t == ov {
                        self.conf[v] = self.conf[v].saturating_add(1);
                    }
                }
                (true, true) => {
                    if ou == ov {
                        self.conf[u] = self.conf[u].saturating_add(1);
                        self.conf[v] = self.conf[v].saturating_add(1);
                    } else {
                        // Conflict: the endpoint with less same-shard
                        // evidence defects to its partner (ties: higher id
                        // defects, so the choice is deterministic).
                        let (l, w) = if (self.conf[u], v) < (self.conf[v], u) {
                            (u, v)
                        } else {
                            (v, u)
                        };
                        let target = self.owner[w] as usize;
                        if self.conf[l] < DEFECT_BELOW && self.shard_sizes[target] < cap {
                            self.shard_sizes[self.owner[l] as usize] -= 1;
                            self.owner[l] = target as u32;
                            self.shard_sizes[target] += 1;
                            self.conf[l] = 1;
                            self.conf[w] = self.conf[w].saturating_add(1);
                        } else {
                            self.conf[l] = self.conf[l].saturating_sub(1);
                        }
                    }
                }
            }
            if self.owner[u] != self.owner[v] {
                edge_cut += 1;
            }
        }
        self.edge_cut = edge_cut;
        self.total_edges = total_edges;
    }

    /// Pure hash partition (the fallback / baseline: balanced, oblivious
    /// to structure).
    pub fn hash(num_nodes: usize, k: usize) -> Partition {
        assert!(k >= 1, "need at least one shard");
        let owner: Vec<u32> = (0..num_nodes as u32).map(|v| hash_owner(v, k)).collect();
        let mut sizes = vec![0usize; k];
        for &o in &owner {
            sizes[o as usize] += 1;
        }
        Partition {
            k,
            owner,
            conf: vec![0; num_nodes],
            shard_sizes: sizes,
            edge_cut: 0,
            total_edges: 0,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Owning shard of vertex `v`.
    #[inline]
    pub fn owner(&self, v: u32) -> u32 {
        self.owner[v as usize]
    }

    /// The full owner array.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Vertices owned per shard.
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// Owned vertex lists per shard, each sorted ascending (so local index
    /// order equals global id order within a shard).
    pub fn locals(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = self
            .shard_sizes
            .iter()
            .map(|&s| Vec::with_capacity(s))
            .collect();
        for (v, &o) in self.owner.iter().enumerate() {
            out[o as usize].push(v as u32);
        }
        out
    }

    /// Cut edges at the last count — in-pass (approximate, vertices still
    /// moving) until [`Partition::measure_cut`] freezes an exact figure.
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// Fraction of counted edges crossing shards.
    pub fn edge_cut_ratio(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.edge_cut as f64 / self.total_edges as f64
        }
    }

    /// Counts the cut of an arbitrary edge stream under the frozen
    /// assignment (the exact figure the gauges report), updating the
    /// stored counters.
    pub fn measure_cut(&mut self, edges: impl Iterator<Item = (u32, u32)>) -> f64 {
        let mut cut = 0usize;
        let mut total = 0usize;
        for (u, v) in edges {
            total += 1;
            if self.owner[u as usize] != self.owner[v as usize] {
                cut += 1;
            }
        }
        self.edge_cut = cut;
        self.total_edges = total;
        self.edge_cut_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// 4 dense communities with sparse cross-links, edges in random order.
    fn community_edges(seed: u64) -> Vec<(u32, u32)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let comms = 4u32;
        let size = 100u32;
        let mut edges = Vec::new();
        for _ in 0..4000 {
            let c = rng.gen_range(0..comms);
            let u = c * size + rng.gen_range(0..size);
            let v = if rng.gen_bool(0.95) {
                c * size + rng.gen_range(0..size)
            } else {
                rng.gen_range(0..comms * size)
            };
            edges.push((u, v));
        }
        edges
    }

    #[test]
    fn every_vertex_assigned_and_balanced() {
        let edges = community_edges(1);
        for k in [1, 2, 4, 8] {
            let mut p = Partition::ldg(400, k, edges.iter().copied());
            p.refine(edges.iter().copied());
            p.refine(edges.iter().copied());
            assert!(p.owners().iter().all(|&o| (o as usize) < k));
            assert_eq!(p.shard_sizes().iter().sum::<usize>(), 400);
            let cap = ((400.0 / k as f64) * CAP_SLACK).ceil() as usize + 1;
            for &s in p.shard_sizes() {
                assert!(s <= cap, "shard size {s} over capacity {cap} (k={k})");
            }
            let mut counted = vec![0usize; k];
            for &o in p.owners() {
                counted[o as usize] += 1;
            }
            assert_eq!(counted, p.shard_sizes(), "size counters must track owners");
        }
    }

    #[test]
    fn locals_are_sorted_and_cover() {
        let p = Partition::ldg(50, 3, [(0, 1), (2, 3), (10, 40)].into_iter());
        let locals = p.locals();
        let mut all: Vec<u32> = locals.iter().flatten().copied().collect();
        for l in &locals {
            assert!(l.windows(2).all(|w| w[0] < w[1]), "locals must be sorted");
        }
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn k1_puts_everything_in_one_shard() {
        let p = Partition::ldg(10, 1, [(0, 1), (5, 9)].into_iter());
        assert!(p.owners().iter().all(|&o| o == 0));
        assert_eq!(p.edge_cut(), 0);
    }

    #[test]
    fn refined_ldg_cuts_fewer_edges_than_hash_on_communities() {
        // The production build path: one seed pass, two refinement passes.
        let edges = community_edges(7);
        let mut ldg = Partition::ldg(400, 4, edges.iter().copied());
        ldg.refine(edges.iter().copied());
        ldg.refine(edges.iter().copied());
        let ldg_ratio = ldg.measure_cut(edges.iter().copied());
        let mut hash = Partition::hash(400, 4);
        let hash_ratio = hash.measure_cut(edges.iter().copied());
        assert!(
            ldg_ratio < 0.5 * hash_ratio,
            "refined LDG cut {ldg_ratio:.3} should beat hash cut {hash_ratio:.3} by 2x on community graphs"
        );
    }

    #[test]
    fn refine_lowers_cut_on_communities() {
        let edges = community_edges(9);
        let mut p = Partition::ldg(400, 4, edges.iter().copied());
        let before = p.measure_cut(edges.iter().copied());
        p.refine(edges.iter().copied());
        p.refine(edges.iter().copied());
        let after = p.measure_cut(edges.iter().copied());
        assert!(
            after < before,
            "refinement should lower the cut ({before:.3} -> {after:.3})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let edges = community_edges(3);
        let mut a = Partition::ldg(400, 4, edges.iter().copied());
        a.refine(edges.iter().copied());
        let mut b = Partition::ldg(400, 4, edges.iter().copied());
        b.refine(edges.iter().copied());
        assert_eq!(a.owners(), b.owners());
        assert_eq!(a.edge_cut(), b.edge_cut());
    }
}
