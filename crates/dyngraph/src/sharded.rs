//! `ShardedGraph`: the DTDG split into K edge-cut shards, each owning a
//! private GPMA, with a halo/ghost-vertex table for cross-shard in-edges.
//!
//! The single-store [`crate::GpmaGraph`] pays four passes per snapshot:
//! relabel the PMA, materialise the gapped out-CSR, transpose it with
//! Algorithm 3 into the dense reverse CSR the forward pass needs, and
//! degree-sort `node_ids`. The sharded layout makes most of that work
//! vanish by storing the graph **reverse-first**: every edge `(u, v)` lives
//! in the shard owning `v` under the PMA key `(local(v) << 32) | u`, so a
//! shard's sorted slot order *is* its in-neighbour adjacency. A forward
//! pass then needs only a per-shard `row_offset` index over the PMA slots
//! (one O(slots/K) scan, built shard-parallel) — no relabel, no transpose,
//! no degree sort.
//!
//! Aggregation runs in two phases mirroring a distributed GNN step:
//!
//! 1. **Halo exchange** — each shard gathers the feature rows of its ghost
//!    sources (in-edge sources owned by other shards) into pooled scratch
//!    (`Tensor::gather_rows`). The `shard.exchange` fault site lives here
//!    and on the update path's commit barrier.
//! 2. **Shard-local aggregation** — shards accumulate into disjoint row
//!    ranges of the output (ownership makes the writes race-free), reading
//!    local sources from the input and remote ones from scratch.
//!
//! Per-row accumulation order is pinned to *ascending source id* — the
//! shard PMA's slot order — and [`crate::dense_forward_sum`] walks its
//! reverse-CSR slots in the matching order, so sharded forwards are
//! **bitwise identical** to the dense single-store path for any K. Update batches are routed by destination owner and
//! applied shard-parallel; `try_apply_batch` keeps the routed batch atomic
//! across shards via exact inverse-op rollback (the `ingest.apply`
//! contract, extended across K stores).

use crate::partition::Partition;
use crate::source::{DtdgGraph, DtdgSource, UpdateBatch};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use stgraph_faultline::FaultError;
use stgraph_graph::base::Snapshot;
use stgraph_pma::{Gpma, EMPTY};
use stgraph_telemetry::{span_timed, TimeAccumulator};
use stgraph_tensor::Tensor;

/// Reads the default shard count from `STGRAPH_SHARDS` (>= 1; default 1).
pub fn shards_from_env() -> usize {
    std::env::var("STGRAPH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k >= 1)
        .unwrap_or(1)
}

/// Marks a [`ShardView::srcs`] entry as an index into the ghost table
/// rather than a global vertex id (which caps vertex ids at 2^31).
const GHOST_BIT: u32 = 1 << 31;

/// One shard's routed sub-batch: `(additions, deletions)` in local-dst,
/// global-src coordinates.
type ShardBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Per-shard in-neighbour index, densified from the shard's PMA slots so
/// the aggregation loop touches no `EMPTY` gaps, unpacks no keys, and
/// resolves no ghosts (all paid once per view rebuild instead of once per
/// forward).
struct ShardView {
    /// `srcs[row_offset[l]..row_offset[l+1]]` are local vertex `l`'s
    /// in-edge sources in ascending source order: either a global vertex
    /// id (shard-local source, read features directly) or
    /// `GHOST_BIT | index` into the exchanged halo scratch.
    row_offset: Vec<usize>,
    /// Densified in-edge sources (see `row_offset`).
    srcs: Vec<u32>,
    /// Sorted, deduplicated global ids of remote in-edge sources.
    ghosts: Vec<u32>,
    /// In-edges whose source lives on another shard.
    halo_edges: usize,
}

struct Shard {
    /// Keys are `(local_dst << 32) | global_src`: sorted order groups each
    /// owned vertex's in-neighbours contiguously (reverse-first storage).
    gpma: Gpma,
    /// Owned global vertex ids, ascending (local id = position).
    locals: Vec<u32>,
    /// Cached view; `None` after any structural update.
    view: Option<ShardView>,
}

impl Shard {
    fn build_view(&self, owner: &[u32], me: u32) -> ShardView {
        let keys = self.gpma.pma().key_slots();
        let nl = self.locals.len();
        let mut row_offset = vec![0usize; nl + 1];
        let mut srcs: Vec<u32> = Vec::with_capacity(self.gpma.num_edges());
        let mut ghosts: Vec<u32> = Vec::new();
        let mut halo_edges = 0usize;
        let mut next_row = 0usize;
        for &k in keys {
            if k == EMPTY {
                continue;
            }
            let ld = (k >> 32) as usize;
            let src = k as u32;
            while next_row <= ld {
                row_offset[next_row] = srcs.len();
                next_row += 1;
            }
            if owner[src as usize] == me {
                srcs.push(src);
            } else {
                halo_edges += 1;
                ghosts.push(src);
                // Placeholder: the raw global id, flagged; remapped to a
                // ghost-table index once the table is sorted and deduped.
                srcs.push(GHOST_BIT | src);
            }
        }
        while next_row <= nl {
            row_offset[next_row] = srcs.len();
            next_row += 1;
        }
        ghosts.sort_unstable();
        ghosts.dedup();
        for e in srcs.iter_mut() {
            if *e & GHOST_BIT != 0 {
                let gi = ghosts.binary_search(&(*e & !GHOST_BIT)).unwrap();
                *e = GHOST_BIT | gi as u32;
            }
        }
        ShardView {
            row_offset,
            srcs,
            ghosts,
            halo_edges,
        }
    }
}

/// Live per-shard statistics backing the telemetry gauges.
struct ShardStats {
    nodes: Vec<AtomicUsize>,
    edges: Vec<AtomicUsize>,
    halo_edges: Vec<AtomicUsize>,
    /// Partitioner edge-cut ratio (f64 bits).
    edge_cut_ratio: AtomicU64,
}

impl ShardStats {
    fn new(k: usize) -> ShardStats {
        ShardStats {
            nodes: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            edges: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            halo_edges: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            edge_cut_ratio: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A DTDG partitioned into K edge-cut shards (see module docs).
pub struct ShardedGraph {
    num_nodes: usize,
    partition: Partition,
    shards: Vec<Shard>,
    /// Global vertex id -> local index within its owner shard.
    local_id: Vec<u32>,
    /// `updates[t-1]` transforms snapshot `t-1` into snapshot `t`.
    updates: Vec<UpdateBatch>,
    curr_time: usize,
    num_timestamps: usize,
    update_time: TimeAccumulator,
    stats: Arc<ShardStats>,
}

impl ShardedGraph {
    /// Partitions (LDG over snapshot 0) and loads a [`DtdgSource`].
    pub fn from_source(source: &DtdgSource, k: usize) -> ShardedGraph {
        let seed = &source.snapshots[0];
        let mut partition = Partition::ldg(source.num_nodes, k, seed.iter().copied());
        partition.refine(seed.iter().copied());
        partition.refine(seed.iter().copied());
        partition.measure_cut(seed.iter().copied());
        ShardedGraph::assemble(
            source.num_nodes,
            partition,
            source.snapshots[0].iter().copied(),
            source.diffs(),
            source.num_timestamps(),
        )
    }

    /// Streaming build for graphs too big to materialise: one LDG pass
    /// partitions, two label-propagation passes refine, one pass measures
    /// the final cut, and a last pass routes and loads in bounded chunks.
    /// The stream must be replayable (`make_stream` is called five times);
    /// each pass holds only O(n) state.
    pub fn from_edge_stream<I>(
        num_nodes: usize,
        k: usize,
        make_stream: impl Fn() -> I,
    ) -> ShardedGraph
    where
        I: Iterator<Item = (u32, u32)>,
    {
        let mut partition = Partition::ldg(num_nodes, k, make_stream());
        partition.refine(make_stream());
        partition.refine(make_stream());
        partition.measure_cut(make_stream());
        ShardedGraph::assemble(num_nodes, partition, make_stream(), Vec::new(), 1)
    }

    fn assemble(
        num_nodes: usize,
        partition: Partition,
        edges: impl Iterator<Item = (u32, u32)>,
        updates: Vec<UpdateBatch>,
        num_timestamps: usize,
    ) -> ShardedGraph {
        assert!(
            num_nodes < GHOST_BIT as usize,
            "vertex ids must fit below the ghost flag bit (2^31)"
        );
        let k = partition.k();
        let locals = partition.locals();
        let mut local_id = vec![0u32; num_nodes];
        for l in &locals {
            for (i, &v) in l.iter().enumerate() {
                local_id[v as usize] = i as u32;
            }
        }
        let mut shards: Vec<Shard> = locals
            .into_iter()
            .map(|locals| Shard {
                gpma: Gpma::new(locals.len()),
                locals,
                view: None,
            })
            .collect();
        // Routed load in bounded chunks so the edge stream never has to be
        // materialised in one piece.
        const CHUNK: usize = 1 << 22;
        let mut bufs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        let mut pending = 0usize;
        for (u, v) in edges {
            let s = partition.owner(v) as usize;
            bufs[s].push((local_id[v as usize], u));
            pending += 1;
            if pending >= CHUNK {
                flush_inserts(&mut shards, &mut bufs);
                pending = 0;
            }
        }
        flush_inserts(&mut shards, &mut bufs);

        let stats = Arc::new(ShardStats::new(k));
        stats
            .edge_cut_ratio
            .store(partition.edge_cut_ratio().to_bits(), Ordering::Relaxed);
        install_gauges(&stats);
        let g = ShardedGraph {
            num_nodes,
            partition,
            shards,
            local_id,
            updates,
            curr_time: 0,
            num_timestamps,
            update_time: TimeAccumulator::new(),
            stats,
        };
        g.refresh_stats();
        g
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total edges across shards.
    pub fn num_edges(&self) -> usize {
        self.shards.iter().map(|s| s.gpma.num_edges()).sum()
    }

    /// In-edges whose source lives on another shard (requires fresh views).
    pub fn halo_edges(&mut self) -> usize {
        self.ensure_views();
        self.shards
            .iter()
            .map(|s| s.view.as_ref().map_or(0, |v| v.halo_edges))
            .sum()
    }

    /// The partitioner's edge-cut ratio over the seed stream.
    pub fn edge_cut_ratio(&self) -> f64 {
        self.partition.edge_cut_ratio()
    }

    /// Bytes held by the shard PMAs.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.gpma.bytes()).sum()
    }

    /// Routes `(additions, deletions)` into per-shard local batches.
    fn route(&self, additions: &[(u32, u32)], deletions: &[(u32, u32)]) -> Vec<ShardBatch> {
        let mut out: Vec<ShardBatch> = vec![(Vec::new(), Vec::new()); self.shards.len()];
        for &(u, v) in additions {
            let s = self.partition.owner(v) as usize;
            out[s].0.push((self.local_id[v as usize], u));
        }
        for &(u, v) in deletions {
            let s = self.partition.owner(v) as usize;
            out[s].1.push((self.local_id[v as usize], u));
        }
        out
    }

    /// Applies a routed batch shard-parallel (infallible path).
    pub fn apply_batch(&mut self, additions: &[(u32, u32)], deletions: &[(u32, u32)]) {
        stgraph_telemetry::counter("shard.edges_inserted").add(additions.len() as u64);
        stgraph_telemetry::counter("shard.edges_deleted").add(deletions.len() as u64);
        let mut work = self.route(additions, deletions);
        par_apply(&mut self.shards, &mut work);
        self.refresh_stats();
    }

    /// Fault-gated batch application with cross-shard atomicity: every
    /// edge lands or none does. Each shard's sub-batch is pre-filtered to
    /// its effective changes (additions not yet present, deletions
    /// actually present) so the inverse operation is exact; on any
    /// injected fault — a shard's `gpma.update` or the `shard.exchange`
    /// commit barrier — already-applied shards are rolled back with the
    /// inverse ops and the graph is left bitwise-identical to its
    /// pre-batch state.
    pub fn try_apply_batch(&mut self, batch: &UpdateBatch) -> Result<(), FaultError> {
        let mut routed = self.route(&batch.additions, &batch.deletions);
        for (s, (adds, dels)) in routed.iter_mut().enumerate() {
            let gpma = &self.shards[s].gpma;
            adds.retain(|&(ld, src)| !gpma.has_edge(ld, src));
            dels.retain(|&(ld, src)| gpma.has_edge(ld, src));
        }
        let mut applied = 0usize;
        let mut failure: Option<FaultError> = None;
        for (s, (adds, dels)) in routed.iter().enumerate() {
            let shard = &mut self.shards[s];
            let r = shard.gpma.try_insert_edges(adds).and_then(|()| {
                shard.gpma.try_delete_edges(dels).inspect_err(|_| {
                    // Deletion faulted after this shard's insert landed:
                    // undo locally before reporting up.
                    shard.gpma.delete_edges(adds);
                })
            });
            match r {
                Ok(()) => {
                    shard.view = None;
                    applied = s + 1;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if failure.is_none() {
            // Commit barrier: ghost tables may only refresh once every
            // shard holds its routed sub-batch. A fault here models a
            // failed exchange and aborts the whole batch.
            if let Err(e) = stgraph_faultline::fault_point!("shard.exchange") {
                failure = Some(e);
            }
        }
        if let Some(e) = failure {
            for (s, (adds, dels)) in routed.iter().enumerate().take(applied) {
                let shard = &mut self.shards[s];
                shard.gpma.delete_edges(adds);
                shard.gpma.insert_edges(dels);
                shard.view = None;
            }
            stgraph_telemetry::counter("shard.rollbacks").inc();
            stgraph_faultline::note_rollback();
            self.refresh_stats();
            return Err(e);
        }
        self.refresh_stats();
        Ok(())
    }

    fn ensure_views(&mut self) {
        let owner = self.partition.owners();
        let mut dirty: Vec<(u32, &mut Shard)> = self
            .shards
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| s.view.is_none())
            .map(|(i, s)| (i as u32, s))
            .collect();
        if dirty.is_empty() {
            return;
        }
        dirty.par_chunks_mut(1).for_each(|it| {
            let (me, shard) = &mut it[0];
            shard.view = Some(shard.build_view(owner, *me));
        });
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(v) = &shard.view {
                self.stats.halo_edges[s].store(v.halo_edges, Ordering::Relaxed);
            }
        }
    }

    fn refresh_stats(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            self.stats.nodes[s].store(shard.locals.len(), Ordering::Relaxed);
            self.stats.edges[s].store(shard.gpma.num_edges(), Ordering::Relaxed);
            if let Some(v) = &shard.view {
                self.stats.halo_edges[s].store(v.halo_edges, Ordering::Relaxed);
            }
        }
    }

    /// Sum-aggregated forward pass (`out[v] = Σ feats[u]` over in-edges
    /// `(u, v)`), shard-parallel with one halo-exchange phase. Bitwise
    /// identical to [`dense_forward_sum`] over the merged snapshot.
    pub fn forward_sum(&mut self, feats: &Tensor) -> Tensor {
        let n = self.num_nodes;
        let w = feats.cols();
        assert_eq!(feats.rows(), n, "feature rows must match vertex count");
        self.ensure_views();

        // Phase 1: halo exchange. Pure in-process gathers cannot actually
        // fail, so injected faults are retried and then waved through —
        // degraded latency, never a lost forward (snapshot.build contract).
        let _sp = stgraph_telemetry::span_cat("shard.forward", "shard");
        let _ = stgraph_faultline::retry(&stgraph_faultline::RetryPolicy::default(), || {
            stgraph_faultline::fault_point!("shard.exchange")
        });
        let scratch: Vec<Tensor> = self
            .shards
            .iter()
            .map(|s| feats.gather_rows(&s.view.as_ref().unwrap().ghosts))
            .collect();

        // Phase 2: shard-local aggregation into disjoint output rows.
        let mut out = vec![0f32; n * w];
        {
            struct SharedOut(*mut f32);
            unsafe impl Sync for SharedOut {}
            let shared = SharedOut(out.as_mut_ptr());
            let shards = &self.shards;
            let fdata = feats.data();
            let body = |s: usize| {
                let shared = &shared;
                let shard = &shards[s];
                let view = shard.view.as_ref().unwrap();
                let gdata = scratch[s].data();
                for (li, &v) in shard.locals.iter().enumerate() {
                    // Ownership makes rows disjoint across shards, so the
                    // raw-pointer writes are race-free (reverse_csr's
                    // claimed-slot idiom).
                    let orow =
                        unsafe { std::slice::from_raw_parts_mut(shared.0.add(v as usize * w), w) };
                    // Densified rows accumulate in ascending source order —
                    // the same order [`dense_forward_sum`] uses, keeping
                    // sums bitwise equal to the single-store path.
                    for &e in &view.srcs[view.row_offset[li]..view.row_offset[li + 1]] {
                        let frow = if e & GHOST_BIT == 0 {
                            &fdata[e as usize * w..e as usize * w + w]
                        } else {
                            let gi = (e & !GHOST_BIT) as usize;
                            &gdata[gi * w..gi * w + w]
                        };
                        for (o, &f) in orow.iter_mut().zip(frow) {
                            *o += f;
                        }
                    }
                }
            };
            let k = shards.len();
            if k > 1 {
                (0..k).into_par_iter().for_each(body);
            } else {
                (0..k).for_each(body);
            }
        }
        Tensor::from_vec((n, w), out)
    }

    /// Merges all shards into one globally-labelled [`Snapshot`]
    /// (bitwise-identical to `NaiveGraph` over the same edge set).
    fn build_merged_snapshot(&mut self) -> Snapshot {
        let _sp = stgraph_telemetry::span_cat("shard.snapshot", "snapshot");
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges());
        for shard in &self.shards {
            edges.extend(
                shard
                    .gpma
                    .pma()
                    .iter()
                    .map(|(k, _)| (k as u32, shard.locals[(k >> 32) as usize])),
            );
        }
        edges.sort_unstable();
        Snapshot::from_edges(self.num_nodes, &edges)
    }

    /// Rolls the shard stores to timestamp `t` (routed, shard-parallel).
    fn roll_to(&mut self, t: usize) {
        while self.curr_time < t {
            let next = self.curr_time + 1;
            let u = std::mem::take(&mut self.updates[next - 1]);
            self.apply_batch(&u.additions, &u.deletions);
            self.updates[next - 1] = u;
            self.curr_time = next;
        }
        while self.curr_time > t {
            let cur = self.curr_time;
            let u = std::mem::take(&mut self.updates[cur - 1]);
            self.apply_batch(&u.deletions, &u.additions);
            self.updates[cur - 1] = u;
            self.curr_time = cur - 1;
        }
    }
}

impl DtdgGraph for ShardedGraph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    fn get_graph(&mut self, t: usize) -> Snapshot {
        assert!(t < self.num_timestamps, "timestamp {t} out of range");
        let _sp = span_timed("snapshot.forward", &self.update_time);
        self.roll_to(t);
        self.build_merged_snapshot()
    }

    fn get_backward_graph(&mut self, t: usize) -> Snapshot {
        let _sp = span_timed("snapshot.backward", &self.update_time);
        assert!(
            t <= self.curr_time,
            "Get-Backward-Graph must move backward (at {}, asked {t})",
            self.curr_time
        );
        self.roll_to(t);
        self.build_merged_snapshot()
    }

    fn take_update_time(&mut self) -> Duration {
        self.update_time.take()
    }
}

/// Applies per-shard `(additions, deletions)` buffers shard-parallel and
/// clears them.
fn par_apply(shards: &mut [Shard], work: &mut [ShardBatch]) {
    let mut items: Vec<(&mut Shard, &mut ShardBatch)> =
        shards.iter_mut().zip(work.iter_mut()).collect();
    items.par_chunks_mut(1).for_each(|it| {
        let (shard, (adds, dels)) = &mut it[0];
        if !adds.is_empty() {
            shard.gpma.insert_edges(adds);
            shard.view = None;
        }
        if !dels.is_empty() {
            shard.gpma.delete_edges(dels);
            shard.view = None;
        }
        adds.clear();
        dels.clear();
    });
}

fn flush_inserts(shards: &mut [Shard], bufs: &mut [Vec<(u32, u32)>]) {
    let mut work: Vec<ShardBatch> = bufs
        .iter_mut()
        .map(|b| (std::mem::take(b), Vec::new()))
        .collect();
    par_apply(shards, &mut work);
}

fn install_gauges(stats: &Arc<ShardStats>) {
    let s = Arc::clone(stats);
    stgraph_telemetry::register_labeled_gauge_provider("shard.stats", move || {
        let mut out = Vec::new();
        for i in 0..s.nodes.len() {
            let label = format!("shard=\"{i}\"");
            out.push((
                "shard.nodes".to_string(),
                label.clone(),
                s.nodes[i].load(Ordering::Relaxed) as f64,
            ));
            out.push((
                "shard.edges".to_string(),
                label.clone(),
                s.edges[i].load(Ordering::Relaxed) as f64,
            ));
            out.push((
                "shard.halo_edges".to_string(),
                label,
                s.halo_edges[i].load(Ordering::Relaxed) as f64,
            ));
        }
        out
    });
    let s = Arc::clone(stats);
    stgraph_telemetry::register_gauge("shard.edge_cut_ratio", move || {
        f64::from_bits(s.edge_cut_ratio.load(Ordering::Relaxed))
    });
}

/// Dense single-store oracle / baseline: `out[v] = Σ feats[u]` over the
/// snapshot's reverse CSR, accumulating each row in **ascending source
/// order** (reverse slot order — the sequential Algorithm-3 transpose
/// fills each row's slots with descending sources). This is the
/// accumulation order the sharded views use natively, so
/// [`ShardedGraph::forward_sum`] must match this bitwise for every K.
pub fn dense_forward_sum(snap: &Snapshot, feats: &Tensor) -> Tensor {
    let rcsr = &snap.reverse_csr;
    let n = rcsr.num_nodes();
    let w = feats.cols();
    assert_eq!(feats.rows(), n, "feature rows must match vertex count");
    let f = feats.data();
    let mut out = vec![0f32; n * w];
    for v in 0..n {
        let orow = &mut out[v * w..(v + 1) * w];
        for slot in (rcsr.row_offset[v]..rcsr.row_offset[v + 1]).rev() {
            let src = rcsr.col_indices[slot];
            if src == stgraph_graph::csr::SPACE {
                continue;
            }
            let frow = &f[src as usize * w..src as usize * w + w];
            for (o, &x) in orow.iter_mut().zip(frow) {
                *o += x;
            }
        }
    }
    Tensor::from_vec((n, w), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveGraph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeSet;
    use stgraph_graph::csr::Csr;

    fn csr_identical(a: &Csr, b: &Csr) -> bool {
        a.row_offset == b.row_offset
            && a.col_indices == b.col_indices
            && a.eids == b.eids
            && a.node_ids == b.node_ids
    }

    fn snapshot_identical(a: &Snapshot, b: &Snapshot) -> bool {
        csr_identical(&a.csr, &b.csr)
            && csr_identical(&a.reverse_csr, &b.reverse_csr)
            && a.in_degrees == b.in_degrees
            && a.out_degrees == b.out_degrees
    }

    fn random_source(seed: u64, n: u32, t: usize) -> DtdgSource {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut snaps = Vec::new();
        let mut cur: BTreeSet<(u32, u32)> = (0..260)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        snaps.push(cur.iter().copied().collect::<Vec<_>>());
        for _ in 1..t {
            let removals: Vec<(u32, u32)> =
                cur.iter().copied().filter(|_| rng.gen_bool(0.15)).collect();
            for r in &removals {
                cur.remove(r);
            }
            for _ in 0..removals.len() {
                cur.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            snaps.push(cur.iter().copied().collect());
        }
        DtdgSource::from_snapshot_edges(n as usize, snaps)
    }

    #[test]
    fn snapshots_bitwise_match_naive_for_all_k() {
        let src = random_source(21, 80, 5);
        let mut naive = NaiveGraph::new(&src);
        for k in [1, 2, 3, 4] {
            let mut sharded = ShardedGraph::from_source(&src, k);
            for t in 0..src.num_timestamps() {
                let a = sharded.get_graph(t);
                let b = naive.get_graph(t);
                assert!(snapshot_identical(&a, &b), "k={k} t={t} diverged");
            }
            // LIFO rewind must retrace bitwise too.
            for t in (0..src.num_timestamps()).rev() {
                let a = sharded.get_backward_graph(t);
                let b = naive.get_graph(t);
                assert!(snapshot_identical(&a, &b), "k={k} backward t={t}");
            }
        }
    }

    #[test]
    fn forward_sum_bitwise_matches_dense_oracle() {
        let src = random_source(33, 64, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let feats = Tensor::rand_uniform((64, 7), -1.0, 1.0, &mut rng);
        let mut naive = NaiveGraph::new(&src);
        for k in [1, 2, 3, 4] {
            let mut sharded = ShardedGraph::from_source(&src, k);
            for t in 0..src.num_timestamps() {
                let want = dense_forward_sum(&naive.get_graph(t), &feats);
                sharded.roll_to(t);
                let got = sharded.forward_sum(&feats);
                assert_eq!(
                    got.data(),
                    want.data(),
                    "k={k} t={t} forward not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn halo_accounting_matches_partition_cut() {
        let src = random_source(44, 100, 1);
        let mut sharded = ShardedGraph::from_source(&src, 4);
        let halo = sharded.halo_edges();
        // Every cross-shard edge is a halo edge in exactly one shard; the
        // graph's own (refined) partition counters are the reference.
        let ratio = sharded.edge_cut_ratio();
        assert_eq!(
            halo,
            (ratio * src.snapshots[0].len() as f64).round() as usize
        );
        assert_eq!(sharded.num_edges(), src.snapshots[0].len());
    }

    #[test]
    fn try_apply_rolls_back_on_exchange_fault() {
        let _g = stgraph_faultline::test_lock();
        stgraph_faultline::clear_plan();
        let src = random_source(55, 60, 2);
        let batch = src.diffs().remove(0);
        let mut sharded = ShardedGraph::from_source(&src, 3);
        let before = sharded.get_graph(0);

        stgraph_faultline::set_plan(
            stgraph_faultline::FaultPlan::new().fail_nth("shard.exchange", 1),
        );
        assert!(sharded.try_apply_batch(&batch).is_err());
        stgraph_faultline::clear_plan();
        let after_fault = sharded.build_merged_snapshot();
        assert!(
            snapshot_identical(&before, &after_fault),
            "faulted batch must leave the graph untouched"
        );

        // Retry cleanly: must land the full batch.
        sharded.try_apply_batch(&batch).unwrap();
        let want = NaiveGraph::new(&src).get_graph(1);
        let got = sharded.build_merged_snapshot();
        assert!(snapshot_identical(&got, &want));
    }

    #[test]
    fn try_apply_rolls_back_on_mid_batch_gpma_fault() {
        let _g = stgraph_faultline::test_lock();
        stgraph_faultline::clear_plan();
        let src = random_source(66, 60, 2);
        let batch = src.diffs().remove(0);
        let mut sharded = ShardedGraph::from_source(&src, 4);
        let before = sharded.get_graph(0);

        // Fail the third gpma.update hit: some shards have applied, one
        // dies mid-routed-batch.
        stgraph_faultline::set_plan(stgraph_faultline::FaultPlan::new().fail_nth("gpma.update", 3));
        assert!(sharded.try_apply_batch(&batch).is_err());
        stgraph_faultline::clear_plan();
        let after_fault = sharded.build_merged_snapshot();
        assert!(snapshot_identical(&before, &after_fault));
        for s in &sharded.shards {
            s.gpma.pma().check_invariants();
        }
    }

    #[test]
    fn streaming_build_matches_source_build() {
        let src = random_source(77, 90, 1);
        let edges = src.snapshots[0].clone();
        let mut a = ShardedGraph::from_source(&src, 4);
        let mut b = ShardedGraph::from_edge_stream(90, 4, || edges.iter().copied());
        let sa = a.get_graph(0);
        let sb = b.get_graph(0);
        assert!(snapshot_identical(&sa, &sb));
    }

    #[test]
    fn shards_from_env_defaults_to_one() {
        // (Does not set the variable: just checks the unset default.)
        if std::env::var("STGRAPH_SHARDS").is_err() {
            assert_eq!(shards_from_env(), 1);
        }
    }
}
