//! # stgraph-dyngraph
//!
//! Discrete-time dynamic graphs for STGraph: the common [`DtdgSource`]
//! (including the paper's windowed snapshot builder), the [`DtdgGraph`]
//! on-demand snapshot interface, and its two implementations —
//! [`NaiveGraph`] (all snapshots precomputed, §V.C) and [`GpmaGraph`]
//! (base graph + temporal updates in a GPMA, §V.D).

#![warn(missing_docs)]

pub mod gpma_graph;
pub mod naive;
pub mod source;

pub use gpma_graph::GpmaGraph;
pub use naive::NaiveGraph;
pub use source::{DtdgGraph, DtdgSource, UpdateBatch};
