//! # stgraph-dyngraph
//!
//! Discrete-time dynamic graphs for STGraph: the common [`DtdgSource`]
//! (including the paper's windowed snapshot builder), the [`DtdgGraph`]
//! on-demand snapshot interface, and its implementations —
//! [`NaiveGraph`] (all snapshots precomputed, §V.C), [`GpmaGraph`]
//! (base graph + temporal updates in a GPMA, §V.D), and [`ShardedGraph`]
//! (K edge-cut GPMA shards with halo exchange, partitioned by
//! [`partition::Partition`]).

#![warn(missing_docs)]

pub mod gpma_graph;
pub mod naive;
pub mod partition;
pub mod sharded;
pub mod source;

pub use gpma_graph::GpmaGraph;
pub use naive::NaiveGraph;
pub use partition::Partition;
pub use sharded::{dense_forward_sum, shards_from_env, ShardedGraph};
pub use source::{DtdgGraph, DtdgSource, UpdateBatch};
