//! Named counters, gauges and registry histograms.
//!
//! Counters and histograms are interned by name into leaked cells, so a
//! looked-up handle is a `Copy` reference valid for the process lifetime —
//! hot call sites can cache one and pay a single relaxed `fetch_add` per
//! event. Gauges are *pull*-style: a registered closure (or provider
//! returning many named readings, for dynamic sets like the per-pool
//! memory tracker) is evaluated only when an exporter snapshots.

use crate::hist::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static COUNTERS: OnceLock<Mutex<HashMap<String, &'static AtomicU64>>> = OnceLock::new();
static HISTOGRAMS: OnceLock<Mutex<HashMap<String, &'static Histogram>>> = OnceLock::new();

/// Labeled series are interned by `(name, rendered-label-set)`; the label
/// set is rendered once at intern time in Prometheus form
/// (`tenant="a",proto="http"`, keys sorted) so exporters emit it verbatim.
type LabeledKey = (String, String);
static LABELED_COUNTERS: OnceLock<Mutex<HashMap<LabeledKey, &'static AtomicU64>>> = OnceLock::new();
static LABELED_HISTOGRAMS: OnceLock<Mutex<HashMap<LabeledKey, &'static Histogram>>> =
    OnceLock::new();

/// Renders a label set in Prometheus form with keys sorted (so the same
/// logical series always interns to the same cell) and values escaped.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;
type ProviderFn = Box<dyn Fn() -> Vec<(String, f64)> + Send + Sync>;
type LabeledProviderFn = Box<dyn Fn() -> Vec<(String, String, f64)> + Send + Sync>;

static GAUGES: OnceLock<Mutex<HashMap<String, GaugeFn>>> = OnceLock::new();
static PROVIDERS: OnceLock<Mutex<HashMap<String, ProviderFn>>> = OnceLock::new();
static LABELED_PROVIDERS: OnceLock<Mutex<HashMap<String, LabeledProviderFn>>> = OnceLock::new();

/// A handle to an interned monotone counter. `Copy`; cache it at hot call
/// sites to skip the name lookup.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Interns (or finds) the counter called `name`.
pub fn counter(name: &str) -> Counter {
    let map = COUNTERS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(cell) = map.get(name) {
        return Counter(cell);
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    map.insert(name.to_string(), cell);
    Counter(cell)
}

/// Interns (or finds) the registry histogram called `name` (default exact
/// cap; see [`Histogram`]).
pub fn histogram(name: &str) -> &'static Histogram {
    let map = HISTOGRAMS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), h);
    h
}

/// Interns (or finds) the labeled counter `name{labels}` — e.g.
/// `counter_labeled("net.requests", &[("tenant", "acme")])`. Same cost
/// model as [`counter`]: the returned handle is `Copy`, cache it at hot
/// call sites. Label keys are sorted at intern time, so label order never
/// splits a series.
pub fn counter_labeled(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = (name.to_string(), render_labels(labels));
    let map = LABELED_COUNTERS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(cell) = map.get(&key) {
        return Counter(cell);
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    map.insert(key, cell);
    Counter(cell)
}

/// Interns (or finds) the labeled registry histogram `name{labels}` — the
/// per-tenant latency series the network tier records into.
pub fn histogram_labeled(name: &str, labels: &[(&str, &str)]) -> &'static Histogram {
    let key = (name.to_string(), render_labels(labels));
    let map = LABELED_HISTOGRAMS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(h) = map.get(&key) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(key, h);
    h
}

/// Registers (or replaces) a pull-style gauge: `f` is evaluated at export
/// time only.
pub fn register_gauge(name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
    GAUGES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap()
        .insert(name.to_string(), Box::new(f));
}

/// Registers (or replaces) a gauge *provider*: at export time `f` returns
/// any number of `(name, value)` readings. Used for dynamic sets — e.g.
/// one `mem.<pool>.live` gauge per memory pool ever created.
pub fn register_gauge_provider(
    key: &str,
    f: impl Fn() -> Vec<(String, f64)> + Send + Sync + 'static,
) {
    PROVIDERS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap()
        .insert(key.to_string(), Box::new(f));
}

/// Registers (or replaces) a *labeled* gauge provider: at export time `f`
/// returns `(name, rendered-label-body, value)` readings, rendered by the
/// Prometheus exporter as `stgraph_<name>{<labels>} <value>`. Used for
/// per-instance series of dynamic cardinality — e.g. one
/// `shard.edges{shard="3"}` reading per graph shard.
pub fn register_labeled_gauge_provider(
    key: &str,
    f: impl Fn() -> Vec<(String, String, f64)> + Send + Sync + 'static,
) {
    LABELED_PROVIDERS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap()
        .insert(key.to_string(), Box::new(f));
}

/// Evaluates every labeled gauge provider, returning
/// `(name, label-body, value)` sorted by name then label set.
pub fn labeled_gauge_values() -> Vec<(String, String, f64)> {
    let mut out: Vec<(String, String, f64)> = Vec::new();
    if let Some(map) = LABELED_PROVIDERS.get() {
        let map = map.lock().unwrap();
        for f in map.values() {
            out.extend(f());
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

/// Snapshots every counter as `(name, value)`, sorted by name.
pub fn counter_values() -> Vec<(String, u64)> {
    let Some(map) = COUNTERS.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    let mut out: Vec<(String, u64)> = map
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Evaluates every gauge and provider, returning `(name, value)` sorted by
/// name.
pub fn gauge_values() -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    if let Some(map) = GAUGES.get() {
        let map = map.lock().unwrap();
        out.extend(map.iter().map(|(n, f)| (n.clone(), f())));
    }
    if let Some(map) = PROVIDERS.get() {
        let map = map.lock().unwrap();
        for f in map.values() {
            out.extend(f());
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Snapshots every labeled counter as `(name, labels, value)`, sorted by
/// name then label set. `labels` is the rendered Prometheus body
/// (`tenant="a"`), ready to wrap in braces.
pub fn labeled_counter_values() -> Vec<(String, String, u64)> {
    let Some(map) = LABELED_COUNTERS.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    let mut out: Vec<(String, String, u64)> = map
        .iter()
        .map(|((n, l), c)| (n.clone(), l.clone(), c.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

/// Snapshots every labeled histogram as `(name, labels, &Histogram)`,
/// sorted by name then label set.
pub fn labeled_histogram_values() -> Vec<(String, String, &'static Histogram)> {
    let Some(map) = LABELED_HISTOGRAMS.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    let mut out: Vec<(String, String, &'static Histogram)> = map
        .iter()
        .map(|((n, l), h)| (n.clone(), l.clone(), *h))
        .collect();
    out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    out
}

/// Snapshots every registry histogram as `(name, &Histogram)`, sorted.
pub fn histogram_values() -> Vec<(String, &'static Histogram)> {
    let Some(map) = HISTOGRAMS.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    let mut out: Vec<(String, &'static Histogram)> =
        map.iter().map(|(n, h)| (n.clone(), *h)).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let c1 = counter("test.metrics.counter");
        let c2 = counter("test.metrics.counter");
        let before = c1.get();
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), before + 3, "handles share one cell");
        assert!(counter_values()
            .iter()
            .any(|(n, _)| n == "test.metrics.counter"));
    }

    #[test]
    fn histograms_intern() {
        let h = histogram("test.metrics.hist");
        h.record(42);
        assert_eq!(histogram("test.metrics.hist").count(), h.count());
    }

    #[test]
    fn labeled_counters_intern_per_series_and_ignore_label_order() {
        let a = counter_labeled("test.metrics.lbl", &[("tenant", "a"), ("proto", "http")]);
        let a2 = counter_labeled("test.metrics.lbl", &[("proto", "http"), ("tenant", "a")]);
        let b = counter_labeled("test.metrics.lbl", &[("tenant", "b"), ("proto", "http")]);
        let before_a = a.get();
        let before_b = b.get();
        a.inc();
        a2.add(2);
        b.inc();
        assert_eq!(a.get(), before_a + 3, "label order must not split series");
        assert_eq!(b.get(), before_b + 1);
        let snap = labeled_counter_values();
        let row = snap
            .iter()
            .find(|(n, l, _)| n == "test.metrics.lbl" && l.contains("tenant=\"a\""))
            .expect("labeled series snapshotted");
        assert_eq!(row.1, "proto=\"http\",tenant=\"a\"", "keys sorted");
    }

    #[test]
    fn labeled_histograms_intern_and_snapshot() {
        let h = histogram_labeled("test.metrics.lblhist", &[("tenant", "z")]);
        h.record(10);
        let snap = labeled_histogram_values();
        let (_, labels, got) = snap
            .iter()
            .find(|(n, _, _)| n == "test.metrics.lblhist")
            .expect("labeled histogram snapshotted");
        assert_eq!(labels, "tenant=\"z\"");
        assert!(got.count() >= 1);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            render_labels(&[("k", "a\"b\\c")]),
            "k=\"a\\\"b\\\\c\"",
            "quotes and backslashes escaped"
        );
    }

    #[test]
    fn gauges_pull_at_snapshot_time() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let v = Arc::new(AtomicU64::new(7));
        let v2 = Arc::clone(&v);
        register_gauge("test.metrics.gauge", move || {
            v2.load(Ordering::Relaxed) as f64
        });
        register_gauge_provider("test.metrics.provider", || {
            vec![("test.metrics.provided".to_string(), 1.5)]
        });
        let read = |name: &str| {
            gauge_values()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, x)| x)
        };
        assert_eq!(read("test.metrics.gauge"), Some(7.0));
        v.store(9, Ordering::Relaxed);
        assert_eq!(read("test.metrics.gauge"), Some(9.0), "pull, not push");
        assert_eq!(read("test.metrics.provided"), Some(1.5));
    }
}
