//! # stgraph-telemetry
//!
//! The one observability subsystem every layer of the STGraph stack reports
//! into. The paper's headline results are all *measurements* — kernel time,
//! snapshot-construction time, stack push/pop cost, memory footprint — and
//! before this crate each was captured by a different ad-hoc mechanism.
//! Here they share one vocabulary:
//!
//! * **Spans** ([`span`], [`span_timed`]) — hierarchical timed regions kept
//!   on a thread-local stack. When tracing is enabled each completed span
//!   feeds a lock-free per-name aggregate (count / total / max, all relaxed
//!   atomics, merged correctly across rayon workers) and a per-thread
//!   Chrome `trace_event` buffer. When tracing is *disabled* entering a
//!   span is a single relaxed atomic load returning an inert guard.
//! * **Counters** ([`counter`]) and **gauges**
//!   ([`register_gauge`], [`register_gauge_provider`]) — always-on
//!   monotone/atomic values and export-time sampled readings (the tensor
//!   crate re-exposes its pool and memory trackers this way).
//! * **Histograms** ([`histogram`], [`hist::Histogram`]) — log-bucketed,
//!   mergeable, with an exact nearest-rank fallback while the sample count
//!   is small, so the serve engine's p50/p95/p99 report is bit-for-bit what
//!   the old bespoke recorder produced.
//! * **Exporters** ([`export`]) — a Chrome `trace_event` JSON timeline
//!   (`--trace <path>` on the `train` and `serve` binaries, read it in
//!   `chrome://tracing` or Perfetto) and a Prometheus-style text exposition
//!   snapshot of every counter, gauge, histogram and span aggregate.
//!
//! Tracing is gated by the `STGRAPH_TRACE` environment variable (any
//! non-empty value other than `0`) or programmatically via
//! [`set_enabled`] — which is what `--trace` does.

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod span;

pub use hist::Histogram;
pub use metrics::{
    counter, counter_labeled, histogram, histogram_labeled, register_gauge,
    register_gauge_provider, register_labeled_gauge_provider, Counter,
};
pub use span::{span, span_cat, span_timed, SpanGuard, TimeAccumulator};

use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// True when tracing (spans + trace events) is on. After the first call
/// this is exactly one relaxed atomic load — the disabled-path cost every
/// hot layer pays per instrumentation point.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("STGRAPH_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Turns tracing on or off for the whole process, overriding
/// `STGRAPH_TRACE`. The `--trace` flag calls this at startup; tests use it
/// to exercise the enabled paths deterministically.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Serialises tests that toggle the process-global enabled flag.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_overrides_env() {
        let _g = test_guard();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
