//! Log-bucketed mergeable histograms with an exact small-sample fallback.
//!
//! A [`Histogram`] records non-negative `u64` samples (by convention,
//! nanoseconds for latencies; raw counts elsewhere) into power-of-two
//! buckets: sample `v > 0` lands in bucket `bitlen(v)`, i.e. bucket `b`
//! covers `[2^(b-1), 2^b - 1]`, so a bucket-derived quantile is within 2×
//! of the true value. Alongside the buckets the histogram keeps the raw
//! samples up to a cap; while the cap is not exceeded quantiles are *exact
//! nearest-rank* — the same definition the serve engine's latency report
//! has always used — and only degrade to bucket resolution on overflow.
//!
//! All bucket/counter state is relaxed atomics, so concurrent recording
//! from rayon workers is lock-free and loss-free; the exact-sample vector
//! takes an uncontended mutex. Histograms [`merge`](Histogram::merge_from)
//! associatively: bucket counts and sums add, min/max combine, and exact
//! sample sets concatenate (degrading to buckets only if the merged count
//! overflows the cap).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two buckets: bucket 0 holds zeros, bucket `b` holds
/// samples of bit length `b` (1..=64).
pub const N_BUCKETS: usize = 65;

/// Default cap on exactly-kept samples. Below this, quantiles are exact
/// nearest-rank; above it, bucket resolution (within 2×).
pub const DEFAULT_EXACT_CAP: usize = 65_536;

fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value a bucket-resolution
/// quantile reports).
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A concurrent log-bucketed histogram. See the module docs.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    exact: Mutex<Vec<u64>>,
    exact_cap: usize,
    overflowed: AtomicBool,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("exact", &!self.overflowed())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram with the default exact-sample cap.
    pub fn new() -> Histogram {
        Histogram::with_exact_cap(DEFAULT_EXACT_CAP)
    }

    /// An empty histogram keeping up to `cap` raw samples for exact
    /// quantiles. `usize::MAX` never degrades (the serve latency recorder
    /// uses this: it must reproduce the historical exact percentiles).
    pub fn with_exact_cap(cap: usize) -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exact: Mutex::new(Vec::new()),
            exact_cap: cap,
            overflowed: AtomicBool::new(false),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if !self.overflowed.load(Ordering::Relaxed) {
            let mut exact = self.exact.lock().unwrap();
            if exact.len() < self.exact_cap {
                exact.push(v);
            } else {
                self.overflowed.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.is_empty() {
            0
        } else {
            m
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Mean as a [`Duration`] of nanoseconds.
    pub fn mean_duration(&self) -> Duration {
        Duration::from_nanos(self.mean())
    }

    /// True once the histogram dropped to bucket resolution (exact cap
    /// exceeded, directly or through a merge).
    pub fn overflowed(&self) -> bool {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile, `p` in `0..=100`; 0 when empty.
    ///
    /// Exact while the raw samples fit the cap; at bucket resolution the
    /// reported value is the bucket's inclusive upper bound clamped into
    /// `[min, max]`, hence within 2× of the true order statistic.
    pub fn quantile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if !self.overflowed() {
            let mut samples = self.exact.lock().unwrap().clone();
            return nearest_rank(&mut samples, p);
        }
        let rank = (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (b, cell) in self.buckets.iter().enumerate() {
            cum += cell.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper(b).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// [`Histogram::quantile`] as a [`Duration`] of nanoseconds.
    pub fn quantile_duration(&self, p: f64) -> Duration {
        Duration::from_nanos(self.quantile(p))
    }

    /// Folds another histogram into this one. Bucket counts, counts and
    /// sums add; min/max combine; exact samples concatenate, degrading to
    /// bucket resolution only when the merged sample set exceeds this
    /// histogram's cap (or either side had already overflowed).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        if other.overflowed() {
            self.overflowed.store(true, Ordering::Relaxed);
        }
        if !self.overflowed() {
            // Lock order: always self before other. Merges in this codebase
            // fold worker-local histograms into one target, so the pair is
            // never locked in the opposite order concurrently.
            let mut mine = self.exact.lock().unwrap();
            let theirs = other.exact.lock().unwrap();
            if mine.len() + theirs.len() <= self.exact_cap {
                mine.extend_from_slice(&theirs);
            } else {
                self.overflowed.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Per-bucket counts as `(inclusive_upper_bound, count)` for non-empty
    /// buckets, in increasing bound order (the Prometheus exporter reads
    /// this).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(b), n))
            })
            .collect()
    }

    /// Clears all state (tests and A/B sweeps).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.exact.lock().unwrap().clear();
        self.overflowed.store(false, Ordering::Relaxed);
    }
}

/// The nearest-rank order statistic on an unsorted sample set — the single
/// definition every percentile report in the workspace now shares.
pub fn nearest_rank(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let n = samples.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    samples[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn exact_quantiles_match_nearest_rank() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(!h.overflowed());
        assert_eq!(h.quantile(50.0), 50);
        assert_eq!(h.quantile(95.0), 95);
        assert_eq!(h.quantile(99.0), 99);
        assert_eq!(h.quantile(100.0), 100);
        assert_eq!(h.mean(), 50); // integer mean of 50.5
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(99.0), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn overflow_degrades_to_buckets_within_2x() {
        let h = Histogram::with_exact_cap(10);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.overflowed());
        for p in [10.0, 50.0, 90.0, 99.0] {
            let approx = h.quantile(p);
            let exact = ((p / 100.0) * 1000.0).ceil() as u64;
            assert!(
                approx >= exact && approx <= exact.saturating_mul(2),
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_preserves_exact_path() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=50 {
            a.record(v);
        }
        for v in 51..=100 {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.quantile(50.0), 50);
        assert_eq!(a.quantile(99.0), 99);
        assert_eq!(a.max(), 100);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn merge_overflow_degrades() {
        let a = Histogram::with_exact_cap(60);
        let b = Histogram::with_exact_cap(60);
        for v in 1..=50 {
            a.record(v);
            b.record(v + 50);
        }
        a.merge_from(&b);
        assert!(a.overflowed());
        assert_eq!(a.count(), 100);
        let q = a.quantile(50.0);
        assert!((50..=100).contains(&q), "bucketed median {q}");
    }

    #[test]
    fn duration_roundtrip() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(120));
        assert_eq!(h.quantile_duration(50.0), Duration::from_micros(120));
        assert_eq!(h.mean_duration(), Duration::from_micros(120));
    }

    #[test]
    fn buckets_expose_cumulative_material() {
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(900);
        let buckets = h.buckets();
        let total: u64 = buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(50.0), 0);
    }
}
