//! Hierarchical timed spans with a thread-local span stack.
//!
//! [`span`] opens a named region; dropping the returned [`SpanGuard`]
//! closes it. Nesting is tracked per thread (the stack unwinds correctly
//! through panics because closing happens in `Drop`), completed spans feed
//! a per-name lock-free aggregate (relaxed atomics, safe to update from
//! any rayon worker) and, while tracing is enabled, a per-thread Chrome
//! `trace_event` buffer the exporter drains.
//!
//! [`span_timed`] additionally folds the measured duration into a caller-
//! owned [`TimeAccumulator`] *whether or not tracing is enabled* — that is
//! how the executor's `gnn_time` and the GPMA's `update_time` totals keep
//! working with `STGRAPH_TRACE` unset, with the timing arithmetic living
//! here instead of at every call site.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A shared nanosecond accumulator (cheap to clone; all clones add into
/// the same total). Replaces the `Cell<Duration>` / bare `Duration`
/// timers the executor and graph stores used to keep by hand.
#[derive(Clone, Default, Debug)]
pub struct TimeAccumulator(Arc<AtomicU64>);

impl TimeAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> TimeAccumulator {
        TimeAccumulator::default()
    }

    /// Adds a duration.
    pub fn add(&self, d: Duration) {
        self.0
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Reads the running total.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::Relaxed))
    }

    /// Drains the total, resetting it to zero.
    pub fn take(&self) -> Duration {
        Duration::from_nanos(self.0.swap(0, Ordering::Relaxed))
    }
}

/// Lock-free per-name aggregate of completed spans.
struct SpanStatCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Snapshot of one span name's aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans under this name.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

static SPAN_STATS: OnceLock<Mutex<HashMap<&'static str, &'static SpanStatCell>>> = OnceLock::new();

fn span_stat_cell(name: &'static str) -> &'static SpanStatCell {
    let map = SPAN_STATS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    map.entry(name).or_insert_with(|| {
        Box::leak(Box::new(SpanStatCell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }))
    })
}

/// Snapshots every span aggregate, sorted by name.
pub fn span_stats() -> Vec<(String, SpanStat)> {
    let Some(map) = SPAN_STATS.get() else {
        return Vec::new();
    };
    let map = map.lock().unwrap();
    let mut out: Vec<(String, SpanStat)> = map
        .iter()
        .map(|(name, cell)| {
            (
                name.to_string(),
                SpanStat {
                    count: cell.count.load(Ordering::Relaxed),
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                    max_ns: cell.max_ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// One completed region, Chrome `trace_event` "complete" (`ph:"X"`) shaped.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Category (`cat` in the trace viewer; defaults to `"stgraph"`).
    pub cat: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Dense telemetry thread id (not the OS tid).
    pub tid: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: usize,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

type EventBuf = Arc<Mutex<Vec<TraceEvent>>>;

static ALL_BUFFERS: OnceLock<Mutex<Vec<EventBuf>>> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_BUF: RefCell<Option<(u64, EventBuf)>> = const { RefCell::new(None) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn with_local_buf(f: impl FnOnce(u64, &EventBuf)) {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, buf) = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf: EventBuf = Arc::new(Mutex::new(Vec::new()));
            ALL_BUFFERS
                .get_or_init(|| Mutex::new(Vec::new()))
                .lock()
                .unwrap()
                .push(Arc::clone(&buf));
            (tid, buf)
        });
        f(*tid, buf);
    });
}

/// Drains every thread's pending trace events (exporters call this once).
pub fn drain_events() -> Vec<TraceEvent> {
    let Some(bufs) = ALL_BUFFERS.get() else {
        return Vec::new();
    };
    let bufs = bufs.lock().unwrap();
    let mut out = Vec::new();
    for buf in bufs.iter() {
        out.append(&mut buf.lock().unwrap());
    }
    out.sort_by_key(|e| (e.tid, e.start_ns));
    out
}

/// Current span nesting depth on this thread (tests / stack-depth gauges).
pub fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// RAII guard for one span. Created by [`span`], [`span_cat`] or
/// [`span_timed`]; the region closes when the guard drops (including
/// during panic unwinding, which is what keeps the thread-local stack
/// consistent under test failures).
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    /// `None` = fully inert (tracing disabled, nothing to time).
    start: Option<Instant>,
    acc: Option<TimeAccumulator>,
    /// Record aggregate + trace event on drop.
    traced: bool,
    depth: usize,
}

impl SpanGuard {
    fn open(name: &'static str, cat: &'static str, acc: Option<TimeAccumulator>) -> SpanGuard {
        let traced = crate::enabled();
        if !traced && acc.is_none() {
            return SpanGuard {
                name,
                cat,
                start: None,
                acc: None,
                traced: false,
                depth: 0,
            };
        }
        let depth = if traced {
            DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            })
        } else {
            0
        };
        SpanGuard {
            name,
            cat,
            start: Some(Instant::now()),
            acc,
            traced,
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        if let Some(acc) = &self.acc {
            acc.add(dur);
        }
        if !self.traced {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let cell = span_stat_cell(self.name);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        cell.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
        let start_ns = start
            .saturating_duration_since(epoch())
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let depth = self.depth;
        with_local_buf(|tid, buf| {
            buf.lock().unwrap().push(TraceEvent {
                name: self.name,
                cat: self.cat,
                start_ns,
                dur_ns,
                tid,
                depth,
            });
        });
    }
}

/// Opens a span. With tracing disabled this is one relaxed atomic load and
/// an inert guard — no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, "stgraph", None)
}

/// [`span`] with an explicit trace-viewer category.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    SpanGuard::open(name, cat, None)
}

/// Opens a span that *always* measures wall time and folds it into `acc`,
/// tracing the region as well when enabled. Use where the duration feeds a
/// live total (e.g. the executor's GNN-time split) rather than being pure
/// observability.
#[inline]
pub fn span_timed(name: &'static str, acc: &TimeAccumulator) -> SpanGuard {
    SpanGuard::open(name, "stgraph", Some(acc.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (the enabled flag, aggregate
    // cells, event buffers); each test uses unique span names and delta
    // assertions so parallel execution stays sound.

    fn stat(name: &str) -> SpanStat {
        span_stats()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .unwrap_or(SpanStat {
                count: 0,
                total_ns: 0,
                max_ns: 0,
            })
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let before = stat("test.inert");
        {
            let _s = span("test.inert");
            assert_eq!(current_depth(), 0);
        }
        assert_eq!(stat("test.inert").count, before.count);
    }

    #[test]
    fn enabled_spans_nest_and_aggregate() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let before = stat("test.outer");
        {
            let _a = span("test.outer");
            assert_eq!(current_depth(), 1);
            {
                let _b = span("test.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let after = stat("test.outer");
        assert_eq!(after.count, before.count + 1);
        assert!(after.total_ns >= before.total_ns);
        crate::set_enabled(false);
    }

    #[test]
    fn unwind_pops_the_stack() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            let _a = span("test.unwind.outer");
            let _b = span("test.unwind.inner");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(current_depth(), 0, "guards must close during unwind");
        assert!(stat("test.unwind.inner").count >= 1);
        crate::set_enabled(false);
    }

    #[test]
    fn span_timed_accumulates_even_when_disabled() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let acc = TimeAccumulator::new();
        {
            let _s = span_timed("test.timed", &acc);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(acc.total() >= Duration::from_millis(1));
        let drained = acc.take();
        assert!(drained >= Duration::from_millis(1));
        assert_eq!(acc.total(), Duration::ZERO);
    }

    #[test]
    fn events_record_and_drain() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        {
            let _s = span("test.event.drain-me");
        }
        let events = drain_events();
        assert!(events.iter().any(|e| e.name == "test.event.drain-me"));
        crate::set_enabled(false);
    }
}
