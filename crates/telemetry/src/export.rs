//! Exporters: Chrome `trace_event` JSON and Prometheus text exposition.
//!
//! Both are hand-serialised so the crate stays dependency-free; the JSON
//! emitter escapes strings per RFC 8259 and the output is validated with a
//! real parser in the dev-dependency tests.

use crate::hist::Histogram;
use crate::metrics;
use crate::span::{self, TraceEvent};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_event(out: &mut String, e: &TraceEvent) {
    // Chrome's trace viewer takes ts/dur in microseconds; fractional µs are
    // accepted, so nanosecond precision is kept as a decimal.
    out.push_str("{\"name\":\"");
    escape_json_into(out, e.name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, e.cat);
    let _ = write!(
        out,
        "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"depth\":{}}}}}",
        e.tid,
        e.start_ns / 1_000,
        e.start_ns % 1_000,
        e.dur_ns / 1_000,
        e.dur_ns % 1_000,
        e.depth
    );
}

/// Drains all pending trace events and renders them as a Chrome
/// `trace_event` JSON document (the `{"traceEvents": [...]}` object form),
/// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let events = span::drain_events();
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_event(&mut out, e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// [`chrome_trace_json`] straight to a file.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Rewrites a dotted metric name (`pma.rebalance_slots`) into a Prometheus
/// series name (`stgraph_pma_rebalance_slots`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("stgraph_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Writes one histogram's bucket/sum/count series. `labels` is the
/// pre-rendered label body (empty for unlabeled series); the `le` bucket
/// label is appended after it. The `# TYPE` line is emitted only the first
/// time `name` is seen, so many labeled series of one metric parse as one
/// histogram family.
fn write_histogram(
    out: &mut String,
    typed: &mut std::collections::HashSet<String>,
    name: &str,
    labels: &str,
    h: &Histogram,
) {
    let base = prom_name(name);
    if typed.insert(base.clone()) {
        let _ = writeln!(out, "# TYPE {base} histogram");
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (upper, n) in h.buckets() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(
            out,
            "{base}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{base}_sum{brace} {}", h.sum());
    let _ = writeln!(out, "{base}_count{brace} {}", h.count());
}

/// Renders every counter, gauge, histogram and span aggregate as
/// Prometheus text exposition format (version 0.0.4) — including the
/// labeled series the network tier records per tenant
/// (`stgraph_net_requests{tenant="acme"} 5`). Span aggregates become three
/// series labelled by span name: `stgraph_span_count{span="..."}`,
/// `_total_ns`, `_max_ns`.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (name, v) in metrics::counter_values() {
        let base = prom_name(&name);
        if typed.insert(base.clone()) {
            let _ = writeln!(out, "# TYPE {base} counter");
        }
        let _ = writeln!(out, "{base} {v}");
    }
    for (name, labels, v) in metrics::labeled_counter_values() {
        let base = prom_name(&name);
        if typed.insert(base.clone()) {
            let _ = writeln!(out, "# TYPE {base} counter");
        }
        let _ = writeln!(out, "{base}{{{labels}}} {v}");
    }
    for (name, v) in metrics::gauge_values() {
        let base = prom_name(&name);
        if typed.insert(base.clone()) {
            let _ = writeln!(out, "# TYPE {base} gauge");
        }
        let _ = writeln!(out, "{base} {}", prom_f64(v));
    }
    for (name, labels, v) in metrics::labeled_gauge_values() {
        let base = prom_name(&name);
        if typed.insert(base.clone()) {
            let _ = writeln!(out, "# TYPE {base} gauge");
        }
        let _ = writeln!(out, "{base}{{{labels}}} {}", prom_f64(v));
    }
    let mut hist_typed = std::collections::HashSet::new();
    for (name, h) in metrics::histogram_values() {
        write_histogram(&mut out, &mut hist_typed, &name, "", h);
    }
    for (name, labels, h) in metrics::labeled_histogram_values() {
        write_histogram(&mut out, &mut hist_typed, &name, &labels, h);
    }
    let stats = span::span_stats();
    if !stats.is_empty() {
        let _ = writeln!(out, "# TYPE stgraph_span_count counter");
        let _ = writeln!(out, "# TYPE stgraph_span_total_ns counter");
        let _ = writeln!(out, "# TYPE stgraph_span_max_ns gauge");
        for (name, s) in &stats {
            let _ = writeln!(out, "stgraph_span_count{{span=\"{name}\"}} {}", s.count);
            let _ = writeln!(
                out,
                "stgraph_span_total_ns{{span=\"{name}\"}} {}",
                s.total_ns
            );
            let _ = writeln!(out, "stgraph_span_max_ns{{span=\"{name}\"}} {}", s.max_ns);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        {
            let _a = crate::span("test.export.outer");
            let _b = crate::span_cat("test.export.inner", "kernel");
        }
        crate::set_enabled(false);
        let json = chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
        assert!(names.contains(&"test.export.outer"));
        assert!(names.contains(&"test.export.inner"));
        let inner = events
            .iter()
            .find(|e| e["name"] == "test.export.inner")
            .unwrap();
        assert_eq!(inner["ph"], "X");
        assert_eq!(inner["cat"], "kernel");
        assert_eq!(inner["pid"], 1);
        assert!(inner["ts"].as_f64().is_some());
        assert!(inner["dur"].as_f64().is_some());
    }

    #[test]
    fn chrome_trace_empty_is_valid_json() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        // Drain anything left behind by other tests, then render empty.
        let _ = span::drain_events();
        let json = chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(doc["traceEvents"].as_array().unwrap().is_empty());
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        escape_json_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn prometheus_text_exposes_counters_and_histograms() {
        let _g = crate::test_guard();
        crate::counter("test.export.counter").add(5);
        crate::histogram("test.export.hist").record(100);
        crate::metrics::register_gauge("test.export.gauge", || 2.5);
        let text = prometheus_text();
        assert!(
            text.contains("stgraph_test_export_counter 5")
                || text.contains("stgraph_test_export_counter ")
        );
        assert!(text.contains("stgraph_test_export_gauge 2.5"));
        assert!(text.contains("stgraph_test_export_hist_count"));
        assert!(text.contains("stgraph_test_export_hist_bucket{le=\"+Inf\"}"));
        assert!(text.contains("stgraph_test_export_hist_sum"));
    }

    #[test]
    fn prometheus_text_exposes_labeled_series_with_one_type_line() {
        let _g = crate::test_guard();
        crate::counter_labeled("test.export.tenant_req", &[("tenant", "a")]).add(3);
        crate::counter_labeled("test.export.tenant_req", &[("tenant", "b")]).add(4);
        crate::histogram_labeled("test.export.tenant_lat", &[("tenant", "a")]).record(50);
        crate::histogram_labeled("test.export.tenant_lat", &[("tenant", "b")]).record(60);
        let text = prometheus_text();
        assert!(text.contains("stgraph_test_export_tenant_req{tenant=\"a\"} 3"));
        assert!(text.contains("stgraph_test_export_tenant_req{tenant=\"b\"} 4"));
        assert!(text.contains("stgraph_test_export_tenant_lat_bucket{tenant=\"a\",le=\"+Inf\"}"));
        assert!(text.contains("stgraph_test_export_tenant_lat_count{tenant=\"b\"}"));
        assert_eq!(
            text.matches("# TYPE stgraph_test_export_tenant_req counter")
                .count(),
            1,
            "one TYPE line per metric family"
        );
        assert_eq!(
            text.matches("# TYPE stgraph_test_export_tenant_lat histogram")
                .count(),
            1
        );
    }

    #[test]
    fn prometheus_text_exposes_labeled_gauge_provider() {
        let _g = crate::test_guard();
        crate::metrics::register_labeled_gauge_provider("test.export.shardset", || {
            vec![
                ("test.export.shard_gauge".into(), "shard=\"0\"".into(), 3.0),
                ("test.export.shard_gauge".into(), "shard=\"1\"".into(), 4.5),
            ]
        });
        let text = prometheus_text();
        assert!(text.contains("stgraph_test_export_shard_gauge{shard=\"0\"} 3"));
        assert!(text.contains("stgraph_test_export_shard_gauge{shard=\"1\"} 4.5"));
        assert_eq!(
            text.matches("# TYPE stgraph_test_export_shard_gauge gauge")
                .count(),
            1
        );
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("pma.rebalance-slots"),
            "stgraph_pma_rebalance_slots"
        );
        assert_eq!(prom_name("serve.latency_ns"), "stgraph_serve_latency_ns");
    }
}
