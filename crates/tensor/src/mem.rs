//! Byte-accurate memory accounting.
//!
//! The paper measures GPU device memory per framework. Our substitute is a
//! global tracker: every tensor buffer (and, in the graph crates, every CSR /
//! PMA array) registers its allocation against a named *pool* — e.g.
//! `"stgraph"`, `"pygt"`, `"naive-graph"` — and deregisters on drop. The
//! harness reads live and peak bytes per pool, which is a deterministic
//! version of the allocator-level measurement the authors report.
//!
//! Attribution is scoped: [`PoolGuard`] pushes a pool onto a thread-local
//! stack, and buffers allocated while the guard is alive are charged to that
//! pool. Buffers remember their pool so drops are charged correctly even if
//! they happen outside the scope.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Statistics for one memory pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bytes currently allocated and not yet freed.
    pub live: u64,
    /// High-water mark of `live` since the last [`reset_peak`].
    pub peak: u64,
    /// Total bytes ever allocated (monotone).
    pub total_allocated: u64,
    /// Number of allocations (monotone).
    pub allocations: u64,
}

struct PoolCell {
    live: AtomicU64,
    peak: AtomicU64,
    total: AtomicU64,
    allocs: AtomicU64,
}

impl PoolCell {
    fn new() -> Self {
        PoolCell {
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            total: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }

    fn alloc(&self, bytes: u64) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.total.fetch_add(bytes, Ordering::Relaxed);
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // Monotone max; races only ever under-update transiently and another
        // racer carries the larger value, so the final peak is exact for
        // quiescent reads.
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn free(&self, bytes: u64) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            live: self.live.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed),
            total_allocated: self.total.load(Ordering::Relaxed),
            allocations: self.allocs.load(Ordering::Relaxed),
        }
    }
}

/// Global registry of pools. Pool ids are small dense integers so buffers can
/// store them in 4 bytes.
struct Registry {
    by_name: Mutex<HashMap<String, u32>>,
    // Pools are never removed; indices are stable. Boxed so the Vec can grow
    // without moving the cells observed by concurrent allocators.
    cells: Mutex<Vec<&'static PoolCell>>,
}

static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        by_name: Mutex::new(HashMap::new()),
        cells: Mutex::new(Vec::new()),
    })
}

/// The default pool that untagged allocations land in.
pub const DEFAULT_POOL: &str = "default";

/// Interns `name` and returns its dense pool id.
pub fn pool_id(name: &str) -> u32 {
    let reg = registry();
    let mut by_name = reg.by_name.lock();
    if let Some(&id) = by_name.get(name) {
        return id;
    }
    let mut cells = reg.cells.lock();
    let id = cells.len() as u32;
    cells.push(Box::leak(Box::new(PoolCell::new())));
    by_name.insert(name.to_string(), id);
    id
}

fn cell(id: u32) -> &'static PoolCell {
    registry().cells.lock()[id as usize]
}

thread_local! {
    static POOL_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Returns the pool new allocations on this thread are charged to.
pub fn current_pool() -> u32 {
    POOL_STACK
        .with(|s| s.borrow().last().copied())
        .unwrap_or_else(|| pool_id(DEFAULT_POOL))
}

/// RAII guard scoping allocation attribution to a pool.
pub struct PoolGuard {
    _priv: (),
}

impl PoolGuard {
    /// Pushes `name` as the current pool for this thread.
    pub fn enter(name: &str) -> PoolGuard {
        let id = pool_id(name);
        POOL_STACK.with(|s| s.borrow_mut().push(id));
        PoolGuard { _priv: () }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with all of this thread's allocations charged to `pool`.
pub fn with_pool<R>(pool: &str, f: impl FnOnce() -> R) -> R {
    let _g = PoolGuard::enter(pool);
    f()
}

/// Records an allocation of `bytes` against the thread's current pool and
/// returns the pool id the caller must use to free it.
pub fn track_alloc(bytes: usize) -> u32 {
    let id = current_pool();
    cell(id).alloc(bytes as u64);
    id
}

/// Records an allocation against an explicit pool id.
pub fn track_alloc_in(id: u32, bytes: usize) {
    cell(id).alloc(bytes as u64);
}

/// Records a free of `bytes` previously charged to pool `id`.
pub fn track_free(id: u32, bytes: usize) {
    cell(id).free(bytes as u64);
}

/// Reads the statistics for a pool by name (zero stats if never used).
pub fn stats(name: &str) -> PoolStats {
    cell(pool_id(name)).stats()
}

/// Resets a pool's peak to its current live value (e.g. between sweeps).
pub fn reset_peak(name: &str) {
    let c = cell(pool_id(name));
    c.peak
        .store(c.live.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Lists `(name, stats)` for every pool ever created.
pub fn all_stats() -> Vec<(String, PoolStats)> {
    let reg = registry();
    let by_name = reg.by_name.lock();
    let mut out: Vec<(String, PoolStats)> = by_name
        .iter()
        .map(|(n, &id)| (n.clone(), cell(id).stats()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Reads the workspace buffer pool's counters (hits, misses, recycled and
/// cached bytes) alongside the per-pool byte stats above. See [`crate::pool`]
/// for how cached bytes interact with `live`.
pub fn buffer_pool_stats() -> crate::pool::BufPoolStats {
    crate::pool::stats()
}

/// A raw tracked heap buffer of `f32`s. All tensor storage goes through this
/// type so device-memory accounting is exhaustive.
pub struct TrackedBuf {
    data: Vec<f32>,
    pool: u32,
}

impl TrackedBuf {
    /// Allocates a zero-filled buffer of `len` floats charged to the current
    /// pool, drawing from the workspace buffer pool when a
    /// [`crate::pool::PoolScope`] is active.
    pub fn zeros(len: usize) -> TrackedBuf {
        Self::zeros_in(current_pool(), len)
    }

    /// Like [`TrackedBuf::zeros`] but charged to an explicit pool id. Kernels
    /// capture the id before entering a parallel region so worker-thread
    /// allocations stay attributed to the orchestrating scope's pool.
    pub fn zeros_in(pool: u32, len: usize) -> TrackedBuf {
        let (mut data, recycled) = pooled_floats(pool, len);
        if recycled {
            data.fill(0.0);
        }
        TrackedBuf { data, pool }
    }

    /// Allocates a buffer of `len` floats with *unspecified* (but
    /// initialized — never uninitialized memory) contents. For kernel outputs
    /// that overwrite every element: skips the zero-fill `zeros` pays, and
    /// recycled buffers skip even the first-touch fill.
    pub fn raw(len: usize) -> TrackedBuf {
        Self::raw_in(current_pool(), len)
    }

    /// Like [`TrackedBuf::raw`] but charged to an explicit pool id.
    pub fn raw_in(pool: u32, len: usize) -> TrackedBuf {
        let (data, _recycled) = pooled_floats(pool, len);
        TrackedBuf { data, pool }
    }

    /// Takes ownership of an existing vector, charging its capacity.
    pub fn from_vec(data: Vec<f32>) -> TrackedBuf {
        let pool = track_alloc(data.capacity() * std::mem::size_of::<f32>());
        TrackedBuf { data, pool }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Produces a `len`-element float vector charged to `pool`: recycled from
/// the buffer pool when possible (second tuple element `true`, contents
/// stale), freshly allocated otherwise (zero-filled). Fresh pool-eligible
/// allocations reserve their full size-class capacity so the buffer can park
/// on a free list later; the charge covers the capacity either way.
fn pooled_floats(pool: u32, len: usize) -> (Vec<f32>, bool) {
    if let Some(mut v) = crate::pool::take(pool, len) {
        if v.len() < len {
            v.resize(len, 0.0);
        } else {
            v.truncate(len);
        }
        return (v, true);
    }
    let cap = if crate::pool::enabled() {
        crate::pool::class_capacity(len).unwrap_or(len)
    } else {
        len
    };
    track_alloc_in(pool, cap * std::mem::size_of::<f32>());
    let mut v = Vec::with_capacity(cap);
    v.resize(len, 0.0);
    (v, false)
}

impl Drop for TrackedBuf {
    fn drop(&mut self) {
        let cap_bytes = self.data.capacity() * std::mem::size_of::<f32>();
        let data = std::mem::take(&mut self.data);
        // Park on the buffer pool when possible; the byte charge rides along
        // with the cached buffer and is released by pool::trim().
        if crate::pool::put(self.pool, data).is_err() {
            track_free(self.pool, cap_bytes);
        }
    }
}

/// A tracked buffer of `i64` indices (edge lists, CSR arrays, labels).
pub struct TrackedIndexBuf {
    data: Vec<i64>,
    pool: u32,
}

impl TrackedIndexBuf {
    /// Takes ownership of an index vector, charging its capacity.
    pub fn from_vec(data: Vec<i64>) -> TrackedIndexBuf {
        let pool = track_alloc(data.capacity() * std::mem::size_of::<i64>());
        TrackedIndexBuf { data, pool }
    }

    /// Immutable view of the indices.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Mutable view of the indices.
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Drop for TrackedIndexBuf {
    fn drop(&mut self) {
        track_free(self.pool, self.data.capacity() * std::mem::size_of::<i64>());
    }
}

/// Records an untyped allocation of `bytes` and returns a guard that frees it
/// on drop. Used by graph structures that keep their own `Vec<u32>`/`Vec<usize>`
/// arrays but still want the bytes charged to a pool.
pub struct BytesCharge {
    pool: u32,
    bytes: usize,
}

impl BytesCharge {
    /// Charges `bytes` to the current pool.
    pub fn new(bytes: usize) -> BytesCharge {
        let pool = track_alloc(bytes);
        BytesCharge { pool, bytes }
    }

    /// Adjusts the charge to a new size (e.g. after a PMA resize).
    pub fn resize(&mut self, bytes: usize) {
        track_free(self.pool, self.bytes);
        track_alloc_in(self.pool, bytes);
        self.bytes = bytes;
    }

    /// The number of bytes currently charged.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for BytesCharge {
    fn drop(&mut self) {
        track_free(self.pool, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        with_pool("mem-test-rt", || {
            let before = stats("mem-test-rt");
            let buf = TrackedBuf::zeros(1024);
            let during = stats("mem-test-rt");
            assert_eq!(during.live - before.live, 4096);
            drop(buf);
            let after = stats("mem-test-rt");
            assert_eq!(after.live, before.live);
            assert!(after.peak >= 4096);
        });
    }

    #[test]
    fn nested_pools_attribute_correctly() {
        with_pool("mem-outer", || {
            let outer = TrackedBuf::zeros(10);
            let inner = with_pool("mem-inner", || TrackedBuf::zeros(20));
            assert_eq!(stats("mem-outer").live, 40);
            assert_eq!(stats("mem-inner").live, 80);
            // Drop order does not confuse attribution: buffers remember
            // their pool.
            drop(outer);
            drop(inner);
            assert_eq!(stats("mem-outer").live, 0);
            assert_eq!(stats("mem-inner").live, 0);
        });
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        with_pool("mem-peak", || {
            reset_peak("mem-peak");
            let a = TrackedBuf::zeros(100);
            let b = TrackedBuf::zeros(100);
            drop(a);
            drop(b);
            assert_eq!(stats("mem-peak").peak, 800);
            reset_peak("mem-peak");
            assert_eq!(stats("mem-peak").peak, 0);
        });
    }

    #[test]
    fn bytes_charge_resizes() {
        with_pool("mem-charge", || {
            let mut c = BytesCharge::new(128);
            assert_eq!(stats("mem-charge").live, 128);
            c.resize(256);
            assert_eq!(stats("mem-charge").live, 256);
            drop(c);
            assert_eq!(stats("mem-charge").live, 0);
        });
    }

    #[test]
    fn index_buf_tracks() {
        with_pool("mem-idx", || {
            let v = TrackedIndexBuf::from_vec(vec![1i64, 2, 3, 4]);
            assert!(stats("mem-idx").live >= 32);
            assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        });
    }
}
