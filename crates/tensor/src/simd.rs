//! Portable 8-lane `f32` SIMD for the dense kernels.
//!
//! [`F32x8`] is an array-of-8 newtype whose lane ops are written as plain
//! per-lane IEEE arithmetic in `#[inline(always)]` methods: the compiler
//! autovectorizes them to whatever the target offers (SSE pairs, one AVX
//! register, NEON pairs) without any `unsafe` or target-feature detection.
//! Because each lane performs *exactly* the scalar op — [`F32x8::mul_add`]
//! is deliberately `a * b + c`, never a fused hardware FMA — a kernel that
//! applies the same op per element produces bitwise-identical results on
//! the SIMD and scalar paths. Only kernels that change the *association* of
//! a reduction (the multi-accumulator matmul) can differ, and those are
//! epsilon-gated in tests rather than bitwise-compared.
//!
//! Runtime dispatch: every SIMD-ized kernel consults [`enabled`] once per
//! call and falls back to its scalar loop when `STGRAPH_NO_SIMD` is set.
//! The flag exists so CI can prove both paths green and so a miscompile on
//! an exotic target can be worked around without rebuilding.

/// Lane count of [`F32x8`]. Kernels peel `len / LANES * LANES` elements
/// through lane ops and finish the remainder with the scalar loop.
pub const LANES: usize = 8;

/// Whether the SIMD lane paths are active. `true` unless the
/// `STGRAPH_NO_SIMD` environment variable is set to anything other than
/// `0` (read once at first use, like `STGRAPH_PAR_MIN`).
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("STGRAPH_NO_SIMD") {
        Ok(v) => v == "0" || v.is_empty(),
        Err(_) => true,
    })
}

/// Whether the AVX2+FMA specializations of the *reduction* kernels (the
/// matmul row microkernel) may run. The portable lanes already saturate
/// memory-bound elementwise ops, but a baseline x86-64 build lowers them
/// to SSE mul+add pairs — for the FLOP-bound GEMM that leaves the wider
/// registers and the FMA units idle, so the row kernel escapes to a
/// hand-written AVX2 variant when the CPU has it. Only reassociation-
/// tolerant (epsilon-gated) kernels may consult this: FMA contraction
/// changes rounding, which the elementwise bitwise contract forbids.
/// `false` whenever [`enabled`] is false, so `STGRAPH_NO_SIMD` still
/// forces the one true scalar path. Detection is cached, keeping every
/// dispatch decision process-stable (fused and unfused kernels always
/// agree bit-for-bit).
pub fn avx2_fma() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            enabled()
                && std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Eight `f32` lanes with element-wise arithmetic.
///
/// 32-byte aligned so an AVX load/store of the whole value is natural; the
/// slice constructors still go through safe unaligned copies, which the
/// compiler lowers to unaligned vector moves.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct F32x8(pub [f32; LANES]);

// Inherent `add`/`sub`/`mul`/`div` are deliberate: the lane API stays one
// uniform family with `max`/`min`/`mul_add`, which have no operator form.
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> F32x8 {
        let mut out = [0.0f32; LANES];
        out.copy_from_slice(&s[..LANES]);
        F32x8(out)
    }

    /// Stores the lanes into the first [`LANES`] elements of `d`.
    #[inline(always)]
    pub fn store(self, d: &mut [f32]) {
        d[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise sum.
    #[inline(always)]
    pub fn add(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x += y;
        }
        F32x8(r)
    }

    /// Lane-wise difference.
    #[inline(always)]
    pub fn sub(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x -= y;
        }
        F32x8(r)
    }

    /// Lane-wise product.
    #[inline(always)]
    pub fn mul(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x *= y;
        }
        F32x8(r)
    }

    /// Lane-wise quotient.
    #[inline(always)]
    pub fn div(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x /= y;
        }
        F32x8(r)
    }

    /// Lane-wise `self * b + c` as *separate* multiply and add (two
    /// roundings), so results stay bitwise-equal to the scalar loops.
    #[inline(always)]
    pub fn mul_add(self, b: F32x8, c: F32x8) -> F32x8 {
        let mut r = c.0;
        for ((x, a), m) in r.iter_mut().zip(&self.0).zip(&b.0) {
            *x += a * m;
        }
        F32x8(r)
    }

    /// Lane-wise maximum (`f32::max` semantics, NaN-ignoring).
    #[inline(always)]
    pub fn max(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x = x.max(*y);
        }
        F32x8(r)
    }

    /// Lane-wise minimum (`f32::min` semantics, NaN-ignoring).
    #[inline(always)]
    pub fn min(self, o: F32x8) -> F32x8 {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x = x.min(*y);
        }
        F32x8(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_match_scalar_bitwise() {
        let a = F32x8([1.5, -2.25, 3.0, 0.1, -0.7, 1e-8, 1e8, -0.0]);
        let b = F32x8([0.3, 4.0, -1.5, 2.2, 0.9, 3e7, 1e-8, 7.0]);
        for i in 0..LANES {
            assert_eq!(a.add(b).0[i].to_bits(), (a.0[i] + b.0[i]).to_bits());
            assert_eq!(a.sub(b).0[i].to_bits(), (a.0[i] - b.0[i]).to_bits());
            assert_eq!(a.mul(b).0[i].to_bits(), (a.0[i] * b.0[i]).to_bits());
            assert_eq!(a.div(b).0[i].to_bits(), (a.0[i] / b.0[i]).to_bits());
            assert_eq!(a.max(b).0[i].to_bits(), a.0[i].max(b.0[i]).to_bits());
            assert_eq!(a.min(b).0[i].to_bits(), a.0[i].min(b.0[i]).to_bits());
        }
    }

    #[test]
    fn mul_add_uses_two_roundings() {
        let a = F32x8::splat(1.000_000_1);
        let b = F32x8::splat(1.000_000_1);
        let c = F32x8::splat(-1.0);
        // Separate mul-then-add, not fused: must equal the two-rounding
        // scalar expression exactly.
        let want = (1.000_000_1f32 * 1.000_000_1f32) + -1.0f32;
        assert_eq!(a.mul_add(b, c).0[0].to_bits(), want.to_bits());
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let v = F32x8::load(&src);
        let mut dst = [0.0f32; 9];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0.0);
    }

    #[test]
    fn splat_fills_lanes() {
        assert_eq!(F32x8::splat(2.5).0, [2.5; LANES]);
    }
}
