//! First-order optimizers over a [`ParamSet`]: SGD (with optional momentum)
//! and Adam — the paper's TGCN experiments train with PyTorch's Adam
//! defaults, which we replicate here.

use crate::nn::{ParamSet, StateEntry};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Clips the global L2 norm of all gradients in `params` to `max_norm`
/// (PyTorch's `clip_grad_norm_`), returning the pre-clip norm. Essential
/// for stable BPTT through long sequences.
pub fn clip_grad_norm(params: &ParamSet, max_norm: f32) -> f32 {
    let total_sq: f32 = params
        .iter()
        .map(|p| p.grad().data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter() {
            p.set_grad(p.grad().mul_scalar(scale));
        }
    }
    norm
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    params: ParamSet,
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: ParamSet, lr: f32) -> Sgd {
        Sgd::with_momentum(params, lr, 0.0)
    }

    /// SGD with momentum `mu` (0 disables).
    pub fn with_momentum(params: ParamSet, lr: f32, momentum: f32) -> Sgd {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape()))
            .collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }

    /// Applies one update from the accumulated gradients.
    pub fn step(&mut self) {
        for (i, p) in self.params.iter().enumerate() {
            let g = p.grad();
            let update = if self.momentum != 0.0 {
                let v = self.velocity[i].mul_scalar(self.momentum).add(&g);
                self.velocity[i] = v.clone();
                v
            } else {
                g
            };
            p.set_value(p.value().sub(&update.mul_scalar(self.lr)));
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&self) {
        self.params.zero_grad();
    }
}

/// Adam (Kingma & Ba) with PyTorch's default hyperparameters.
pub struct Adam {
    params: ParamSet,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: ParamSet, lr: f32) -> Adam {
        Adam::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(params: ParamSet, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Adam {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape()))
            .collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let g = p.grad();
            self.m[i] = self.m[i]
                .mul_scalar(self.beta1)
                .add(&g.mul_scalar(1.0 - self.beta1));
            self.v[i] = self.v[i]
                .mul_scalar(self.beta2)
                .add(&g.square().mul_scalar(1.0 - self.beta2));
            let mhat = self.m[i].mul_scalar(1.0 / bc1);
            let vhat = self.v[i].mul_scalar(1.0 / bc2);
            let denom = vhat.sqrt().add_scalar(self.eps);
            p.set_value(p.value().sub(&mhat.div(&denom).mul_scalar(self.lr)));
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&self) {
        self.params.zero_grad();
    }

    /// Snapshots the optimizer state (first/second moments and step count)
    /// as checkpoint entries under the `adam.` prefix, so a resumed
    /// training run continues the *exact* loss trajectory — without the
    /// moments, the first post-resume step re-warms bias correction and
    /// the trajectory diverges.
    pub fn state_entries(&self) -> Vec<StateEntry> {
        let mut out = Vec::with_capacity(2 * self.params.len() + 1);
        out.push((
            "adam.t".to_string(),
            Shape::Scalar,
            vec![f32::from_bits(self.t)],
        ));
        for (i, p) in self.params.iter().enumerate() {
            let name = p.name();
            out.push((
                format!("adam.m.{name}"),
                self.m[i].shape(),
                self.m[i].to_vec(),
            ));
            out.push((
                format!("adam.v.{name}"),
                self.v[i].shape(),
                self.v[i].to_vec(),
            ));
        }
        out
    }

    /// Restores optimizer state written by [`Adam::state_entries`].
    /// Matching is by parameter name; entries for unknown parameters are
    /// ignored (the dict usually also carries the model weights). Missing
    /// moment entries or shape mismatches are typed errors and leave the
    /// optimizer untouched.
    pub fn load_state_entries(
        &mut self,
        dict: &[StateEntry],
    ) -> Result<(), crate::nn::StateDictError> {
        use crate::nn::StateDictError;
        let find = |key: &str| dict.iter().find(|(n, _, _)| n == key);
        let Some((_, _, t_data)) = find("adam.t") else {
            return Err(StateDictError::MissingParam("adam.t".into()));
        };
        let mut m = Vec::with_capacity(self.params.len());
        let mut v = Vec::with_capacity(self.params.len());
        for p in self.params.iter() {
            let name = p.name();
            for (which, store) in [("m", &mut m), ("v", &mut v)] {
                let key = format!("adam.{which}.{name}");
                let Some((_, shape, data)) = find(&key) else {
                    return Err(StateDictError::MissingParam(key));
                };
                let expected = p.value().shape();
                if *shape != expected {
                    return Err(StateDictError::ShapeMismatch {
                        name: key,
                        expected,
                        found: *shape,
                    });
                }
                store.push(Tensor::from_vec(*shape, data.clone()));
            }
        }
        self.t = t_data[0].to_bits();
        self.m = m;
        self.v = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;
    use crate::nn::ParamSet;

    /// Minimise f(w) = (w - 3)^2 elementwise; both optimizers must converge.
    fn run<F: FnMut()>(param_value: &Tensor, mut step: F, read: impl Fn() -> Tensor) -> f32 {
        let _ = param_value;
        for _ in 0..200 {
            step();
        }
        read()
            .data()
            .iter()
            .map(|&w| (w - 3.0).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::zeros(2));
        let b = ps.register("b", Tensor::zeros(1));
        // Set grads via a tape: loss = 3*a0 + 4*b0 => grads [3,0] and [4].
        let tape = Tape::new();
        let av = tape.param(&a);
        let bv = tape.param(&b);
        let mask = tape.constant(Tensor::from_vec(2, vec![3.0, 0.0]));
        let loss = av.mul(&mask).sum().add(&bv.mul_scalar(4.0).sum());
        tape.backward(&loss);
        let norm = clip_grad_norm(&ps, 2.5);
        assert!((norm - 5.0).abs() < 1e-5, "pre-clip norm {norm}");
        // Post-clip norm == 2.5: grads scaled by 0.5.
        assert!((a.grad().to_vec()[0] - 1.5).abs() < 1e-5);
        assert!((b.grad().to_vec()[0] - 2.0).abs() < 1e-5);
        // Under the limit: untouched.
        let norm2 = clip_grad_norm(&ps, 100.0);
        assert!((norm2 - 2.5).abs() < 1e-5);
        assert!((a.grad().to_vec()[0] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(3, vec![0.0, 10.0, -4.0]));
        let mut opt = Sgd::new(ps, 0.1);
        let err = run(
            &w.value(),
            || {
                opt.zero_grad();
                let tape = Tape::new();
                let wv = tape.param(&w);
                let loss = wv.add_scalar(-3.0).square().sum();
                tape.backward(&loss);
                opt.step();
            },
            || w.value(),
        );
        assert!(err < 1e-3, "sgd residual {err}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(2, vec![8.0, -8.0]));
        let mut opt = Sgd::with_momentum(ps, 0.05, 0.9);
        let err = run(
            &w.value(),
            || {
                opt.zero_grad();
                let tape = Tape::new();
                let wv = tape.param(&w);
                let loss = wv.add_scalar(-3.0).square().sum();
                tape.backward(&loss);
                opt.step();
            },
            || w.value(),
        );
        assert!(err < 1e-2, "momentum residual {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(3, vec![0.0, 10.0, -4.0]));
        let mut opt = Adam::new(ps, 0.3);
        let err = run(
            &w.value(),
            || {
                opt.zero_grad();
                let tape = Tape::new();
                let wv = tape.param(&w);
                let loss = wv.add_scalar(-3.0).square().sum();
                tape.backward(&loss);
                opt.step();
            },
            || w.value(),
        );
        assert!(err < 1e-2, "adam residual {err}");
    }

    #[test]
    fn adam_state_roundtrip_resumes_trajectory_bitwise() {
        let make = || {
            let mut ps = ParamSet::new();
            let w = ps.register("w", Tensor::from_vec(3, vec![0.0, 10.0, -4.0]));
            (Adam::new(ps, 0.05), w)
        };
        let step = |opt: &mut Adam, w: &crate::autograd::Param| {
            opt.zero_grad();
            let tape = Tape::new();
            let wv = tape.param(w);
            let loss = wv.add_scalar(-3.0).square().sum();
            tape.backward(&loss);
            opt.step();
        };
        // Reference: 10 uninterrupted steps.
        let (mut opt_a, w_a) = make();
        for _ in 0..10 {
            step(&mut opt_a, &w_a);
        }
        // Interrupted: 6 steps, snapshot, rebuild, restore, 4 more.
        let (mut opt_b, w_b) = make();
        for _ in 0..6 {
            step(&mut opt_b, &w_b);
        }
        let mut dict = opt_b.state_entries();
        dict.push(("w".into(), w_b.value().shape(), w_b.value().to_vec()));
        let (mut opt_c, w_c) = make();
        w_c.set_value(Tensor::from_vec(3, dict.last().unwrap().2.clone()));
        opt_c.load_state_entries(&dict).unwrap();
        for _ in 0..4 {
            step(&mut opt_c, &w_c);
        }
        let (a, c) = (w_a.value(), w_c.value());
        let bits_a: Vec<u32> = a.data().iter().map(|x| x.to_bits()).collect();
        let bits_c: Vec<u32> = c.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits_a, bits_c, "resumed trajectory must be bitwise exact");
    }

    #[test]
    fn adam_state_load_errors_are_typed() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::zeros(2));
        let mut opt = Adam::new(ps, 0.1);
        assert!(matches!(
            opt.load_state_entries(&[]),
            Err(crate::nn::StateDictError::MissingParam(_))
        ));
        let bad = vec![
            ("adam.t".to_string(), Shape::Scalar, vec![0.0]),
            ("adam.m.w".to_string(), Shape::Vec(3), vec![0.0; 3]),
            ("adam.v.w".to_string(), Shape::Vec(3), vec![0.0; 3]),
        ];
        assert!(matches!(
            opt.load_state_entries(&bad),
            Err(crate::nn::StateDictError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step is ~lr * sign(g).
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(1, vec![5.0]));
        let mut opt = Adam::new(ps, 0.1);
        let tape = Tape::new();
        let wv = tape.param(&w);
        let loss = wv.sum();
        tape.backward(&loss);
        opt.step();
        assert!((w.value().item() - 4.9).abs() < 1e-4);
    }
}
