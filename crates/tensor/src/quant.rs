//! Opt-in int8 quantized inference for dense matmuls.
//!
//! Symmetric per-row / per-column absmax quantization: each activation row
//! and each weight column is mapped to i8 with its own scale
//! `absmax / 127`, products accumulate in i32, and results dequantize with
//! the product of the two scales. There is no calibration state — weights
//! are quantized per call (`O(k·m)`, negligible next to the `O(n·k·m)`
//! matmul) — so the path is a pure runtime switch with no model changes.
//!
//! The switch is a **thread-local** flag ([`set_quantized_inference`] /
//! [`QuantGuard`]) read by [`Tensor::matmul`] at entry on the calling
//! thread. Thread-local rather than global so a serving engine can run
//! quantized while tests or a verification pass on other threads still get
//! exact f32 matmuls. It is inference-only by construction: gradients never
//! flow through serve's forward pass, and training code never sets the
//! flag.

use crate::tensor::par_min;
use crate::{Shape, Tensor};
use rayon::prelude::*;
use std::cell::Cell;

thread_local! {
    static QUANTIZED_INFERENCE: Cell<bool> = const { Cell::new(false) };
}

/// True when quantized inference is enabled on the calling thread.
pub fn quantized_inference() -> bool {
    QUANTIZED_INFERENCE.with(|c| c.get())
}

/// Sets the calling thread's quantized-inference flag, returning the
/// previous value. Prefer [`QuantGuard`] for scoped use.
pub fn set_quantized_inference(on: bool) -> bool {
    QUANTIZED_INFERENCE.with(|c| c.replace(on))
}

/// RAII scope for quantized inference: enables the flag on construction and
/// restores the previous value on drop (panic-safe).
pub struct QuantGuard {
    prev: bool,
}

impl QuantGuard {
    /// Enables quantized inference on the calling thread until drop.
    pub fn enable() -> Self {
        QuantGuard {
            prev: set_quantized_inference(true),
        }
    }
}

impl Drop for QuantGuard {
    fn drop(&mut self) {
        set_quantized_inference(self.prev);
    }
}

/// Quantizes one f32 row to i8 with a symmetric absmax scale. Returns the
/// scale (1.0 for an all-zero row, so dequantization stays exact).
fn quantize_row(dst: &mut [i8], src: &[f32]) -> f32 {
    let absmax = src.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    let s = if absmax == 0.0 { 1.0 } else { absmax / 127.0 };
    let inv = 1.0 / s;
    for (q, &x) in dst.iter_mut().zip(src) {
        *q = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    s
}

/// A weight matrix quantized to i8 with per-column scales, stored
/// transposed (`[m, k]` row-major) so the i8 dot products stream
/// contiguously.
pub struct QuantizedMat {
    qt: Vec<i8>,
    scales: Vec<f32>,
    k: usize,
    m: usize,
}

impl QuantizedMat {
    /// Quantizes `w` (`[k, m]`) column-wise with per-column absmax scales.
    pub fn quantize(w: &Tensor) -> Self {
        let (k, m) = (w.rows(), w.cols());
        let wt = w.transpose();
        let wd = wt.data();
        let mut qt = vec![0i8; m * k];
        let mut scales = vec![0.0f32; m];
        for (j, s) in scales.iter_mut().enumerate() {
            *s = quantize_row(&mut qt[j * k..(j + 1) * k], &wd[j * k..(j + 1) * k]);
        }
        QuantizedMat { qt, scales, k, m }
    }

    /// Output columns.
    pub fn cols(&self) -> usize {
        self.m
    }

    /// Inner (reduction) dimension.
    pub fn inner(&self) -> usize {
        self.k
    }
}

/// `x @ w` computed through the int8 path: `x` rows and `w` columns are
/// absmax-quantized, dots accumulate in i32, and each output dequantizes
/// with the product of its row and column scales. Row-parallel like the f32
/// matmul; fully deterministic (integer accumulation has no rounding at
/// all for `k ≤ ~130k`).
pub fn quantized_matmul(x: &Tensor, w: &Tensor) -> Tensor {
    let (n, k) = (x.rows(), x.cols());
    assert_eq!(
        w.rows(),
        k,
        "quantized matmul {}x{} @ {}x{}",
        n,
        k,
        w.rows(),
        w.cols()
    );
    let qw = QuantizedMat::quantize(w);
    let m = qw.m;
    let xd = x.data();
    let mut out = vec![0.0f32; n * m];
    let row_body = |(i, orow): (usize, &mut [f32])| {
        let mut qx = vec![0i8; k];
        let sx = quantize_row(&mut qx, &xd[i * k..(i + 1) * k]);
        for (j, o) in orow.iter_mut().enumerate() {
            let wrow = &qw.qt[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&a, &b) in qx.iter().zip(wrow) {
                acc += a as i32 * b as i32;
            }
            *o = acc as f32 * sx * qw.scales[j];
        }
    };
    if n * k * m >= par_min() {
        out.par_chunks_mut(m).enumerate().for_each(row_body);
    } else {
        out.chunks_mut(m).enumerate().for_each(row_body);
    }
    Tensor::from_vec(Shape::Mat(n, m), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Largest absolute error normalised by the largest exact magnitude —
    /// the scale-free accuracy metric serve's `--verify` gate also uses.
    /// (A pointwise relative error would explode at the output's zero
    /// crossings, where symmetric quantization noise dominates any f32
    /// value.)
    fn max_rel_err(q: &Tensor, f: &Tensor) -> f32 {
        let scale = f.data().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        q.data()
            .iter()
            .zip(f.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
            / scale.max(f32::MIN_POSITIVE)
    }

    #[test]
    fn quantized_matmul_tracks_f32_within_a_percent() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let x = Tensor::rand_uniform((17, 64), -2.0, 2.0, &mut rng);
        let w = Tensor::rand_uniform((64, 23), -1.0, 1.0, &mut rng);
        let exact = x.matmul(&w);
        let quant = quantized_matmul(&x, &w);
        let err = max_rel_err(&quant, &exact);
        assert!(err < 0.05, "max rel err {err}");
    }

    #[test]
    fn zero_inputs_stay_exactly_zero() {
        let x = Tensor::zeros((3, 8));
        let w = Tensor::zeros((8, 4));
        assert_eq!(quantized_matmul(&x, &w).to_vec(), vec![0.0; 12]);
    }

    #[test]
    fn flag_routes_matmul_and_guard_restores() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = Tensor::rand_uniform((5, 16), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((16, 3), -1.0, 1.0, &mut rng);
        assert!(!quantized_inference());
        let quantized = {
            let _g = QuantGuard::enable();
            assert!(quantized_inference());
            x.matmul(&w)
        };
        assert!(!quantized_inference(), "guard must restore the flag");
        assert_eq!(quantized.to_vec(), quantized_matmul(&x, &w).to_vec());
        assert_ne!(quantized.to_vec(), x.matmul(&w).to_vec());
    }
}
