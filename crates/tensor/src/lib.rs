//! # stgraph-tensor
//!
//! The deep-learning backend substrate for the STGraph reproduction: dense
//! `f32` tensors with rayon-parallel kernels, a reverse-mode autodiff tape
//! with custom-op extension points, dense NN layers, optimizers, and a
//! byte-accurate memory tracker standing in for GPU device-memory
//! measurement.
//!
//! In the paper, this role is played by PyTorch; STGraph is deliberately
//! *backend agnostic* and touches the backend only through a narrow
//! interface. The same is true here: the framework crates consume this crate
//! only through [`Tensor`], [`autograd::Tape`]/[`autograd::Var`] and
//! [`mem`] — see `stgraph::backend` for the interface itself.

#![warn(missing_docs)]

pub mod autograd;
pub mod mem;
pub mod nn;
pub mod optim;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use autograd::{Param, Tape, Var};
pub use nn::{StateDict, StateDictError, StateEntry};
pub use pool::PoolScope;
pub use shape::Shape;
pub use tensor::{par_min, Tensor};
