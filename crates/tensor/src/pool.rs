//! Size-class workspace buffer pool backing [`crate::mem::TrackedBuf`].
//!
//! Training loops allocate and drop the same tensor shapes every timestamp:
//! activations, gradients, and kernel scratch churn through the allocator at
//! a rate that dominates the hot path once the kernels themselves are cache
//! tuned. This module recycles those buffers through power-of-two size
//! classes: a dropped buffer parks on a free list instead of returning to the
//! allocator, and the next allocation of the same class pops it back off.
//!
//! Design points:
//!
//! - **Scoped.** Pooling is off unless a [`PoolScope`] is alive on the
//!   *current thread* (the executor opens one per epoch / timestamp batch).
//!   The scope depth is thread-local so a scope opened by one test or by the
//!   training orchestrator never changes allocation semantics observed by
//!   unrelated threads; rayon workers fall back to plain allocation, which is
//!   free of correctness consequences because recycling is transparent.
//! - **Attribution-preserving.** Free lists are segregated by [`crate::mem`]
//!   pool id. A cached buffer keeps the byte charge it acquired at
//!   allocation, in the pool it was charged to, until [`trim`] releases it.
//!   Recycling therefore never moves bytes between named memory pools.
//! - **Conservative accounting.** Cached bytes still count as *live* in the
//!   memory tracker — the process really does hold them. Memory-measurement
//!   binaries (`fig6`, `fig8`) call [`force_disable`] so their reported live
//!   and peak bytes reflect true working-set sizes, and `STGRAPH_NO_POOL=1`
//!   does the same from the environment for any binary.
//!
//! When the outermost scope on a thread exits, the pool is trimmed: every
//! cached buffer is freed and its bytes are finally deducted from the memory
//! tracker, so quiescent live-byte assertions hold exactly as they did before
//! pooling existed.

use parking_lot::Mutex;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Smallest size class, in `f32` elements (256 B). Requests below this are
/// rounded up; the waste is bounded and tiny buffers are cheap anyway.
pub const MIN_CLASS_FLOATS: usize = 64;

/// Largest size class, in `f32` elements (64 MiB). Larger requests bypass the
/// pool entirely — they are rare and caching them would pin too much memory.
pub const MAX_CLASS_FLOATS: usize = 1 << 24;

const MIN_CLASS_SHIFT: u32 = MIN_CLASS_FLOATS.trailing_zeros();
const N_CLASSES: usize = (MAX_CLASS_FLOATS.trailing_zeros() - MIN_CLASS_SHIFT) as usize + 1;

/// Cap on cached buffers per (memory pool, size class); returns beyond this
/// are freed normally so a burst can't pin unbounded memory.
const MAX_CACHED_PER_CLASS: usize = 64;

/// Returns the size-class index serving a request of `len` floats, or `None`
/// if the request is pool-ineligible (zero-length or beyond
/// [`MAX_CLASS_FLOATS`]).
fn class_for(len: usize) -> Option<usize> {
    if len == 0 || len > MAX_CLASS_FLOATS {
        return None;
    }
    let cap = len.next_power_of_two().max(MIN_CLASS_FLOATS);
    Some((cap.trailing_zeros() - MIN_CLASS_SHIFT) as usize)
}

/// Rounds `len` up to the capacity of its size class, or `None` if the
/// request bypasses the pool. Pool-eligible allocations reserve exactly this
/// capacity so the buffer slots back into its class on drop.
pub fn class_capacity(len: usize) -> Option<usize> {
    class_for(len).map(|c| MIN_CLASS_FLOATS << c)
}

// Free lists: outer index = mem pool id, then size class, then a stack of
// cached buffers of that class.
type ClassStacks = Vec<Vec<Vec<f32>>>;
type ClassLists = Vec<ClassStacks>;

static LISTS: OnceLock<Mutex<ClassLists>> = OnceLock::new();

fn lists() -> &'static Mutex<ClassLists> {
    LISTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SCOPE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

static FORCE_DISABLED: AtomicBool = AtomicBool::new(false);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);
static CACHED_BYTES: AtomicU64 = AtomicU64::new(0);
static TRIMMED_BYTES: AtomicU64 = AtomicU64::new(0);

fn env_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("STGRAPH_NO_POOL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when allocations on the current thread may be served from and
/// returned to the pool: a [`PoolScope`] is alive on this thread, and neither
/// `STGRAPH_NO_POOL` nor [`force_disable`] has switched pooling off.
pub fn enabled() -> bool {
    SCOPE_DEPTH.with(|d| d.get()) > 0 && !FORCE_DISABLED.load(Ordering::Relaxed) && !env_disabled()
}

/// Disables (`true`) or re-enables (`false`) pooling process-wide regardless
/// of scope state. Memory-measurement binaries call this at startup so
/// reported bytes are true working-set sizes; A/B benchmarks flip it between
/// runs. Disabling trims the pool so no cached bytes linger.
pub fn force_disable(disable: bool) {
    FORCE_DISABLED.store(disable, Ordering::Relaxed);
    if disable {
        trim();
    }
}

/// RAII guard enabling pooled allocation on the current thread for its
/// lifetime. Scopes nest; when the outermost scope on a thread exits the pool
/// is [`trim`]med so cached bytes are released and live-byte accounting
/// returns to exact.
pub struct PoolScope {
    // Depth is thread-local: the guard must drop on the thread that made it.
    _not_send: PhantomData<*const ()>,
}

impl PoolScope {
    /// Opens a scope on the current thread.
    pub fn new() -> PoolScope {
        // First scope of the process hooks the pool and memory trackers up
        // to the telemetry registry as pull-style gauges.
        static TELEMETRY: std::sync::Once = std::sync::Once::new();
        TELEMETRY.call_once(install_telemetry_gauges);
        SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
        PoolScope {
            _not_send: PhantomData,
        }
    }
}

/// Exposes pool counters and every memory-tracker pool to `stgraph-telemetry`
/// (evaluated lazily at export time; zero steady-state cost).
fn install_telemetry_gauges() {
    stgraph_telemetry::register_gauge("pool.hits", || stats().hits as f64);
    stgraph_telemetry::register_gauge("pool.misses", || stats().misses as f64);
    stgraph_telemetry::register_gauge("pool.cached_bytes", || stats().cached_bytes as f64);
    stgraph_telemetry::register_gauge("pool.recycled_bytes", || stats().recycled_bytes as f64);
    stgraph_telemetry::register_gauge_provider("mem.pools", || {
        crate::mem::all_stats()
            .into_iter()
            .flat_map(|(name, s)| {
                [
                    (format!("mem.{name}.live_bytes"), s.live as f64),
                    (format!("mem.{name}.peak_bytes"), s.peak as f64),
                    (format!("mem.{name}.allocations"), s.allocations as f64),
                ]
            })
            .collect()
    });
}

impl Default for PoolScope {
    fn default() -> Self {
        PoolScope::new()
    }
}

impl Drop for PoolScope {
    fn drop(&mut self) {
        let depth = SCOPE_DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        if depth == 0 {
            trim();
        }
    }
}

/// Pops a cached buffer able to hold `len` floats from `pool`'s free lists.
/// Returns `None` when pooling is disabled, the request is ineligible, or the
/// class is empty (a miss). The returned vector has its class capacity and
/// arbitrary (but initialized) contents; the caller sizes and fills it.
pub(crate) fn take(pool: u32, len: usize) -> Option<Vec<f32>> {
    if !enabled() {
        return None;
    }
    // The `pool.alloc` fault point degrades gracefully by design: an
    // injected failure is reported as a cache bypass (the caller falls
    // back to a fresh allocation), never an allocation error.
    if stgraph_faultline::fault_point!("pool.alloc").is_err() {
        return None;
    }
    let class = class_for(len)?;
    let cached = {
        let mut lists = lists().lock();
        lists
            .get_mut(pool as usize)
            .and_then(|classes| classes.get_mut(class))
            .and_then(|stack| stack.pop())
    };
    match cached {
        Some(v) => {
            let bytes = (v.capacity() * std::mem::size_of::<f32>()) as u64;
            HITS.fetch_add(1, Ordering::Relaxed);
            RECYCLED_BYTES.fetch_add(bytes, Ordering::Relaxed);
            CACHED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
            Some(v)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Offers a dropped buffer back to `pool`'s free lists. Returns the buffer
/// unconsumed when pooling is disabled, the capacity is not exactly a size
/// class, or the class stack is full — the caller then frees it normally
/// (deducting its charge from the memory tracker).
pub(crate) fn put(pool: u32, v: Vec<f32>) -> Result<(), Vec<f32>> {
    if !enabled() {
        return Err(v);
    }
    let cap = v.capacity();
    if !cap.is_power_of_two() || !(MIN_CLASS_FLOATS..=MAX_CLASS_FLOATS).contains(&cap) {
        return Err(v);
    }
    let class = (cap.trailing_zeros() - MIN_CLASS_SHIFT) as usize;
    {
        let mut lists = lists().lock();
        let idx = pool as usize;
        if lists.len() <= idx {
            lists.resize_with(idx + 1, || vec![Vec::new(); N_CLASSES]);
        }
        let stack = &mut lists[idx][class];
        if stack.len() >= MAX_CACHED_PER_CLASS {
            return Err(v);
        }
        stack.push(v);
    }
    RETURNS.fetch_add(1, Ordering::Relaxed);
    CACHED_BYTES.fetch_add((cap * std::mem::size_of::<f32>()) as u64, Ordering::Relaxed);
    Ok(())
}

/// Frees every cached buffer, deducting each one's bytes from the memory
/// pool it was charged to. Runs automatically when the outermost
/// [`PoolScope`] on a thread exits and on [`force_disable`]. Safe to call at
/// any time: a concurrent scope simply re-fills its classes on demand.
pub fn trim() {
    let drained: Vec<(u32, ClassStacks)> = {
        let mut lists = lists().lock();
        lists
            .iter_mut()
            .enumerate()
            .map(|(pool, classes)| {
                (
                    pool as u32,
                    classes.iter_mut().map(std::mem::take).collect(),
                )
            })
            .collect()
    };
    for (pool, classes) in drained {
        for stack in classes {
            for v in stack {
                let bytes = v.capacity() * std::mem::size_of::<f32>();
                CACHED_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
                TRIMMED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
                crate::mem::track_free(pool, bytes);
            }
        }
    }
}

/// Counters describing pool behaviour since startup (or [`reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Allocations served from a free list (no allocator call, no new charge).
    pub hits: u64,
    /// Pool-eligible allocations that fell through to the allocator.
    pub misses: u64,
    /// Dropped buffers parked on a free list instead of being freed.
    pub returns: u64,
    /// Total bytes served from free lists (monotone).
    pub recycled_bytes: u64,
    /// Bytes currently parked on free lists (still live in the tracker).
    pub cached_bytes: u64,
    /// Total bytes released by [`trim`] (monotone).
    pub trimmed_bytes: u64,
}

/// Reads the pool counters.
pub fn stats() -> BufPoolStats {
    BufPoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
        cached_bytes: CACHED_BYTES.load(Ordering::Relaxed),
        trimmed_bytes: TRIMMED_BYTES.load(Ordering::Relaxed),
    }
}

/// Zeroes the monotone counters (`cached_bytes` is live state and is kept).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RETURNS.store(0, Ordering::Relaxed);
    RECYCLED_BYTES.store(0, Ordering::Relaxed);
    TRIMMED_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{self, TrackedBuf};

    #[test]
    fn size_classes_round_up() {
        assert_eq!(class_capacity(0), None);
        assert_eq!(class_capacity(1), Some(64));
        assert_eq!(class_capacity(64), Some(64));
        assert_eq!(class_capacity(65), Some(128));
        assert_eq!(class_capacity(1000), Some(1024));
        assert_eq!(class_capacity(MAX_CLASS_FLOATS), Some(MAX_CLASS_FLOATS));
        assert_eq!(class_capacity(MAX_CLASS_FLOATS + 1), None);
    }

    #[test]
    fn pooling_is_scoped_to_thread() {
        assert!(!enabled());
        let scope = PoolScope::new();
        assert!(enabled());
        let handle = std::thread::spawn(enabled);
        assert!(
            !handle.join().unwrap(),
            "scope must not leak to other threads"
        );
        drop(scope);
        assert!(!enabled());
    }

    // The full alloc/drop/reuse cycle with stats balance and trim accounting.
    // One test (not several) because the counters are global: a single
    // sequential body keeps the deltas attributable.
    #[test]
    fn lifecycle_balances_and_trims() {
        mem::with_pool("buf-pool-test", || {
            let before = stats();
            let live0 = mem::stats("buf-pool-test").live;
            {
                let _scope = PoolScope::new();
                let a = TrackedBuf::zeros(300); // class 512 floats = 2048 B
                assert_eq!(mem::stats("buf-pool-test").live - live0, 2048);
                drop(a); // parked, still live
                assert_eq!(mem::stats("buf-pool-test").live - live0, 2048);
                let b = TrackedBuf::zeros(400); // same class: served from cache
                assert!(b.as_slice().iter().all(|&x| x == 0.0));
                assert_eq!(
                    mem::stats("buf-pool-test").live - live0,
                    2048,
                    "recycled alloc must not add a new charge"
                );
                drop(b);
                let after = stats();
                assert_eq!(after.hits - before.hits, 1);
                assert_eq!(after.misses - before.misses, 1);
                assert_eq!(after.returns - before.returns, 2);
                assert_eq!(after.recycled_bytes - before.recycled_bytes, 2048);
                // Returns and takes balance: every hit consumed one return,
                // and the surplus return is exactly what sits in the cache.
                assert_eq!(
                    (after.returns - before.returns) - (after.hits - before.hits),
                    1,
                    "one buffer should remain cached"
                );
            }
            // Outermost scope exit trimmed: no leaked buffers or charges.
            assert_eq!(
                mem::stats("buf-pool-test").live,
                live0,
                "trim must release all cached charges"
            );
            let after = stats();
            assert!(after.trimmed_bytes - before.trimmed_bytes >= 2048);
        });
    }

    // Unwind audit: a panic under an open scope must run the guard's Drop —
    // depth back to zero, cached charges trimmed — and leave the thread able
    // to open fresh scopes. A leaked depth here would silently re-enable
    // pooling for every later allocation on the thread.
    #[test]
    fn scope_unwinds_cleanly_on_panic() {
        mem::with_pool("buf-pool-unwind", || {
            let live0 = mem::stats("buf-pool-unwind").live;
            let result = std::panic::catch_unwind(|| {
                let _scope = PoolScope::new();
                drop(TrackedBuf::zeros(300)); // parked in the cache
                panic!("injected panic under an open pool scope");
            });
            assert!(result.is_err());
            assert!(!enabled(), "unwound scope must close");
            assert_eq!(
                mem::stats("buf-pool-unwind").live,
                live0,
                "unwind must trim cached charges"
            );
            let _scope = PoolScope::new();
            assert!(enabled(), "pooling must still work after the unwind");
        });
    }

    #[test]
    fn oversized_and_disabled_allocations_bypass() {
        mem::with_pool("buf-pool-bypass", || {
            // No scope: plain exact-size allocation, freed on drop.
            let live0 = mem::stats("buf-pool-bypass").live;
            let a = TrackedBuf::zeros(100);
            assert_eq!(mem::stats("buf-pool-bypass").live - live0, 400);
            drop(a);
            assert_eq!(mem::stats("buf-pool-bypass").live, live0);

            // force_disable wins over an active scope.
            let _scope = PoolScope::new();
            force_disable(true);
            let b = TrackedBuf::zeros(100);
            assert_eq!(mem::stats("buf-pool-bypass").live - live0, 400);
            drop(b);
            assert_eq!(mem::stats("buf-pool-bypass").live, live0);
            force_disable(false);
        });
    }
}
