//! Tensor shapes. The workloads in this reproduction are rank-1 and rank-2
//! (node-feature matrices `[n, f]`, weight matrices, per-edge vectors), so
//! `Shape` is a thin wrapper over up to two dimensions with the index math
//! the kernels need.

/// Shape of a tensor: scalar (rank 0), vector (rank 1) or matrix (rank 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A single number.
    Scalar,
    /// A vector of length `n`.
    Vec(usize),
    /// A row-major `rows x cols` matrix.
    Mat(usize, usize),
}

impl Shape {
    /// Total number of elements.
    pub fn numel(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vec(n) => n,
            Shape::Mat(r, c) => r * c,
        }
    }

    /// Number of rows when viewed as a matrix (`1` for scalars, `n` for
    /// vectors treated as column shape `[n, 1]`... vectors are treated as a
    /// single row of width `n` nowhere; see [`Shape::as_mat`]).
    pub fn rows(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vec(n) => n,
            Shape::Mat(r, _) => r,
        }
    }

    /// Number of columns when viewed as a matrix.
    pub fn cols(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vec(_) => 1,
            Shape::Mat(_, c) => c,
        }
    }

    /// Interprets the shape as `(rows, cols)`; vectors are column vectors
    /// `[n, 1]`, scalars are `[1, 1]`.
    pub fn as_mat(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Rank of the shape (0, 1 or 2).
    pub fn rank(&self) -> usize {
        match self {
            Shape::Scalar => 0,
            Shape::Vec(_) => 1,
            Shape::Mat(_, _) => 2,
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shape::Scalar => write!(f, "[]"),
            Shape::Vec(n) => write!(f, "[{n}]"),
            Shape::Mat(r, c) => write!(f, "[{r}, {c}]"),
        }
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Shape {
        Shape::Vec(n)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Shape {
        Shape::Mat(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        assert_eq!(Shape::Scalar.numel(), 1);
        assert_eq!(Shape::Vec(7).numel(), 7);
        assert_eq!(Shape::Mat(3, 4).numel(), 12);
        assert_eq!(Shape::Mat(3, 4).rows(), 3);
        assert_eq!(Shape::Mat(3, 4).cols(), 4);
        assert_eq!(Shape::Vec(5).as_mat(), (5, 1));
        assert_eq!(Shape::Scalar.rank(), 0);
        assert_eq!(Shape::Vec(1).rank(), 1);
        assert_eq!(Shape::Mat(1, 1).rank(), 2);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Shape::Mat(2, 3).to_string(), "[2, 3]");
        assert_eq!(Shape::from(4), Shape::Vec(4));
        assert_eq!(Shape::from((2, 2)), Shape::Mat(2, 2));
    }
}
