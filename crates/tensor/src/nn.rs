//! Minimal neural-network building blocks over the autograd tape: parameter
//! collections and dense (affine) layers. Graph layers live in the
//! framework crates; this module only provides what the *backend* would in
//! the paper's architecture (PyTorch's `nn.Linear` etc.).

use crate::autograd::{Param, Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// One named tensor in a serialised model state: `(name, shape, row-major
/// data)`. The tuple form matches [`ParamSet::state_dict`] so checkpoints
/// and in-memory state dicts are interchangeable.
pub type StateEntry = (String, crate::Shape, Vec<f32>);

/// Typed failure from [`StateDict::try_load_state_dict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateDictError {
    /// The dict has no entry for a parameter the model owns.
    MissingParam(String),
    /// An entry exists but its shape differs from the parameter's.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the model expects.
        expected: crate::Shape,
        /// Shape found in the dict.
        found: crate::Shape,
    },
}

impl std::fmt::Display for StateDictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateDictError::MissingParam(name) => {
                write!(f, "state dict missing parameter '{name}'")
            }
            StateDictError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for '{name}': model expects {expected}, dict has {found}"
            ),
        }
    }
}

impl std::error::Error for StateDictError {}

/// Models whose parameters can be exported and imported by name — the
/// checkpointing interface `stgraph-serve` persists through its `.stgc`
/// format. Implementors only provide [`StateDict::parameters`]; export and
/// import derive from it.
pub trait StateDict {
    /// Every learnable parameter, in registration order.
    fn parameters(&self) -> Vec<Param>;

    /// Snapshots all parameters as named `(name, shape, data)` entries.
    fn to_state_dict(&self) -> Vec<StateEntry> {
        self.parameters()
            .iter()
            .map(|p| {
                let v = p.value();
                (p.name(), v.shape(), v.to_vec())
            })
            .collect()
    }

    /// Restores parameters by name. Entries the model does not own are
    /// ignored (so a sub-model can load from a larger checkpoint); every
    /// owned parameter must be present with an identical shape. Validation
    /// runs before any mutation, so on error the model is unchanged.
    fn try_load_state_dict(&self, dict: &[StateEntry]) -> Result<(), StateDictError> {
        let params = self.parameters();
        let mut resolved = Vec::with_capacity(params.len());
        for p in &params {
            let name = p.name();
            let Some((_, shape, data)) = dict.iter().find(|(n, _, _)| *n == name) else {
                return Err(StateDictError::MissingParam(name));
            };
            let expected = p.value().shape();
            if *shape != expected {
                return Err(StateDictError::ShapeMismatch {
                    name,
                    expected,
                    found: *shape,
                });
            }
            resolved.push((p, *shape, data));
        }
        for (p, shape, data) in resolved {
            p.set_value(Tensor::from_vec(shape, data.clone()));
        }
        Ok(())
    }
}

/// An ordered collection of parameters, shared by modules and optimizers.
#[derive(Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> ParamSet {
        ParamSet { params: Vec::new() }
    }

    /// Registers a new parameter and returns a handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        let p = Param::new(name, value);
        self.params.push(p.clone());
        p
    }

    /// Adopts parameters from another set (module composition).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// Iterates over parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn numel(&self) -> usize {
        self.params.iter().map(|p| p.value().numel()).sum()
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Snapshots all parameter values as `(name, shape, data)` triples —
    /// a state dict for checkpointing.
    pub fn state_dict(&self) -> Vec<(String, crate::Shape, Vec<f32>)> {
        self.params
            .iter()
            .map(|p| {
                let v = p.value();
                (p.name(), v.shape(), v.to_vec())
            })
            .collect()
    }

    /// Restores parameter values from a state dict produced by
    /// [`ParamSet::state_dict`]. Matching is by name; shapes must agree.
    ///
    /// # Panics
    /// If a parameter has no entry, or an entry's shape differs.
    pub fn load_state_dict(&self, dict: &[(String, crate::Shape, Vec<f32>)]) {
        for p in &self.params {
            let name = p.name();
            let (_, shape, data) = dict
                .iter()
                .find(|(n, _, _)| *n == name)
                .unwrap_or_else(|| panic!("state dict missing parameter '{name}'"));
            assert_eq!(*shape, p.value().shape(), "shape mismatch for '{name}'");
            p.set_value(Tensor::from_vec(*shape, data.clone()));
        }
    }
}

impl StateDict for ParamSet {
    fn parameters(&self) -> Vec<Param> {
        self.params.clone()
    }
}

impl StateDict for Linear {
    fn parameters(&self) -> Vec<Param> {
        let mut out = vec![self.weight.clone()];
        out.extend(self.bias.iter().cloned());
        out
    }
}

/// A dense affine layer `y = x W + b`.
pub struct Linear {
    /// Weight `[in, out]`.
    pub weight: Param,
    /// Bias `[out]`, if enabled.
    pub bias: Option<Param>,
}

impl Linear {
    /// Glorot-initialised dense layer registered into `params`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        fan_in: usize,
        fan_out: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Linear {
        let weight = params.register(
            format!("{name}.weight"),
            Tensor::glorot(fan_in, fan_out, rng),
        );
        let bias = bias.then(|| params.register(format!("{name}.bias"), Tensor::zeros(fan_out)));
        Linear { weight, bias }
    }

    /// Applies the layer on the given tape.
    pub fn forward<'t>(&self, tape: &'t Tape, x: &Var<'t>) -> Var<'t> {
        let w = tape.param(&self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => y.add_bias(&tape.param(b)),
            None => y,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weight.value().rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weight.value().cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::check::{assert_close, numeric_grad};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, true, &mut rng);
        assert_eq!(ps.len(), 2);
        assert_eq!(lin.fan_in(), 3);
        assert_eq!(lin.fan_out(), 2);
        let x = Tensor::rand_uniform((4, 3), -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = lin.forward(&tape, &xv);
        let manual = x
            .matmul(&lin.weight.value())
            .add_bias(&lin.bias.as_ref().unwrap().value());
        assert!(y.value().approx_eq(&manual, 1e-6));
    }

    #[test]
    fn linear_weight_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, true, &mut rng);
        let x = Tensor::rand_uniform((4, 3), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((4, 2), -1.0, 1.0, &mut rng);
        {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = lin.forward(&tape, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        let w0 = lin.weight.value();
        let bias = lin.bias.as_ref().unwrap().value();
        let mut f = |w: &Tensor| {
            x.matmul(w)
                .add_bias(&bias)
                .sub(&target)
                .square()
                .sum()
                .item()
                / target.numel() as f32
        };
        assert_close(&lin.weight.grad(), &numeric_grad(&mut f, &w0, 1e-2), 2e-2);
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, true, &mut rng);
        let dict = ps.state_dict();
        assert_eq!(dict.len(), 2);
        // Mutate, then restore.
        lin.weight.set_value(Tensor::zeros((3, 2)));
        ps.load_state_dict(&dict);
        let restored = ps.state_dict();
        for ((n1, s1, d1), (n2, s2, d2)) in dict.iter().zip(&restored) {
            assert_eq!(n1, n2);
            assert_eq!(s1, s2);
            assert_eq!(d1, d2);
        }
        assert!(lin.weight.value().data().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn load_state_dict_missing_entry_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let _ = Linear::new(&mut ps, "l", 2, 2, false, &mut rng);
        ps.load_state_dict(&[]);
    }

    #[test]
    fn statedict_trait_roundtrips_and_ignores_extras() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, true, &mut rng);
        let mut dict = StateDict::to_state_dict(&ps);
        // Extra entries are ignored on load.
        dict.push(("other.weight".into(), crate::Shape::Vec(4), vec![0.0; 4]));
        lin.weight.set_value(Tensor::zeros((3, 2)));
        ps.try_load_state_dict(&dict).unwrap();
        assert_eq!(lin.weight.value().to_vec(), dict[0].2);
    }

    #[test]
    fn statedict_errors_are_typed_and_leave_model_untouched() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 2, 2, false, &mut rng);
        let before = lin.weight.value().to_vec();
        assert_eq!(
            ps.try_load_state_dict(&[]),
            Err(StateDictError::MissingParam("l.weight".into()))
        );
        let bad = vec![("l.weight".into(), crate::Shape::Vec(4), vec![1.0; 4])];
        assert!(matches!(
            ps.try_load_state_dict(&bad),
            Err(StateDictError::ShapeMismatch { .. })
        ));
        assert_eq!(
            lin.weight.value().to_vec(),
            before,
            "model must be unchanged"
        );
    }

    #[test]
    fn paramset_bookkeeping() {
        let mut ps = ParamSet::new();
        assert!(ps.is_empty());
        ps.register("a", Tensor::zeros((2, 3)));
        let mut ps2 = ParamSet::new();
        ps2.register("b", Tensor::zeros(5));
        ps.extend(&ps2);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.numel(), 11);
    }
}
