//! Reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of operations as they execute (define-by-run,
//! PyTorch style). Each node keeps *only* the tensors its backward formula
//! needs ("saved for backward" semantics), so the memory the tape retains
//! between forward and backward is exactly what the paper's State-Stack
//! analysis reasons about. [`Tape::custom`] lets other crates (the Seastar
//! executor, the PyG-T baseline) register graph-aggregation ops with their
//! own backward kernels — including backwards that pop executor stacks.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared storage for a trainable parameter: value plus accumulated gradient.
pub struct ParamInner {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by [`Param::zero_grad`]).
    pub grad: Tensor,
    /// Human-readable name (for debugging / optimizer state keys).
    pub name: String,
}

/// A trainable parameter. Cloning shares storage; gradients accumulate into
/// the shared cell across [`Tape::backward`] calls until zeroed.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Param {
        let grad = Tensor::zeros(value.shape());
        Param {
            inner: Rc::new(RefCell::new(ParamInner {
                value,
                grad,
                name: name.into(),
            })),
        }
    }

    /// The parameter's current value (cheap clone of shared storage).
    pub fn value(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.borrow().grad.clone()
    }

    /// The parameter's name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Overwrites the value (used by optimizers).
    pub fn set_value(&self, v: Tensor) {
        self.inner.borrow_mut().value = v;
    }

    /// Overwrites the accumulated gradient (gradient clipping etc.).
    pub fn set_grad(&self, g: Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(g.shape(), inner.value.shape(), "set_grad: shape mismatch");
        inner.grad = g;
    }

    /// Resets the gradient to zeros.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = Tensor::zeros(inner.value.shape());
    }

    fn accumulate(&self, g: &Tensor) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = inner.grad.add(g);
    }
}

/// Where a leaf node sends incoming gradients.
enum LeafSink {
    /// Accumulate into a parameter.
    Param(Param),
    /// Store for inspection (gradcheck on inputs).
    Input(Rc<RefCell<Option<Tensor>>>),
    /// Discard (plain data).
    Constant,
}

type BackwardFn = Box<dyn FnMut(&Tensor) -> Vec<Tensor>>;

enum NodeKind {
    Leaf(LeafSink),
    Op {
        parents: Vec<usize>,
        backward: BackwardFn,
    },
}

struct Node {
    kind: NodeKind,
    shape: Shape,
}

/// Handle to the gradient of an input leaf, filled in by `backward`.
#[derive(Clone)]
pub struct InputGrad(Rc<RefCell<Option<Tensor>>>);

impl InputGrad {
    /// The gradient, if backward has produced one.
    pub fn get(&self) -> Option<Tensor> {
        self.0.borrow().clone()
    }
}

/// A gradient tape recording one forward computation.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// A differentiable value on a tape: node id plus the forward tensor.
#[derive(Clone)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
    value: Tensor,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, kind: NodeKind, shape: Shape) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { kind, shape });
        nodes.len() - 1
    }

    /// Registers a parameter leaf; gradients accumulate into the parameter.
    pub fn param<'t>(&'t self, p: &Param) -> Var<'t> {
        let value = p.value();
        let id = self.push(NodeKind::Leaf(LeafSink::Param(p.clone())), value.shape());
        Var {
            tape: self,
            id,
            value,
        }
    }

    /// Registers a non-trainable data leaf (features, targets).
    pub fn constant(&self, t: Tensor) -> Var<'_> {
        let id = self.push(NodeKind::Leaf(LeafSink::Constant), t.shape());
        Var {
            tape: self,
            id,
            value: t,
        }
    }

    /// Registers an input leaf whose gradient can be read back after
    /// `backward` (for gradient checking).
    pub fn input(&self, t: Tensor) -> (Var<'_>, InputGrad) {
        let cell = Rc::new(RefCell::new(None));
        let id = self.push(NodeKind::Leaf(LeafSink::Input(Rc::clone(&cell))), t.shape());
        (
            Var {
                tape: self,
                id,
                value: t,
            },
            InputGrad(cell),
        )
    }

    /// Records a custom differentiable op.
    ///
    /// `backward(grad_out)` must return one gradient tensor per input, in
    /// order. It is `FnMut` so backwards may consume state pushed during the
    /// forward pass (the State-Stack / Graph-Stack pattern of Algorithm 1).
    pub fn custom<'t>(
        &'t self,
        inputs: &[&Var<'t>],
        value: Tensor,
        backward: impl FnMut(&Tensor) -> Vec<Tensor> + 'static,
    ) -> Var<'t> {
        let parents = inputs.iter().map(|v| v.id).collect();
        let id = self.push(
            NodeKind::Op {
                parents,
                backward: Box::new(backward),
            },
            value.shape(),
        );
        Var {
            tape: self,
            id,
            value,
        }
    }

    /// Runs reverse-mode accumulation from `loss` (seeded with 1.0).
    ///
    /// Nodes are visited in strictly decreasing id order, which is a reverse
    /// topological order of the recorded DAG — so custom backwards observe
    /// exact LIFO order relative to their forwards, the discipline the
    /// paper's State Stack and Graph Stack rely on.
    ///
    /// The tape is consumed (left empty): saved tensors are dropped as their
    /// node's backward completes (mirroring PyTorch freeing saved buffers).
    pub fn backward(&self, loss: &Var<'_>) {
        let mut nodes = self.nodes.replace(Vec::new());
        let n = nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        assert_eq!(
            nodes[loss.id].shape.numel(),
            1,
            "backward() must start from a scalar loss, got {}",
            nodes[loss.id].shape
        );
        grads[loss.id] = Some(Tensor::ones(nodes[loss.id].shape));
        for id in (0..n).rev() {
            let Some(g) = grads[id].take() else { continue };
            match &mut nodes[id].kind {
                NodeKind::Leaf(sink) => match sink {
                    LeafSink::Param(p) => p.accumulate(&g),
                    LeafSink::Input(cell) => {
                        let mut slot = cell.borrow_mut();
                        *slot = Some(match slot.take() {
                            Some(prev) => prev.add(&g),
                            None => g,
                        });
                    }
                    LeafSink::Constant => {}
                },
                NodeKind::Op { parents, backward } => {
                    let pgrads = backward(&g);
                    assert_eq!(
                        pgrads.len(),
                        parents.len(),
                        "custom backward returned wrong arity"
                    );
                    for (pid, pg) in parents.iter().zip(pgrads) {
                        let slot = &mut grads[*pid];
                        *slot = Some(match slot.take() {
                            Some(prev) => prev.add(&pg),
                            None => pg,
                        });
                    }
                    // Drop the closure now to release saved tensors early.
                    nodes[id].kind = NodeKind::Leaf(LeafSink::Constant);
                }
            }
        }
    }
}

/// Places the columns of `g` (width `hi-lo`) into a zero matrix of width
/// `total` at offset `lo` — the adjoint of `slice_cols`.
fn place_cols(g: &Tensor, lo: usize, total: usize) -> Tensor {
    let (n, w) = g.shape().as_mat();
    let mut out = crate::mem::TrackedBuf::raw(n * total);
    let dst = out.as_mut_slice();
    let src = g.data();
    for i in 0..n {
        let row = &mut dst[i * total..(i + 1) * total];
        row[..lo].fill(0.0);
        row[lo..lo + w].copy_from_slice(&src[i * w..(i + 1) * w]);
        row[lo + w..].fill(0.0);
    }
    Tensor::from_buf((n, total), out)
}

impl<'t> Var<'t> {
    /// The forward value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// The node id on the tape.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tape this var belongs to.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    fn unary(&self, value: Tensor, backward: impl FnMut(&Tensor) -> Tensor + 'static) -> Var<'t> {
        let mut backward = backward;
        self.tape.custom(&[self], value, move |g| vec![backward(g)])
    }

    // ---------- arithmetic ----------

    /// Elementwise sum.
    pub fn add(&self, other: &Var<'t>) -> Var<'t> {
        let v = self.value.add(&other.value);
        self.tape
            .custom(&[self, other], v, |g| vec![g.clone(), g.clone()])
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var<'t>) -> Var<'t> {
        let v = self.value.sub(&other.value);
        self.tape
            .custom(&[self, other], v, |g| vec![g.clone(), g.neg()])
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Var<'t>) -> Var<'t> {
        let v = self.value.mul(&other.value);
        let (a, b) = (self.value.clone(), other.value.clone());
        self.tape
            .custom(&[self, other], v, move |g| vec![g.mul(&b), g.mul(&a)])
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var<'t> {
        self.unary(self.value.neg(), |g| g.neg())
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var<'t> {
        self.unary(self.value.add_scalar(s), |g| g.clone())
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var<'t> {
        self.unary(self.value.mul_scalar(s), move |g| g.mul_scalar(s))
    }

    /// `1 - x`, a common gate complement in GRU cells.
    pub fn one_minus(&self) -> Var<'t> {
        self.unary(self.value.neg().add_scalar(1.0), |g| g.neg())
    }

    // ---------- nonlinearities ----------

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var<'t> {
        let y = self.value.sigmoid();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc.mul(&yc.neg().add_scalar(1.0))))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var<'t> {
        let y = self.value.tanh();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc.square().neg().add_scalar(1.0)))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var<'t> {
        let x = self.value.clone();
        self.unary(self.value.relu(), move |g| {
            let mask = Tensor::from_vec(
                x.shape(),
                x.data()
                    .iter()
                    .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
                    .collect(),
            );
            g.mul(&mask)
        })
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&self, slope: f32) -> Var<'t> {
        let x = self.value.clone();
        self.unary(self.value.leaky_relu(slope), move |g| {
            let mask = Tensor::from_vec(
                x.shape(),
                x.data()
                    .iter()
                    .map(|&v| if v >= 0.0 { 1.0 } else { slope })
                    .collect(),
            );
            g.mul(&mask)
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var<'t> {
        let y = self.value.exp();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var<'t> {
        let x = self.value.clone();
        self.unary(self.value.square(), move |g| g.mul(&x).mul_scalar(2.0))
    }

    // ---------- linear algebra ----------

    /// Matrix product.
    pub fn matmul(&self, other: &Var<'t>) -> Var<'t> {
        let v = self.value.matmul(&other.value);
        let (a, b) = (self.value.clone(), other.value.clone());
        self.tape.custom(&[self, other], v, move |g| {
            vec![g.matmul(&b.transpose()), a.transpose().matmul(g)]
        })
    }

    /// Matrix product with a constant (non-differentiable) right operand.
    pub fn matmul_const(&self, w: &Tensor) -> Var<'t> {
        let v = self.value.matmul(w);
        let wt = w.transpose();
        self.unary(v, move |g| g.matmul(&wt))
    }

    /// Adds a broadcast bias row vector.
    pub fn add_bias(&self, bias: &Var<'t>) -> Var<'t> {
        let v = self.value.add_bias(&bias.value);
        self.tape
            .custom(&[self, bias], v, |g| vec![g.clone(), g.sum_axis0()])
    }

    /// Scales row `i` by the constant `s[i]` (e.g. GCN degree norms).
    pub fn scale_rows_const(&self, s: &Tensor) -> Var<'t> {
        let v = self.value.scale_rows(s);
        let s = s.clone();
        self.unary(v, move |g| g.scale_rows(&s))
    }

    // ---------- structural ----------

    /// Concatenates along columns.
    pub fn concat_cols(parts: &[&Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty());
        let tape = parts[0].tape;
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &p.value).collect();
        let v = Tensor::concat_cols(&tensors);
        let widths: Vec<usize> = parts.iter().map(|p| p.value.cols()).collect();
        tape.custom(parts, v, move |g| {
            let mut out = Vec::with_capacity(widths.len());
            let mut lo = 0;
            for &w in &widths {
                out.push(g.slice_cols(lo, lo + w));
                lo += w;
            }
            out
        })
    }

    /// Extracts columns `lo..hi`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Var<'t> {
        let total = self.value.cols();
        self.unary(self.value.slice_cols(lo, hi), move |g| {
            place_cols(g, lo, total)
        })
    }

    /// Edge-parallel gather of rows by index (baseline message creation).
    pub fn gather_rows(&self, idx: Rc<Vec<u32>>) -> Var<'t> {
        let n = self.value.rows();
        let v = self.value.gather_rows(&idx);
        self.unary(v, move |g| g.scatter_add_rows(&idx, n))
    }

    /// Edge-parallel scatter-add of rows (baseline message reduction).
    pub fn scatter_add_rows(&self, idx: Rc<Vec<u32>>, n_rows: usize) -> Var<'t> {
        let v = self.value.scatter_add_rows(&idx, n_rows);
        self.unary(v, move |g| g.gather_rows(&idx))
    }

    /// Row sums as an `[n, 1]` matrix (e.g. dot-product edge scores).
    pub fn sum_cols(&self) -> Var<'t> {
        let (n, w) = self.value.shape().as_mat();
        let v = self.value.sum_axis1().reshape((n, 1));
        self.unary(v, move |g| g.broadcast_col(w))
    }

    // ---------- reductions & losses ----------

    /// Sum of all elements.
    pub fn sum(&self) -> Var<'t> {
        let shape = self.value.shape();
        self.unary(self.value.sum(), move |g| Tensor::full(shape, g.item()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> Var<'t> {
        let shape = self.value.shape();
        let inv = 1.0 / shape.numel() as f32;
        self.unary(self.value.mean(), move |g| {
            Tensor::full(shape, g.item() * inv)
        })
    }

    /// Mean-squared-error loss against a constant target.
    pub fn mse_loss(&self, target: &Tensor) -> Var<'t> {
        let diff = self.value.sub(target);
        let v = Tensor::scalar(diff.square().sum().item() / diff.numel() as f32);
        let inv = 2.0 / diff.numel() as f32;
        self.unary(v, move |g| diff.mul_scalar(inv * g.item()))
    }

    /// Numerically-stable binary-cross-entropy-with-logits loss (mean
    /// reduction) against constant 0/1 targets — the criterion the paper
    /// uses for link prediction.
    pub fn bce_with_logits_loss(&self, target: &Tensor) -> Var<'t> {
        let x = self.value.clone();
        let t = target.clone();
        assert_eq!(x.shape(), t.shape(), "bce: logits vs targets");
        let n = x.numel() as f32;
        let loss: f32 = x
            .data()
            .iter()
            .zip(t.data())
            .map(|(&xi, &ti)| xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln())
            .sum::<f32>()
            / n;
        self.unary(Tensor::scalar(loss), move |g| {
            // d/dx = sigmoid(x) - t, averaged.
            x.sigmoid().sub(&t).mul_scalar(g.item() / n)
        })
    }
}

/// Gradient-checking helpers shared by downstream crates' tests.
pub mod check {
    use super::*;

    /// Central-difference numerical gradient of `f` at `x`.
    pub fn numeric_grad(f: &mut dyn FnMut(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
        let base = x.to_vec();
        let mut g = vec![0.0f32; base.len()];
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let fp = f(&Tensor::from_vec(x.shape(), plus));
            let fm = f(&Tensor::from_vec(x.shape(), minus));
            g[i] = (fp - fm) / (2.0 * eps);
        }
        Tensor::from_vec(x.shape(), g)
    }

    /// Asserts analytic and numeric gradients agree within mixed
    /// absolute/relative tolerance.
    pub fn assert_close(analytic: &Tensor, numeric: &Tensor, tol: f32) {
        assert_eq!(analytic.shape(), numeric.shape());
        for (i, (&a, &n)) in analytic.data().iter().zip(numeric.data()).enumerate() {
            let scale = 1.0f32.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() <= tol * scale,
                "grad mismatch at {i}: analytic {a} vs numeric {n}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::check::*;
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn seeded(shape: (usize, usize), seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
    }

    /// Generic gradcheck: `builder` maps an input Var to a scalar loss Var.
    fn check_op(x0: &Tensor, builder: impl for<'t> Fn(&'t Tape, Var<'t>) -> Var<'t>, tol: f32) {
        let tape = Tape::new();
        let (x, gx) = tape.input(x0.clone());
        let loss = builder(&tape, x);
        tape.backward(&loss);
        let analytic = gx.get().expect("input grad missing");
        let mut f = |t: &Tensor| {
            let tape = Tape::new();
            let (x, _) = tape.input(t.clone());
            builder(&tape, x).value().item()
        };
        let numeric = numeric_grad(&mut f, x0, 1e-2);
        assert_close(&analytic, &numeric, tol);
    }

    #[test]
    fn grad_add_mul_chain() {
        let x0 = seeded((3, 4), 10);
        check_op(
            &x0,
            |tape, x| {
                let c = tape.constant(seeded((3, 4), 11));
                x.mul(&c).add(&x).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sub_neg_scalar() {
        let x0 = seeded((2, 5), 12);
        check_op(
            &x0,
            |tape, x| {
                let c = tape.constant(seeded((2, 5), 13));
                x.mul_scalar(3.0)
                    .sub(&c)
                    .neg()
                    .add_scalar(0.5)
                    .square()
                    .sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_tanh_relu() {
        let x0 = seeded((4, 4), 14);
        check_op(&x0, |_t, x| x.sigmoid().sum(), 1e-2);
        check_op(&x0, |_t, x| x.tanh().sum(), 1e-2);
        check_op(&x0, |_t, x| x.leaky_relu(0.2).sum(), 2e-2);
        check_op(&x0, |_t, x| x.exp().mean(), 1e-2);
    }

    #[test]
    fn grad_matmul_both_sides() {
        let x0 = seeded((3, 4), 15);
        let w = seeded((4, 2), 16);
        check_op(
            &x0,
            move |tape, x| {
                let w = tape.constant(w.clone());
                x.matmul(&w).square().sum()
            },
            2e-2,
        );
        // Grad wrt right operand through a Param.
        let a = seeded((3, 4), 17);
        let w0 = seeded((4, 2), 18);
        let p = Param::new("w", w0.clone());
        {
            let tape = Tape::new();
            let av = tape.constant(a.clone());
            let wv = tape.param(&p);
            let loss = av.matmul(&wv).square().sum();
            tape.backward(&loss);
        }
        let analytic = p.grad();
        let mut f = |t: &Tensor| {
            let tape = Tape::new();
            let av = tape.constant(a.clone());
            let (wv, _) = tape.input(t.clone());
            av.matmul(&wv).square().sum().value().item()
        };
        let numeric = numeric_grad(&mut f, &w0, 1e-2);
        assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn grad_bias_and_scale_rows() {
        let x0 = seeded((3, 4), 19);
        let s = seeded((3, 1), 20).reshape(3);
        check_op(
            &x0,
            move |_t, x| x.scale_rows_const(&s).square().sum(),
            2e-2,
        );
        let b0 = seeded((1, 4), 21).reshape(4);
        let p = Param::new("b", b0.clone());
        let xc = seeded((3, 4), 22);
        {
            let tape = Tape::new();
            let x = tape.constant(xc.clone());
            let b = tape.param(&p);
            let loss = x.add_bias(&b).square().sum();
            tape.backward(&loss);
        }
        let mut f = |t: &Tensor| {
            let tape = Tape::new();
            let x = tape.constant(xc.clone());
            let (b, _) = tape.input(t.clone());
            x.add_bias(&b).square().sum().value().item()
        };
        assert_close(&p.grad(), &numeric_grad(&mut f, &b0, 1e-2), 2e-2);
    }

    #[test]
    fn grad_concat_slice() {
        let x0 = seeded((3, 4), 23);
        check_op(
            &x0,
            |tape, x| {
                let c = tape.constant(seeded((3, 2), 24));
                let cat = Var::concat_cols(&[&x, &c]);
                cat.slice_cols(1, 5).square().sum()
            },
            2e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let x0 = seeded((4, 3), 25);
        let idx = Rc::new(vec![0u32, 2, 2, 3, 1]);
        let idx2 = Rc::clone(&idx);
        check_op(
            &x0,
            move |_t, x| x.gather_rows(Rc::clone(&idx2)).square().sum(),
            2e-2,
        );
        let idx3 = Rc::new(vec![1u32, 1, 0, 3]);
        let x1 = seeded((4, 3), 26);
        check_op(
            &x1,
            move |_t, x| x.scatter_add_rows(Rc::clone(&idx3), 5).square().sum(),
            2e-2,
        );
    }

    #[test]
    fn grad_sum_cols() {
        let x0 = seeded((4, 3), 40);
        check_op(&x0, |_t, x| x.sum_cols().square().sum(), 2e-2);
        let t = Tensor::from_vec((2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tape = Tape::new();
        let v = tape.constant(t);
        assert_eq!(v.sum_cols().value().to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn grad_losses() {
        let x0 = seeded((5, 2), 27);
        let target = seeded((5, 2), 28);
        let t2 = target.clone();
        check_op(&x0, move |_t, x| x.mse_loss(&t2), 2e-2);
        // 0/1 targets for BCE.
        let bt = Tensor::from_vec(
            (5, 2),
            target
                .data()
                .iter()
                .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
                .collect(),
        );
        check_op(&x0, move |_t, x| x.bce_with_logits_loss(&bt), 2e-2);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        // y = x*x via two uses of the same var; dy/dx = 2x.
        let x0 = Tensor::from_vec(2, vec![3.0, -2.0]);
        let tape = Tape::new();
        let (x, gx) = tape.input(x0);
        let y = x.mul(&x).sum();
        tape.backward(&y);
        assert_eq!(gx.get().unwrap().to_vec(), vec![6.0, -4.0]);
    }

    #[test]
    fn param_grad_accumulates_until_zeroed() {
        let p = Param::new("p", Tensor::from_vec(2, vec![1.0, 2.0]));
        for _ in 0..2 {
            let tape = Tape::new();
            let v = tape.param(&p);
            let loss = v.sum();
            tape.backward(&loss);
        }
        assert_eq!(p.grad().to_vec(), vec![2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad().to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn custom_backward_runs_in_lifo_order() {
        // Three custom ops record their backward order; it must be the
        // reverse of the forward order (the State-Stack discipline).
        let order = Rc::new(RefCell::new(Vec::new()));
        let tape = Tape::new();
        let x = tape.constant(Tensor::scalar(1.0));
        let mut cur = x;
        for i in 0..3 {
            let ord = Rc::clone(&order);
            cur = tape.custom(&[&cur], cur.value().clone(), move |g| {
                ord.borrow_mut().push(i);
                vec![g.clone()]
            });
        }
        let loss = cur.sum();
        tape.backward(&loss);
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_from_non_scalar_panics() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros((2, 2)));
        let y = x.add_scalar(1.0);
        tape.backward(&y);
    }

    #[test]
    fn bce_matches_manual_formula() {
        let x = Tensor::from_vec(2, vec![0.3, -1.2]);
        let t = Tensor::from_vec(2, vec![1.0, 0.0]);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let loss = xv.bce_with_logits_loss(&t).value().item();
        let manual: f32 = x
            .data()
            .iter()
            .zip(t.data())
            .map(|(&xi, &ti)| {
                let p = 1.0 / (1.0 + (-xi).exp());
                -(ti * p.ln() + (1.0 - ti) * (1.0 - p).ln())
            })
            .sum::<f32>()
            / 2.0;
        assert!((loss - manual).abs() < 1e-5);
    }
}
