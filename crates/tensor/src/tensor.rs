//! Dense, immutable `f32` tensors backed by tracked buffers.
//!
//! Every operation is a "kernel": a pure function producing a fresh tensor,
//! executed data-parallel with rayon when the element count justifies it.
//! This is the stand-in for the CUDA device in the paper — the work
//! decomposition (vertex-/row-parallel loops, atomic scatter) mirrors what
//! the generated kernels do on a GPU.

use crate::mem::TrackedBuf;
use crate::shape::Shape;
use crate::simd::{self, F32x8, LANES};
use rand::Rng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Default sequential/parallel cutover: below this per-kernel work estimate
/// (element count, or `n*m*k` for matmul) kernels run sequentially — thread
/// hand-off costs more than the loop.
pub const DEFAULT_PAR_MIN: usize = 1 << 12;

/// The active sequential/parallel cutover, honoured by every parallel kernel
/// in the workspace (tensor ops here, plus the seastar aggregation kernels
/// and graph builders). Defaults to [`DEFAULT_PAR_MIN`]; the
/// `STGRAPH_PAR_MIN` environment variable overrides it (read once at first
/// use, unparsable values fall back to the default).
pub fn par_min() -> usize {
    static CUTOVER: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CUTOVER.get_or_init(|| {
        std::env::var("STGRAPH_PAR_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_PAR_MIN)
    })
}

/// A dense row-major `f32` tensor. Cheap to clone (shared storage).
#[derive(Clone)]
pub struct Tensor {
    buf: Arc<TrackedBuf>,
    shape: Shape,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.data();
        let head: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor{}{:?}{}",
            self.shape,
            head,
            if d.len() > 8 { "…" } else { "" }
        )
    }
}

impl Tensor {
    // ---------- constructors ----------

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor {
            buf: Arc::new(TrackedBuf::zeros(shape.numel())),
            shape,
        }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Tensor {
        let shape = shape.into();
        let mut out = TrackedBuf::raw(shape.numel());
        out.as_mut_slice().fill(v);
        Tensor {
            buf: Arc::new(out),
            shape,
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// A rank-0 tensor holding `v`.
    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            buf: Arc::new(TrackedBuf::from_vec(vec![v])),
            shape: Shape::Scalar,
        }
    }

    /// Builds a tensor from an explicit element vector (row-major).
    ///
    /// # Panics
    /// If `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "from_vec: data length vs shape {shape}"
        );
        Tensor {
            buf: Arc::new(TrackedBuf::from_vec(data)),
            shape,
        }
    }

    /// Wraps an already-filled tracked buffer (typically pooled, via
    /// [`TrackedBuf::raw`]) without copying. This is how kernels outside this
    /// crate hand pooled storage back as a tensor.
    ///
    /// # Panics
    /// If `buf.len() != shape.numel()`.
    pub fn from_buf(shape: impl Into<Shape>, buf: TrackedBuf) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            buf.len(),
            shape.numel(),
            "from_buf: buffer length vs shape {shape}"
        );
        Tensor {
            buf: Arc::new(buf),
            shape,
        }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            buf: Arc::new(TrackedBuf::from_vec(data)),
            shape,
        }
    }

    /// Glorot/Xavier-uniform initialisation for a `[fan_in, fan_out]` weight.
    pub fn glorot(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform((fan_in, fan_out), -limit, limit, rng)
    }

    // ---------- accessors ----------

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Rows when viewed as a matrix.
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Columns when viewed as a matrix.
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Raw row-major element slice.
    pub fn data(&self) -> &[f32] {
        self.buf.as_slice()
    }

    /// Element at `(r, c)` under matrix view.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data()[r * self.cols() + c]
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    /// If the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on non-scalar tensor {}",
            self.shape
        );
        self.data()[0]
    }

    /// Copies the elements out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data().to_vec()
    }

    /// Returns a tensor with the same data but a new shape of equal numel.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {}",
            self.shape,
            shape
        );
        Tensor {
            buf: Arc::clone(&self.buf),
            shape,
        }
    }

    /// Max absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True if all elements are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    // ---------- kernel helpers ----------

    /// Generic per-element map for ops without a lane form (transcendentals
    /// and branchy activations). The slice re-borrows here hoist the Arc
    /// deref out of the loop; the zip keeps the body bounds-check free.
    #[inline]
    fn unary(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.data();
        let mut out = TrackedBuf::raw(src.len());
        let dst = out.as_mut_slice();
        if src.len() >= par_min() {
            dst.par_iter_mut()
                .zip(src.par_iter())
                .for_each(|(d, &s)| *d = f(s));
        } else {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = f(s);
            }
        }
        Tensor {
            buf: Arc::new(out),
            shape: self.shape,
        }
    }

    /// Lane-dispatched unary map: `lane` over [`LANES`]-wide chunks when
    /// SIMD is enabled, `scalar` for the remainder and the
    /// `STGRAPH_NO_SIMD` fallback. Both closures must compute the same
    /// per-element IEEE expression so the two paths stay bitwise equal.
    #[inline]
    fn unary_lanes(
        &self,
        lane: impl Fn(F32x8) -> F32x8 + Sync,
        scalar: impl Fn(f32) -> f32 + Sync,
    ) -> Tensor {
        let src = self.data();
        let mut out = TrackedBuf::raw(src.len());
        let dst = out.as_mut_slice();
        let use_simd = simd::enabled();
        let body = |(d, s): (&mut [f32], &[f32])| {
            if use_simd {
                let main = s.len() / LANES * LANES;
                let (dm, dt) = d.split_at_mut(main);
                let mut sc = s.chunks_exact(LANES);
                for (dc, sc) in dm.chunks_exact_mut(LANES).zip(sc.by_ref()) {
                    lane(F32x8::load(sc)).store(dc);
                }
                for (d, &s) in dt.iter_mut().zip(sc.remainder()) {
                    *d = scalar(s);
                }
            } else {
                for (d, &s) in d.iter_mut().zip(s) {
                    *d = scalar(s);
                }
            }
        };
        if src.len() >= par_min() {
            dst.par_chunks_mut(ELEMWISE_BLOCK)
                .zip(src.par_chunks(ELEMWISE_BLOCK))
                .for_each(body);
        } else {
            body((dst, src));
        }
        Tensor {
            buf: Arc::new(out),
            shape: self.shape,
        }
    }

    /// Lane-dispatched binary map; see [`Tensor::unary_lanes`] for the
    /// bitwise contract between `lane` and `scalar`.
    #[inline]
    fn binary_lanes(
        &self,
        other: &Tensor,
        lane: impl Fn(F32x8, F32x8) -> F32x8 + Sync,
        scalar: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        let a = self.data();
        let b = other.data();
        let mut out = TrackedBuf::raw(a.len());
        let dst = out.as_mut_slice();
        let use_simd = simd::enabled();
        let body = |(d, (a, b)): (&mut [f32], (&[f32], &[f32]))| {
            if use_simd {
                let main = a.len() / LANES * LANES;
                let (dm, dt) = d.split_at_mut(main);
                let mut ac = a.chunks_exact(LANES);
                let mut bc = b.chunks_exact(LANES);
                for (dc, (ac, bc)) in dm.chunks_exact_mut(LANES).zip(ac.by_ref().zip(bc.by_ref())) {
                    lane(F32x8::load(ac), F32x8::load(bc)).store(dc);
                }
                for (d, (&x, &y)) in dt.iter_mut().zip(ac.remainder().iter().zip(bc.remainder())) {
                    *d = scalar(x, y);
                }
            } else {
                for (d, (&x, &y)) in d.iter_mut().zip(a.iter().zip(b)) {
                    *d = scalar(x, y);
                }
            }
        };
        if a.len() >= par_min() {
            dst.par_chunks_mut(ELEMWISE_BLOCK)
                .zip(
                    a.par_chunks(ELEMWISE_BLOCK)
                        .zip(b.par_chunks(ELEMWISE_BLOCK)),
                )
                .for_each(body);
        } else {
            body((dst, (a, b)));
        }
        Tensor {
            buf: Arc::new(out),
            shape: self.shape,
        }
    }

    // ---------- elementwise ----------

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.unary(|x| -x)
    }

    /// Elementwise sum with a same-shape tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary_lanes(other, |a, b| a.add(b), |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary_lanes(other, |a, b| a.sub(b), |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary_lanes(other, |a, b| a.mul(b), |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary_lanes(other, |a, b| a.div(b), |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.unary_lanes(move |x| x.add(F32x8::splat(s)), move |x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.unary_lanes(move |x| x.mul(F32x8::splat(s)), move |x| x * s)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.unary(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.unary(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.unary(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.unary_lanes(|x| x.mul(x), |x| x * x)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.unary(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.unary(f32::tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.unary_lanes(|x| x.max(F32x8::splat(0.0)), |x| x.max(0.0))
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        self.unary(move |x| if x >= 0.0 { x } else { slope * x })
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.unary(move |x| x.clamp(lo, hi))
    }

    // ---------- linear algebra ----------

    /// Matrix product `self @ other` for `[n,k] x [k,m]`.
    ///
    /// Row-parallel (the vertex-parallel decomposition of a GPU GEMM over n),
    /// with each row computed by a k-blocked, 8-wide register-tiled
    /// microkernel — [`matmul_row_simd`] when SIMD is enabled,
    /// [`matmul_row`] under `STGRAPH_NO_SIMD`. Results are deterministic:
    /// the per-element summation order depends only on the shapes (and the
    /// dispatch path), never on the thread count. The two paths associate
    /// the k-reduction differently, so they agree to a relative epsilon,
    /// not bitwise.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        if crate::quant::quantized_inference() {
            return crate::quant::quantized_matmul(self, other);
        }
        let (n, k) = self.shape.as_mat();
        let (k2, m) = other.shape.as_mat();
        assert_eq!(k, k2, "matmul {} x {}", self.shape, other.shape);
        let a = self.data();
        let b = other.data();
        let mut out = TrackedBuf::raw(n * m);
        let work = n * m * k;
        let row_kernel = if simd::enabled() {
            matmul_row_simd
        } else {
            matmul_row
        };
        let body = |(i, row): (usize, &mut [f32])| row_kernel(row, &a[i * k..(i + 1) * k], b, m);
        if work >= par_min() {
            out.as_mut_slice()
                .par_chunks_mut(m)
                .enumerate()
                .for_each(body);
        } else {
            out.as_mut_slice().chunks_mut(m).enumerate().for_each(body);
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(n, m),
        }
    }

    /// Matrix transpose (materialised).
    ///
    /// Cache-blocked on both the parallel and sequential paths: the source
    /// is swept in [`TRANSPOSE_BLOCK`]² tiles so each tile's strided writes
    /// land in an L1-resident window instead of thrashing one cache line
    /// per element. Pure data movement — no SIMD dispatch needed, both
    /// paths are the same loop.
    pub fn transpose(&self) -> Tensor {
        let (n, m) = self.shape.as_mat();
        let a = self.data();
        let mut out = TrackedBuf::raw(n * m);
        let dst = out.as_mut_slice();
        // Each chunk is TRANSPOSE_BLOCK output rows (= source columns).
        let body = |(blk, chunk): (usize, &mut [f32])| {
            let j0 = blk * TRANSPOSE_BLOCK;
            let jb = chunk.len() / n;
            let mut i0 = 0;
            while i0 < n {
                let iend = (i0 + TRANSPOSE_BLOCK).min(n);
                for i in i0..iend {
                    let arow = &a[i * m + j0..i * m + j0 + jb];
                    for (dj, &v) in arow.iter().enumerate() {
                        chunk[dj * n + i] = v;
                    }
                }
                i0 = iend;
            }
        };
        if n * m >= par_min() {
            dst.par_chunks_mut(TRANSPOSE_BLOCK * n)
                .enumerate()
                .for_each(body);
        } else {
            dst.chunks_mut(TRANSPOSE_BLOCK * n)
                .enumerate()
                .for_each(body);
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(m, n),
        }
    }

    // ---------- broadcasts ----------

    /// Adds a length-`cols` bias vector to every row of a matrix.
    /// Lane-dispatched along each row; bitwise-equal on both paths.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let (_, m) = self.shape.as_mat();
        assert_eq!(
            bias.numel(),
            m,
            "add_bias: bias {} vs cols {m}",
            bias.shape()
        );
        let b = bias.data();
        let a = self.data();
        let mut out = TrackedBuf::raw(a.len());
        let dst = out.as_mut_slice();
        let use_simd = simd::enabled();
        let body = |(_i, (drow, arow)): (usize, (&mut [f32], &[f32]))| {
            if use_simd {
                let main = m / LANES * LANES;
                let (dm, dt) = drow.split_at_mut(main);
                let mut ac = arow.chunks_exact(LANES);
                let mut bc = b.chunks_exact(LANES);
                for (dc, (ac, bc)) in dm.chunks_exact_mut(LANES).zip(ac.by_ref().zip(bc.by_ref())) {
                    F32x8::load(ac).add(F32x8::load(bc)).store(dc);
                }
                for (d, (&x, &bv)) in dt.iter_mut().zip(ac.remainder().iter().zip(bc.remainder())) {
                    *d = x + bv;
                }
            } else {
                for (d, (&x, &bv)) in drow.iter_mut().zip(arow.iter().zip(b)) {
                    *d = x + bv;
                }
            }
        };
        if a.len() >= par_min() {
            dst.par_chunks_mut(m)
                .zip(a.par_chunks(m))
                .enumerate()
                .for_each(body);
        } else {
            dst.chunks_mut(m)
                .zip(a.chunks(m))
                .enumerate()
                .for_each(body);
        }
        Tensor {
            buf: Arc::new(out),
            shape: self.shape,
        }
    }

    /// Scales row `i` of a matrix by `s[i]` (per-node normalisation).
    /// Lane-dispatched along each row; bitwise-equal on both paths.
    pub fn scale_rows(&self, s: &Tensor) -> Tensor {
        let (n, m) = self.shape.as_mat();
        assert_eq!(s.numel(), n, "scale_rows: scale {} vs rows {n}", s.shape());
        let sv = s.data();
        let a = self.data();
        let mut out = TrackedBuf::raw(a.len());
        let dst = out.as_mut_slice();
        let use_simd = simd::enabled();
        let body = |(i, (drow, arow)): (usize, (&mut [f32], &[f32]))| {
            let f = sv[i];
            if use_simd {
                let fx = F32x8::splat(f);
                let main = m / LANES * LANES;
                let (dm, dt) = drow.split_at_mut(main);
                let mut ac = arow.chunks_exact(LANES);
                for (dc, ac) in dm.chunks_exact_mut(LANES).zip(ac.by_ref()) {
                    F32x8::load(ac).mul(fx).store(dc);
                }
                for (d, &x) in dt.iter_mut().zip(ac.remainder()) {
                    *d = x * f;
                }
            } else {
                for (d, &x) in drow.iter_mut().zip(arow) {
                    *d = x * f;
                }
            }
        };
        if a.len() >= par_min() {
            dst.par_chunks_mut(m)
                .zip(a.par_chunks(m))
                .enumerate()
                .for_each(body);
        } else {
            dst.chunks_mut(m)
                .zip(a.chunks(m))
                .enumerate()
                .for_each(body);
        }
        Tensor {
            buf: Arc::new(out),
            shape: self.shape,
        }
    }

    /// Repeats a `[n, 1]` column (or `[n]` vector) across `w` columns.
    pub fn broadcast_col(&self, w: usize) -> Tensor {
        let n = self.rows();
        assert_eq!(self.cols(), 1, "broadcast_col takes a single-column tensor");
        let src = self.data();
        let mut out = TrackedBuf::raw(n * w);
        let dst = out.as_mut_slice();
        for i in 0..n {
            dst[i * w..(i + 1) * w].fill(src[i]);
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(n, w),
        }
    }

    // ---------- reductions ----------

    /// Sum of all elements as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        let d = self.data();
        let s: f32 = if d.len() >= par_min() {
            d.par_chunks(par_min()).map(|c| c.iter().sum::<f32>()).sum()
        } else {
            d.iter().sum()
        };
        Tensor::scalar(s)
    }

    /// Mean of all elements as a scalar tensor.
    pub fn mean(&self) -> Tensor {
        self.sum().mul_scalar(1.0 / self.numel() as f32)
    }

    /// Column sums of a matrix, as a `[cols]` vector (bias gradients).
    pub fn sum_axis0(&self) -> Tensor {
        let (n, m) = self.shape.as_mat();
        let a = self.data();
        let mut out = TrackedBuf::zeros(m);
        let acc = out.as_mut_slice();
        for i in 0..n {
            for j in 0..m {
                acc[j] += a[i * m + j];
            }
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Vec(m),
        }
    }

    /// Row sums of a matrix, as a `[rows]` vector.
    pub fn sum_axis1(&self) -> Tensor {
        let (n, m) = self.shape.as_mat();
        let a = self.data();
        let mut out = TrackedBuf::raw(n);
        for (i, slot) in out.as_mut_slice().iter_mut().enumerate() {
            *slot = a[i * m..(i + 1) * m].iter().sum();
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Vec(n),
        }
    }

    // ---------- structural ----------

    /// Concatenates matrices with equal row counts along the column axis.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let n = parts[0].rows();
        for p in parts {
            assert_eq!(p.rows(), n, "concat_cols: row mismatch");
        }
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = TrackedBuf::raw(n * total);
        let dst = out.as_mut_slice();
        let mut off = 0;
        for p in parts {
            let m = p.cols();
            let src = p.data();
            for i in 0..n {
                dst[i * total + off..i * total + off + m].copy_from_slice(&src[i * m..(i + 1) * m]);
            }
            off += m;
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(n, total),
        }
    }

    /// Extracts columns `lo..hi` of a matrix.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        let (n, m) = self.shape.as_mat();
        assert!(lo <= hi && hi <= m, "slice_cols {lo}..{hi} of {m}");
        let w = hi - lo;
        let a = self.data();
        let mut out = TrackedBuf::raw(n * w);
        let dst = out.as_mut_slice();
        for i in 0..n {
            dst[i * w..(i + 1) * w].copy_from_slice(&a[i * m + lo..i * m + hi]);
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(n, w),
        }
    }

    /// Gathers rows by index: `out[e] = self[idx[e]]`.
    ///
    /// This is the *edge-parallel* gather that PyG-style frameworks use to
    /// materialise per-edge source features — the memory overhead the paper
    /// calls out.
    pub fn gather_rows(&self, idx: &[u32]) -> Tensor {
        let (n, m) = self.shape.as_mat();
        let a = self.data();
        let mut out = TrackedBuf::raw(idx.len() * m);
        let dst = out.as_mut_slice();
        let body = |(e, row): (usize, &mut [f32])| {
            let i = idx[e] as usize;
            debug_assert!(i < n);
            row.copy_from_slice(&a[i * m..(i + 1) * m]);
        };
        if idx.len() * m >= par_min() {
            dst.par_chunks_mut(m).enumerate().for_each(body);
        } else {
            dst.chunks_mut(m).enumerate().for_each(body);
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(idx.len(), m),
        }
    }

    /// Scatter-add of per-edge rows into `n_rows` destination rows:
    /// `out[idx[e]] += self[e]`, using atomic f32 adds exactly like a GPU
    /// scatter kernel.
    pub fn scatter_add_rows(&self, idx: &[u32], n_rows: usize) -> Tensor {
        let (ne, m) = self.shape.as_mat();
        assert_eq!(ne, idx.len(), "scatter_add_rows: rows vs indices");
        let a = self.data();
        let mut out = TrackedBuf::zeros(n_rows * m);
        {
            let dst = out.as_mut_slice();
            let atomic = as_atomic_f32(dst);
            let body = |e: usize| {
                let d = idx[e] as usize;
                debug_assert!(d < n_rows);
                let row = &a[e * m..(e + 1) * m];
                for (j, &v) in row.iter().enumerate() {
                    atomic_add_f32(&atomic[d * m + j], v);
                }
            };
            if ne * m >= par_min() {
                (0..ne).into_par_iter().for_each(body);
            } else {
                (0..ne).for_each(body);
            }
        }
        Tensor {
            buf: Arc::new(out),
            shape: Shape::Mat(n_rows, m),
        }
    }
}

/// Elements per rayon task in the lane-dispatched elementwise kernels.
/// A multiple of [`LANES`] so only the final block carries a scalar
/// remainder; big enough that task hand-off stays negligible.
const ELEMWISE_BLOCK: usize = 4096;

/// Tile edge of the cache-blocked transpose: a 32×32 f32 tile is 4 KiB, so
/// source reads and (strided) destination writes both stay L1-resident
/// while the tile is swept.
const TRANSPOSE_BLOCK: usize = 32;

/// k-block depth of the matmul microkernel. A block touches an
/// 8-column × 256-row panel of B (8 KiB) plus a 1 KiB stripe of the A row —
/// both stay resident in a 32 KiB L1d across the panel sweep.
const MATMUL_KB: usize = 256;

/// Width of the matmul register tile: 8 independent accumulators give the
/// out-of-order core parallel FMA chains instead of one serial
/// load-add-store dependency through the output row.
const MATMUL_JW: usize = 8;

/// Computes one output row `row = arow · B` (B row-major, `m` columns).
///
/// The j-loop is tiled [`MATMUL_JW`] wide with the partial sums held in a
/// stack array (registers after unrolling), so the inner k-loop does no
/// output-row loads or stores; the k-loop is blocked [`MATMUL_KB`] deep so
/// the B panel it streams stays L1-resident. Columns past the last full tile
/// fall back to the untiled update. Summation order per element is fixed by
/// the shapes, keeping results bit-deterministic under any thread count.
fn matmul_row(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    debug_assert_eq!(row.len(), m);
    row.fill(0.0);
    let k = arow.len();
    let mut k0 = 0;
    while k0 < k {
        let kend = (k0 + MATMUL_KB).min(k);
        let mut j0 = 0;
        while j0 + MATMUL_JW <= m {
            let mut acc = [0.0f32; MATMUL_JW];
            acc.copy_from_slice(&row[j0..j0 + MATMUL_JW]);
            for (kk, &av) in arow[k0..kend].iter().enumerate() {
                let brow = &b[(k0 + kk) * m + j0..(k0 + kk) * m + j0 + MATMUL_JW];
                for (x, &bv) in acc.iter_mut().zip(brow) {
                    *x += av * bv;
                }
            }
            row[j0..j0 + MATMUL_JW].copy_from_slice(&acc);
            j0 += MATMUL_JW;
        }
        if j0 < m {
            for (kk, &av) in arow[k0..kend].iter().enumerate() {
                let brow = &b[(k0 + kk) * m..(k0 + kk + 1) * m];
                for (x, &bv) in row[j0..].iter_mut().zip(&brow[j0..]) {
                    *x += av * bv;
                }
            }
        }
        k0 = kend;
    }
}

/// SIMD variant of [`matmul_row`]: one [`F32x8`] of output columns per
/// j-tile, with the k-reduction split across four independent lane
/// accumulators so the loop is bounded by multiply/add *throughput* rather
/// than the latency of one serial accumulate chain. The accumulators are
/// combined in a fixed order at the end of each k-block, so results are
/// still bit-deterministic under any thread count — but the reassociation
/// means they differ from [`matmul_row`] by rounding (epsilon-gated in
/// tests, never bitwise-compared).
fn matmul_row_simd(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma() {
        // SAFETY: AVX2+FMA presence was verified at runtime (cached), so
        // the target_feature codegen of the callee is valid on this CPU.
        unsafe { matmul_row_avx2(row, arow, b, m) };
        return;
    }
    matmul_row_portable(row, arow, b, m)
}

/// The portable-lane body of [`matmul_row_simd`]: compiles on every
/// target, autovectorizing to whatever the baseline ISA offers.
fn matmul_row_portable(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    debug_assert_eq!(row.len(), m);
    row.fill(0.0);
    let k = arow.len();
    let mut k0 = 0;
    while k0 < k {
        let kend = (k0 + MATMUL_KB).min(k);
        let k4 = (kend - k0) / 4 * 4;
        let mut j0 = 0;
        while j0 + LANES <= m {
            let mut acc0 = F32x8::load(&row[j0..]);
            let mut acc1 = F32x8::splat(0.0);
            let mut acc2 = F32x8::splat(0.0);
            let mut acc3 = F32x8::splat(0.0);
            let mut kk = k0;
            while kk < k0 + k4 {
                acc0 = F32x8::splat(arow[kk]).mul_add(F32x8::load(&b[kk * m + j0..]), acc0);
                acc1 =
                    F32x8::splat(arow[kk + 1]).mul_add(F32x8::load(&b[(kk + 1) * m + j0..]), acc1);
                acc2 =
                    F32x8::splat(arow[kk + 2]).mul_add(F32x8::load(&b[(kk + 2) * m + j0..]), acc2);
                acc3 =
                    F32x8::splat(arow[kk + 3]).mul_add(F32x8::load(&b[(kk + 3) * m + j0..]), acc3);
                kk += 4;
            }
            for kr in k0 + k4..kend {
                acc0 = F32x8::splat(arow[kr]).mul_add(F32x8::load(&b[kr * m + j0..]), acc0);
            }
            acc0.add(acc1).add(acc2.add(acc3)).store(&mut row[j0..]);
            j0 += LANES;
        }
        if j0 < m {
            // Columns past the last full lane tile: same untiled update as
            // the scalar microkernel's remainder.
            for (kk, &av) in arow[k0..kend].iter().enumerate() {
                let brow = &b[(k0 + kk) * m..(k0 + kk + 1) * m];
                for (x, &bv) in row[j0..].iter_mut().zip(&brow[j0..]) {
                    *x += av * bv;
                }
            }
        }
        k0 = kend;
    }
}

/// AVX2+FMA specialization of the row microkernel: identical j-tile /
/// k-block structure to [`matmul_row_portable`], but each 8-column tile is
/// one `ymm` register and each multiply-add is a hardware `vfmaddps`. A
/// baseline x86-64 build cannot emit these (the portable lanes lower to
/// SSE pairs without contraction), so this is where the GEMM's headroom
/// on modern x86 actually lives. FMA changes rounding versus the portable
/// path — permitted because matmul reductions are epsilon-gated, never
/// bitwise-compared; dispatch is cached so every kernel in a process
/// (fused and unfused alike) picks the same variant.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_row_avx2(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    use core::arch::x86_64::*;
    debug_assert_eq!(row.len(), m);
    row.fill(0.0);
    let k = arow.len();
    let bp = b.as_ptr();
    if m > 2 * MATMUL_JW * LANES {
        // Wide outputs: the narrow j-tile below would re-stream the whole
        // B panel once per 8-column strip (m/8 strided traversals). Flip
        // to the axpy form `row += arow[kk] · B[kk, ·]` instead — B is
        // streamed exactly once, contiguously, and the output row (4 B
        // per column) stays L1-resident as the accumulator. Dependent
        // updates to one column are m/8 vector ops apart, so the FMA
        // chain never stalls at these widths.
        for (kk, &av) in arow.iter().enumerate() {
            let avv = _mm256_set1_ps(av);
            let brow = bp.add(kk * m);
            let mut j = 0;
            while j + LANES <= m {
                let acc = _mm256_fmadd_ps(
                    avv,
                    _mm256_loadu_ps(brow.add(j)),
                    _mm256_loadu_ps(row.as_ptr().add(j)),
                );
                _mm256_storeu_ps(row.as_mut_ptr().add(j), acc);
                j += LANES;
            }
            for jj in j..m {
                row[jj] += av * b[kk * m + jj];
            }
        }
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let kend = (k0 + MATMUL_KB).min(k);
        let k4 = (kend - k0) / 4 * 4;
        let mut j0 = 0;
        while j0 + LANES <= m {
            let mut acc0 = _mm256_loadu_ps(row.as_ptr().add(j0));
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut kk = k0;
            while kk < k0 + k4 {
                acc0 = _mm256_fmadd_ps(
                    _mm256_set1_ps(arow[kk]),
                    _mm256_loadu_ps(bp.add(kk * m + j0)),
                    acc0,
                );
                acc1 = _mm256_fmadd_ps(
                    _mm256_set1_ps(arow[kk + 1]),
                    _mm256_loadu_ps(bp.add((kk + 1) * m + j0)),
                    acc1,
                );
                acc2 = _mm256_fmadd_ps(
                    _mm256_set1_ps(arow[kk + 2]),
                    _mm256_loadu_ps(bp.add((kk + 2) * m + j0)),
                    acc2,
                );
                acc3 = _mm256_fmadd_ps(
                    _mm256_set1_ps(arow[kk + 3]),
                    _mm256_loadu_ps(bp.add((kk + 3) * m + j0)),
                    acc3,
                );
                kk += 4;
            }
            for (kr, &av) in arow.iter().enumerate().take(kend).skip(k0 + k4) {
                acc0 = _mm256_fmadd_ps(
                    _mm256_set1_ps(av),
                    _mm256_loadu_ps(bp.add(kr * m + j0)),
                    acc0,
                );
            }
            _mm256_storeu_ps(
                row.as_mut_ptr().add(j0),
                _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)),
            );
            j0 += LANES;
        }
        if j0 < m {
            for (kk, &av) in arow[k0..kend].iter().enumerate() {
                let brow = &b[(k0 + kk) * m..(k0 + kk + 1) * m];
                for (x, &bv) in row[j0..].iter_mut().zip(&brow[j0..]) {
                    *x += av * bv;
                }
            }
        }
        k0 = kend;
    }
}

/// Single-row GEMM `row = arow · B` (B row-major with `m` columns),
/// dispatching to the same microkernel [`Tensor::matmul`] uses for each of
/// its rows — SIMD unless `STGRAPH_NO_SIMD` is set. Exposed so fused
/// kernels elsewhere in the workspace (seastar's aggregate-into-GEMM) can
/// produce bitwise-identical results to an unfused matmul.
pub fn gemm_row(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    if simd::enabled() {
        matmul_row_simd(row, arow, b, m)
    } else {
        matmul_row(row, arow, b, m)
    }
}

/// The scalar row microkernel behind [`gemm_row`], exposed for direct
/// SIMD-vs-scalar comparison in tests and benches.
pub fn gemm_row_scalar(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    matmul_row(row, arow, b, m)
}

/// The SIMD row microkernel behind [`gemm_row`], exposed for direct
/// SIMD-vs-scalar comparison in tests and benches.
pub fn gemm_row_simd(row: &mut [f32], arow: &[f32], b: &[f32], m: usize) {
    matmul_row_simd(row, arow, b, m)
}

/// Reinterprets a mutable f32 slice as atomics for lock-free scatter adds.
///
/// Safety: `AtomicU32` has the same size/alignment as `f32`, the slice is
/// exclusively borrowed for the lifetime of the returned view, and all
/// accesses go through atomic operations.
pub fn as_atomic_f32(s: &mut [f32]) -> &[AtomicU32] {
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const AtomicU32, s.len()) }
}

/// CAS-loop float add, the CPU analogue of CUDA's `atomicAdd(float*)`.
pub fn atomic_add_f32(slot: &AtomicU32, v: f32) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + v).to_bits();
        match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors() {
        let z = Tensor::zeros((2, 3));
        assert_eq!(z.shape(), Shape::Mat(2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert_eq!(Tensor::ones(4).data(), &[1.0; 4]);
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
        let t = Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec((2, 2), vec![1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(3, vec![1.0, -2.0, 3.0]);
        let b = Tensor::from_vec(3, vec![4.0, 5.0, -6.0]);
        assert_eq!(a.add(&b).to_vec(), vec![5.0, 3.0, -3.0]);
        assert_eq!(a.sub(&b).to_vec(), vec![-3.0, -7.0, 9.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![4.0, -10.0, -18.0]);
        assert_eq!(a.neg().to_vec(), vec![-1.0, 2.0, -3.0]);
        assert_eq!(a.relu().to_vec(), vec![1.0, 0.0, 3.0]);
        assert_eq!(a.leaky_relu(0.1).to_vec(), vec![1.0, -0.2, 3.0]);
        assert_eq!(a.mul_scalar(2.0).to_vec(), vec![2.0, -4.0, 6.0]);
        assert_eq!(a.clamp(-1.0, 1.0).to_vec(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn sigmoid_tanh_values() {
        let a = Tensor::from_vec(2, vec![0.0, 1.0]);
        let s = a.sigmoid().to_vec();
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!((s[1] - 0.731_058_6).abs() < 1e-5);
        let t = a.tanh().to_vec();
        assert!((t[0]).abs() < 1e-6);
        assert!((t[1] - 0.761_594_2).abs() < 1e-5);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec((2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec((3, 2), vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_when_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 70;
        let a = Tensor::rand_uniform((n, n), -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform((n, n), -1.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        // Naive triple loop reference.
        let (av, bv) = (a.data(), b.data());
        for i in [0usize, 13, 37, 69] {
            for j in [0usize, 7, 42, 69] {
                let mut s = 0.0;
                for k in 0..n {
                    s += av[i * n + k] * bv[k * n + j];
                }
                assert!((c.at(i, j) - s).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Tensor::rand_uniform((5, 9), -1.0, 1.0, &mut rng);
        let t = a.transpose();
        assert_eq!(t.shape(), Shape::Mat(9, 5));
        assert_eq!(t.at(3, 2), a.at(2, 3));
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn broadcasts() {
        let a = Tensor::from_vec((2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bias = Tensor::from_vec(3, vec![10.0, 20.0, 30.0]);
        assert_eq!(
            a.add_bias(&bias).to_vec(),
            vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]
        );
        let s = Tensor::from_vec(2, vec![2.0, -1.0]);
        assert_eq!(
            a.scale_rows(&s).to_vec(),
            vec![2.0, 4.0, 6.0, -4.0, -5.0, -6.0]
        );
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum().item(), 10.0);
        assert_eq!(a.mean().item(), 2.5);
        assert_eq!(a.sum_axis0().to_vec(), vec![4.0, 6.0]);
        assert_eq!(a.sum_axis1().to_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn concat_and_slice() {
        let a = Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec((2, 1), vec![9.0, 8.0]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
        assert_eq!(c.slice_cols(2, 3).to_vec(), vec![9.0, 8.0]);
        assert_eq!(c.slice_cols(0, 2).to_vec(), a.to_vec());
    }

    #[test]
    fn gather_scatter_inverse_relationship() {
        let x = Tensor::from_vec((3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = [2u32, 0, 2];
        let g = x.gather_rows(&idx);
        assert_eq!(g.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.scatter_add_rows(&idx, 3);
        // Row 2 was gathered twice so it doubles; row 1 was never touched.
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn scatter_add_parallel_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ne = 5000;
        let n = 64;
        let m = 4;
        let idx: Vec<u32> = (0..ne).map(|_| rng.gen_range(0..n as u32)).collect();
        let x = Tensor::rand_uniform((ne, m), -1.0, 1.0, &mut rng);
        let par = x.scatter_add_rows(&idx, n);
        let mut seq = vec![0.0f32; n * m];
        for e in 0..ne {
            for j in 0..m {
                seq[idx[e] as usize * m + j] += x.at(e, j);
            }
        }
        for (p, s) in par.data().iter().zip(&seq) {
            assert!((p - s).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_col_repeats() {
        let a = Tensor::from_vec((3, 1), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            a.broadcast_col(3).to_vec(),
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.reshape(4);
        assert_eq!(b.shape(), Shape::Vec(4));
        assert_eq!(b.to_vec(), a.to_vec());
    }
}
