//! Property-based testing of the SIMD microkernel layer: random shapes
//! and values, then assert
//!
//! 1. every [`F32x8`] lane op is *bitwise* identical to the scalar IEEE
//!    op it claims to be (the contract that lets elementwise kernels skip
//!    epsilon tolerances entirely);
//! 2. the SIMD GEMM row microkernel matches its scalar twin within a
//!    reduction-reassociation epsilon, and both match an f64 reference;
//! 3. the i8 per-row-absmax quantized matmul stays inside the analytic
//!    rounding bound `k · max|x| · max|w| / 127` against the f32 product.

use proptest::prelude::*;
use stgraph_tensor::simd::{F32x8, LANES};
use stgraph_tensor::tensor::{gemm_row_scalar, gemm_row_simd};
use stgraph_tensor::{quant, Tensor};

fn lane_inputs() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f32>)> {
    let v = || prop::collection::vec(-1e3f32..1e3, LANES);
    (v(), v(), v())
}

/// A ternary scalar reference op: `(x, y, z) -> result`.
type ScalarOp = fn(f32, f32, f32) -> f32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each lane of every F32x8 op computes exactly the scalar op — no
    /// hardware FMA contraction, no reassociation, bit-for-bit.
    #[test]
    fn lane_ops_are_bitwise_scalar((a, b, c) in lane_inputs()) {
        let (va, vb, vc) = (F32x8::load(&a), F32x8::load(&b), F32x8::load(&c));
        let cases: [(&str, F32x8, ScalarOp); 7] = [
            ("add", va.add(vb), |x, y, _| x + y),
            ("sub", va.sub(vb), |x, y, _| x - y),
            ("mul", va.mul(vb), |x, y, _| x * y),
            ("div", va.div(vb), |x, y, _| x / y),
            ("max", va.max(vb), |x, y, _| x.max(y)),
            ("min", va.min(vb), |x, y, _| x.min(y)),
            ("mul_add", va.mul_add(vb, vc), |x, y, z| x * y + z),
        ];
        for (name, got, scalar) in cases {
            let mut out = [0f32; LANES];
            got.store(&mut out);
            for l in 0..LANES {
                let want = scalar(a[l], b[l], c[l]);
                prop_assert_eq!(
                    out[l].to_bits(), want.to_bits(),
                    "{} lane {}: {} vs {}", name, l, out[l], want
                );
            }
        }
    }

    /// SIMD and scalar GEMM rows agree within the multi-accumulator
    /// reassociation epsilon, and both track an f64 reference dot.
    #[test]
    fn gemm_row_simd_matches_scalar(
        k in 1usize..48,
        m in 1usize..24,
        seed in prop::collection::vec(-2f32..2.0, 48 + 48 * 24),
    ) {
        let arow: Vec<f32> = seed[..k].to_vec();
        let b: Vec<f32> = seed[48..48 + k * m].to_vec();
        let mut fast = vec![f32::NAN; m];
        let mut slow = vec![f32::NAN; m];
        gemm_row_simd(&mut fast, &arow, &b, m);
        gemm_row_scalar(&mut slow, &arow, &b, m);
        for j in 0..m {
            let exact: f64 = (0..k).map(|l| arow[l] as f64 * b[l * m + j] as f64).sum();
            let tol = 1e-4 * (1.0 + exact.abs());
            prop_assert!(
                ((fast[j] as f64) - exact).abs() <= tol,
                "simd col {}: {} vs f64 {}", j, fast[j], exact
            );
            prop_assert!(
                ((slow[j] as f64) - exact).abs() <= tol,
                "scalar col {}: {} vs f64 {}", j, slow[j], exact
            );
            prop_assert!(
                (fast[j] - slow[j]).abs() as f64 <= tol,
                "simd vs scalar col {}: {} vs {}", j, fast[j], slow[j]
            );
        }
    }

    /// The quantized matmul's worst element error stays inside the
    /// analytic i8 rounding bound (half-ulp per factor, k products):
    /// `|q − f| ≤ k · max|x| · max|w| / 127` with a small slack term.
    #[test]
    fn quantized_matmul_within_analytic_bound(
        n in 1usize..6,
        k in 1usize..32,
        m in 1usize..12,
        seed in prop::collection::vec(-3f32..3.0, 6 * 32 + 32 * 12),
    ) {
        let x = Tensor::from_vec((n, k), seed[..n * k].to_vec());
        let w = Tensor::from_vec((k, m), seed[6 * 32..6 * 32 + k * m].to_vec());
        let exact = x.matmul(&w);
        let q = quant::quantized_matmul(&x, &w);
        let absmax = |t: &Tensor| t.data().iter().fold(0f32, |a, v| a.max(v.abs()));
        let bound = 1.05 * k as f32 * absmax(&x) * absmax(&w) / 127.0 + 1e-6;
        for (qv, fv) in q.data().iter().zip(exact.data()) {
            prop_assert!(
                (qv - fv).abs() <= bound,
                "|{} - {}| > bound {}", qv, fv, bound
            );
        }
    }
}
