//! Fault plans: per-site rules deciding, deterministically, which hits of
//! a fault point fail, stall, or pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// An injected failure, carrying where and when it fired. This is the
/// error type every [`fault_point!`](crate::fault_point) site returns;
/// recovery layers wrap it in their own typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The fault-point name that fired.
    pub site: &'static str,
    /// The 1-based hit count at which it fired.
    pub hit: u64,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for FaultError {}

/// The injection rule for one fault-point site. All conditions are
/// evaluated per *hit* (the site's monotone invocation count); any one
/// matching makes the hit fail. `delay_us` stalls every hit, failing or
/// not — injected latency models slow I/O and contended locks.
#[derive(Debug, Default)]
pub struct SiteRule {
    /// Fail exactly the n-th hit (1-based).
    pub nth: Option<u64>,
    /// Fail every k-th hit (hits k, 2k, 3k, ...).
    pub every: Option<u64>,
    /// Fail each hit with this probability, drawn from the plan's seeded
    /// counter-based generator — deterministic for a given (seed, site,
    /// hit) triple.
    pub prob: Option<f64>,
    /// Sleep this many microseconds at every hit.
    pub delay_us: Option<u64>,
    hits: AtomicU64,
}

impl SiteRule {
    fn is_noop(&self) -> bool {
        self.nth.is_none() && self.every.is_none() && self.prob.is_none() && self.delay_us.is_none()
    }
}

/// What [`FaultPlan::decide`] resolved one hit to.
pub(crate) struct Decision {
    pub(crate) fail: Option<FaultError>,
    pub(crate) delay: Option<Duration>,
}

/// A malformed `STGRAPH_FAULTS` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending entry and what was wrong with it.
    pub message: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanParseError {}

/// A seeded, deterministic map from fault-point sites to [`SiteRule`]s.
/// Hit counters live inside the plan, so installing a fresh plan resets
/// every site's count — each test starts from hit 1.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: HashMap<&'static str, SiteRule>,
    /// Rules parsed from the environment (owned names).
    env_rules: HashMap<String, SiteRule>,
}

impl FaultPlan {
    /// An empty plan (every site passes).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sets the seed for probabilistic rules.
    pub fn seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Fails exactly the `n`-th hit (1-based) of `site`.
    pub fn fail_nth(mut self, site: &'static str, n: u64) -> FaultPlan {
        self.rule_mut(site).nth = Some(n.max(1));
        self
    }

    /// Fails every `k`-th hit of `site`.
    pub fn fail_every(mut self, site: &'static str, k: u64) -> FaultPlan {
        self.rule_mut(site).every = Some(k.max(1));
        self
    }

    /// Fails each hit of `site` with probability `p` (seeded).
    pub fn fail_prob(mut self, site: &'static str, p: f64) -> FaultPlan {
        self.rule_mut(site).prob = Some(p.clamp(0.0, 1.0));
        self
    }

    /// Sleeps `us` microseconds at every hit of `site`.
    pub fn delay(mut self, site: &'static str, us: u64) -> FaultPlan {
        self.rule_mut(site).delay_us = Some(us);
        self
    }

    fn rule_mut(&mut self, site: &'static str) -> &mut SiteRule {
        self.rules.entry(site).or_default()
    }

    /// Parses the `STGRAPH_FAULTS` syntax: comma-separated entries, each
    /// `seed=N` or `site:key=val[;key=val...]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed.parse().map_err(|_| PlanParseError {
                    message: format!("seed '{seed}' is not an integer"),
                })?;
                continue;
            }
            let (site, body) = entry.split_once(':').ok_or_else(|| PlanParseError {
                message: format!("entry '{entry}' is neither seed=N nor site:key=val"),
            })?;
            let rule = plan.env_rules.entry(site.to_string()).or_default();
            for kv in body.split(';').map(str::trim).filter(|e| !e.is_empty()) {
                let (key, val) = kv.split_once('=').ok_or_else(|| PlanParseError {
                    message: format!("'{kv}' in '{entry}' is not key=val"),
                })?;
                let parse_u64 = |v: &str| {
                    v.parse::<u64>().map_err(|_| PlanParseError {
                        message: format!("'{val}' for '{key}' in '{entry}' is not an integer"),
                    })
                };
                match key {
                    "nth" => rule.nth = Some(parse_u64(val)?.max(1)),
                    "every" => rule.every = Some(parse_u64(val)?.max(1)),
                    "delay_us" => rule.delay_us = Some(parse_u64(val)?),
                    "prob" => {
                        let p: f64 = val.parse().map_err(|_| PlanParseError {
                            message: format!("'{val}' for prob in '{entry}' is not a number"),
                        })?;
                        rule.prob = Some(p.clamp(0.0, 1.0));
                    }
                    other => {
                        return Err(PlanParseError {
                            message: format!("unknown key '{other}' in '{entry}'"),
                        })
                    }
                }
            }
            if rule.is_noop() {
                return Err(PlanParseError {
                    message: format!("entry '{entry}' configures nothing"),
                });
            }
        }
        Ok(plan)
    }

    fn rule_for(&self, site: &str) -> Option<&SiteRule> {
        self.rules.get(site).or_else(|| self.env_rules.get(site))
    }

    /// Resolves one hit of `site` against this plan. Bumps the site's hit
    /// counter whether or not anything fires, so `nth`/`every` count real
    /// invocations.
    pub(crate) fn decide(&self, site: &'static str) -> Decision {
        let Some(rule) = self.rule_for(site) else {
            return Decision {
                fail: None,
                delay: None,
            };
        };
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fail = false;
        if let Some(n) = rule.nth {
            fail |= hit == n;
        }
        if let Some(k) = rule.every {
            fail |= hit % k == 0;
        }
        if let Some(p) = rule.prob {
            fail |= unit_draw(self.seed, site, hit) < p;
        }
        Decision {
            fail: fail.then_some(FaultError { site, hit }),
            delay: rule.delay_us.map(Duration::from_micros),
        }
    }
}

/// Deterministic uniform draw in `[0, 1)` from a (seed, site, hit) triple:
/// FNV-1a over the site name mixed with the hit counter, finished with
/// splitmix64. Counter-based, so concurrent sites never perturb each
/// other's sequences.
fn unit_draw(seed: u64, site: &str, hit: u64) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mixed = splitmix64(seed ^ h ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Top 53 bits → uniform f64 in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_site() {
        let plan = FaultPlan::parse("ingest.apply:every=7").unwrap();
        let rule = plan.env_rules.get("ingest.apply").unwrap();
        assert_eq!(rule.every, Some(7));
        assert_eq!(rule.nth, None);
    }

    #[test]
    fn parse_multi_site_with_seed() {
        let plan = FaultPlan::parse(
            "checkpoint.write:nth=2,engine.dequeue:delay_us=500;prob=0.25,seed=42",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.env_rules.get("checkpoint.write").unwrap().nth, Some(2));
        let dq = plan.env_rules.get("engine.dequeue").unwrap();
        assert_eq!(dq.delay_us, Some(500));
        assert_eq!(dq.prob, Some(0.25));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("justasite").is_err());
        assert!(FaultPlan::parse("site:novalue").is_err());
        assert!(FaultPlan::parse("site:bogus=1").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("site:nth=x").is_err());
        assert!(FaultPlan::parse("site:").is_err(), "empty rule");
    }

    #[test]
    fn parse_ignores_empty_entries() {
        let plan = FaultPlan::parse("a.b:nth=1,, c.d:every=2 ,").unwrap();
        assert_eq!(plan.env_rules.len(), 2);
    }

    #[test]
    fn unit_draw_is_deterministic_and_uniformish() {
        let a = unit_draw(1, "x", 1);
        assert_eq!(a, unit_draw(1, "x", 1));
        assert_ne!(a, unit_draw(2, "x", 1));
        assert_ne!(a, unit_draw(1, "y", 1));
        assert_ne!(a, unit_draw(1, "x", 2));
        let n = 4096;
        let mean: f64 = (0..n).map(|i| unit_draw(9, "m", i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn decide_counts_hits_per_site() {
        let plan = FaultPlan::new().fail_nth("a", 2).fail_nth("b", 1);
        assert!(plan.decide("a").fail.is_none());
        assert!(plan.decide("b").fail.is_some(), "b's counter is separate");
        assert!(plan.decide("a").fail.is_some(), "a fails on its 2nd hit");
    }
}
