//! # stgraph-faultline
//!
//! Deterministic fault injection and recovery primitives for the STGraph
//! serving stack. Production TGNN systems must survive torn checkpoint
//! writes, ingest batches that die mid-GPMA-update, and allocator failures
//! under load — and the only way to *prove* they do is to inject those
//! failures deterministically and assert on the recovery path. This crate
//! provides the three pieces every such proof needs:
//!
//! * **Fault points** — [`fault_point!`] marks a failable operation by
//!   name (`"checkpoint.write"`, `"ingest.apply"`, ...). When injection is
//!   disabled the macro is a single relaxed atomic load, exactly
//!   mirroring `stgraph-telemetry`'s tracing gate, so production binaries
//!   pay nothing for carrying the sites. When enabled, the process-wide
//!   [`FaultPlan`] decides per site and per hit whether to fail, how long
//!   to stall, or both.
//! * **Fault plans** — [`FaultPlan`] maps site names to [`SiteRule`]s:
//!   fail the n-th hit, fail every k-th hit, fail with a seeded
//!   probability (deterministic for a given seed — reruns reproduce the
//!   exact failure sequence), and/or inject latency. Plans come from the
//!   `STGRAPH_FAULTS` environment variable or programmatically via
//!   [`set_plan`].
//! * **Retry** — [`retry`] with a [`RetryPolicy`] (exponential backoff,
//!   capped) is the shared recovery loop for ingest application and
//!   checkpoint writes; every attempt after the first bumps the
//!   `faults.retries` telemetry counter so recovery activity is visible
//!   in the Prometheus exposition.
//!
//! ## `STGRAPH_FAULTS` syntax
//!
//! Comma-separated entries; each is either `seed=N` or
//! `site:key=val[;key=val...]`:
//!
//! ```text
//! STGRAPH_FAULTS="ingest.apply:every=7"
//! STGRAPH_FAULTS="checkpoint.write:nth=2,engine.dequeue:delay_us=500,seed=42"
//! STGRAPH_FAULTS="gpma.update:prob=0.1;delay_us=100,seed=7"
//! ```
//!
//! Keys: `nth` (fail exactly the n-th hit, 1-based), `every` (fail every
//! k-th hit), `prob` (fail each hit with probability `p`, seeded),
//! `delay_us` (sleep this long at every hit, failing or not).
//!
//! ## Site roster
//!
//! The workspace currently carries thirteen sites: `checkpoint.write`,
//! `checkpoint.rename`, `gpma.update`, `ingest.apply`, `snapshot.build`,
//! `pool.alloc`, `engine.dequeue`, `net.accept`, `net.read`,
//! `shard.exchange`, `tcsr.append`, and the train-while-serving pair
//! `online.step` (fires after the optimizer applies, forcing an exact
//! bitwise rollback of the half-applied gradient step) and
//! `online.publish` (fires before the atomic weight-generation swap, so
//! readers never observe a partial publish). Every site's recovery path
//! calls [`note_rollback`] so the `faults.rollbacks` counter audits it.

#![warn(missing_docs)]

mod plan;
mod retry;

pub use plan::{FaultError, FaultPlan, PlanParseError, SiteRule};
pub use retry::{retry, RetryPolicy};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

static PLAN: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();

fn plan_cell() -> &'static Mutex<Option<FaultPlan>> {
    PLAN.get_or_init(|| Mutex::new(None))
}

/// True when fault injection is armed. After the first call this is
/// exactly one relaxed atomic load — the disabled-path cost every
/// [`fault_point!`] site pays.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let plan = std::env::var("STGRAPH_FAULTS")
        .ok()
        .filter(|v| !v.is_empty())
        .and_then(|v| match FaultPlan::parse(&v) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("STGRAPH_FAULTS ignored: {e}");
                None
            }
        });
    let on = plan.is_some();
    if on {
        *plan_cell().lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Installs `plan` as the process-wide fault plan and arms injection.
/// Overrides whatever `STGRAPH_FAULTS` configured.
pub fn set_plan(plan: FaultPlan) {
    *plan_cell().lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Removes any programmatic plan and re-derives state from
/// `STGRAPH_FAULTS` (with fresh hit counters), so tests that install plans
/// coexist with an environment-driven run of the whole suite.
pub fn clear_plan() {
    *plan_cell().lock().unwrap_or_else(|e| e.into_inner()) = None;
    STATE.store(STATE_UNSET, Ordering::Relaxed);
}

/// Slow path behind [`fault_point!`]: consults the installed plan for
/// `site`. Called only when [`enabled`] is true; sites with no rule are
/// `Ok(())`.
pub fn check_slow(site: &'static str) -> Result<(), FaultError> {
    let decision = {
        let guard = plan_cell().lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(plan) => plan.decide(site),
            None => return Ok(()),
        }
    };
    // Sleep outside the plan lock so injected latency never serialises
    // unrelated sites.
    if let Some(delay) = decision.delay {
        counters().delays.inc();
        std::thread::sleep(delay);
    }
    match decision.fail {
        Some(err) => {
            counters().injected.inc();
            Err(err)
        }
        None => Ok(()),
    }
}

/// Marks a failable operation. Expands to `Result<(), FaultError>`: when
/// injection is disabled the expansion is one relaxed atomic load and an
/// `Ok(())`; when enabled the process-wide [`FaultPlan`] decides.
///
/// ```
/// fn write_block() -> Result<(), stgraph_faultline::FaultError> {
///     stgraph_faultline::fault_point!("example.write")?;
///     // ... the real write ...
///     Ok(())
/// }
/// assert!(write_block().is_ok());
/// ```
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        if $crate::enabled() {
            $crate::check_slow($site)
        } else {
            ::core::result::Result::Ok(())
        }
    };
}

/// Cached handles to the resilience telemetry counters.
pub(crate) struct FaultCounters {
    pub(crate) injected: stgraph_telemetry::Counter,
    pub(crate) delays: stgraph_telemetry::Counter,
    pub(crate) retries: stgraph_telemetry::Counter,
    pub(crate) rollbacks: stgraph_telemetry::Counter,
}

pub(crate) fn counters() -> &'static FaultCounters {
    static CELL: OnceLock<FaultCounters> = OnceLock::new();
    CELL.get_or_init(|| FaultCounters {
        injected: stgraph_telemetry::counter("faults.injected"),
        delays: stgraph_telemetry::counter("faults.delays"),
        retries: stgraph_telemetry::counter("faults.retries"),
        rollbacks: stgraph_telemetry::counter("faults.rollbacks"),
    })
}

/// Total faults injected process-wide (the `faults.injected` counter).
pub fn injected_count() -> u64 {
    counters().injected.get()
}

/// Total retry attempts process-wide (the `faults.retries` counter).
pub fn retry_count() -> u64 {
    counters().retries.get()
}

/// Total rollbacks process-wide (the `faults.rollbacks` counter). Bumped
/// by recovery code (ingest rollback, checkpoint-manager fallback) via
/// [`note_rollback`].
pub fn rollback_count() -> u64 {
    counters().rollbacks.get()
}

/// Records one rollback on the shared `faults.rollbacks` counter.
pub fn note_rollback() {
    counters().rollbacks.inc();
}

/// Serialises tests (including downstream integration tests) that install
/// process-global fault plans. Hold the guard for the whole test body.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn disabled_sites_are_ok_and_free() {
        let _g = test_lock();
        clear_plan();
        // No STGRAPH_FAULTS in the test environment: stays disabled.
        if std::env::var("STGRAPH_FAULTS").is_ok() {
            return; // suite is running under an env plan; skip
        }
        assert!(!enabled());
        for _ in 0..100 {
            assert!(fault_point!("test.site").is_ok());
        }
    }

    #[test]
    fn nth_fails_exactly_once() {
        let _g = test_lock();
        set_plan(FaultPlan::new().fail_nth("test.nth", 3));
        let results: Vec<bool> = (0..6).map(|_| fault_point!("test.nth").is_ok()).collect();
        assert_eq!(results, [true, true, false, true, true, true]);
        clear_plan();
    }

    #[test]
    fn every_k_fails_periodically() {
        let _g = test_lock();
        set_plan(FaultPlan::new().fail_every("test.every", 3));
        let fails = (0..9)
            .filter(|_| fault_point!("test.every").is_err())
            .count();
        assert_eq!(fails, 3, "hits 3, 6, 9 fail");
        clear_plan();
    }

    #[test]
    fn seeded_prob_is_deterministic() {
        let _g = test_lock();
        let run = |seed| {
            set_plan(FaultPlan::new().seed(seed).fail_prob("test.prob", 0.5));
            let v: Vec<bool> = (0..32).map(|_| fault_point!("test.prob").is_ok()).collect();
            clear_plan();
            v
        };
        assert_eq!(run(7), run(7), "same seed, same failure sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
        let fails = run(7).iter().filter(|ok| !*ok).count();
        assert!((4..=28).contains(&fails), "p=0.5 over 32 hits: got {fails}");
    }

    #[test]
    fn delay_injects_latency_without_failing() {
        let _g = test_lock();
        set_plan(FaultPlan::new().delay("test.delay", 2_000));
        let t0 = Instant::now();
        assert!(fault_point!("test.delay").is_ok());
        assert!(t0.elapsed().as_micros() >= 2_000);
        clear_plan();
    }

    #[test]
    fn unknown_sites_pass_under_any_plan() {
        let _g = test_lock();
        set_plan(FaultPlan::new().fail_every("test.other", 1));
        assert!(fault_point!("test.unknown").is_ok());
        clear_plan();
    }

    #[test]
    fn fault_error_names_site_and_hit() {
        let _g = test_lock();
        set_plan(FaultPlan::new().fail_nth("test.err", 1));
        let err = fault_point!("test.err").unwrap_err();
        assert_eq!(err.site, "test.err");
        assert_eq!(err.hit, 1);
        let text = err.to_string();
        assert!(
            text.contains("test.err") && text.contains("hit 1"),
            "{text}"
        );
        clear_plan();
    }

    #[test]
    fn counters_track_injections() {
        let _g = test_lock();
        let before = injected_count();
        set_plan(FaultPlan::new().fail_every("test.count", 1));
        for _ in 0..5 {
            let _ = fault_point!("test.count");
        }
        assert_eq!(injected_count() - before, 5);
        clear_plan();
    }

    /// The disabled path must stay in the "one relaxed atomic load" cost
    /// class. The bound is deliberately loose (it must hold in debug
    /// builds under CI noise); the chaos-smoke CI job re-runs it in
    /// release where the mean is a few nanoseconds.
    #[test]
    fn disabled_path_overhead() {
        let _g = test_lock();
        clear_plan();
        if std::env::var("STGRAPH_FAULTS").is_ok() {
            return; // enabled via env: overhead claim not applicable
        }
        assert!(!enabled());
        let iters = 1_000_000u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            let r = fault_point!("test.overhead");
            std::hint::black_box(&r);
        }
        let per_call = t0.elapsed().as_nanos() as f64 / iters as f64;
        let bound = if cfg!(debug_assertions) { 500.0 } else { 50.0 };
        assert!(
            per_call < bound,
            "disabled fault_point! cost {per_call:.1}ns/call (bound {bound}ns)"
        );
    }
}
