//! Retry with capped exponential backoff — the shared recovery loop for
//! ingest application and checkpoint writes.

use std::time::Duration;

/// Backoff parameters for [`retry`]. The defaults (5 attempts, 200 µs
/// base, ×2 growth, 10 ms cap) recover from any `every=k` or `nth=n`
/// injected-fault schedule with `k, n ≤ 5` while adding at most a few
/// milliseconds to a worst-case sequence — small enough that running the
/// whole test suite under `STGRAPH_FAULTS` stays fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the second attempt.
    pub base_delay: Duration,
    /// Multiplier applied to the delay after each failed attempt.
    pub factor: u32,
    /// Ceiling on any single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(200),
            factor: 2,
            max_delay: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// The sleep before attempt `attempt + 1` (0-based failed attempt).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let mult = self.factor.saturating_pow(attempt);
        (self.base_delay * mult).min(self.max_delay)
    }
}

/// Runs `op` until it succeeds or `policy.max_attempts` is exhausted,
/// sleeping the policy's backoff between attempts. Every attempt after the
/// first bumps the `faults.retries` telemetry counter. Returns the last
/// error when all attempts fail.
pub fn retry<T, E>(policy: &RetryPolicy, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            crate::counters().retries.inc();
            std::thread::sleep(policy.delay_for(attempt - 1));
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_retrying() {
        let before = crate::retry_count();
        let r: Result<u32, ()> = retry(&RetryPolicy::default(), || Ok(7));
        assert_eq!(r, Ok(7));
        assert_eq!(crate::retry_count(), before, "no retry counted");
    }

    #[test]
    fn retries_until_success() {
        let mut calls = 0;
        let r: Result<u32, &str> = retry(&RetryPolicy::default(), || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r, Ok(3));
    }

    #[test]
    fn gives_up_after_max_attempts_with_last_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(1),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Result<(), u32> = retry(&policy, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(calls, 3);
        assert_eq!(r, Err(3), "last error wins");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_for(0), Duration::from_micros(200));
        assert_eq!(p.delay_for(1), Duration::from_micros(400));
        assert_eq!(p.delay_for(2), Duration::from_micros(800));
        assert_eq!(p.delay_for(30), Duration::from_millis(10), "capped");
    }
}
