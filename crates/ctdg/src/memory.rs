//! TGN-style per-node memory: a learned GRU-flavored state machine over
//! interaction events, plus a fixed cosine time-delta encoding.
//!
//! Each node carries a `dim`-wide memory vector and the timestamp of its
//! last update. When a batch of events arrives, the nodes involved read
//! their memory `h`, build a message `x = [partner_memory ; enc(Δt)]`,
//! and step a GRU: `h' = (1-z)⊙h + z⊙h̃`. Only the GRU weights are
//! trained — the memory store itself is treated as an input (gradients
//! stop at the read, as in TGN's "no backprop through time across
//! batches" regime), which is what makes epoch-boundary resume exact.
//!
//! The whole module — GRU weights *and* the memory/last-update state —
//! implements [`StateDict`], so it checkpoints through `stgraph-serve`'s
//! `.stgc` format like any other model. Timestamps are stored as f32,
//! exact for the synthetic clocks used here (all < 2²⁴).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::{Param, Shape, StateDict, Tape, Tensor, Var};

/// Width of the fixed cosine time-delta encoding.
pub const TIME_ENC_DIM: usize = 8;

/// Shape of a [`TgnMemory`].
#[derive(Debug, Clone, Copy)]
pub struct TgnMemoryConfig {
    /// Nodes tracked.
    pub num_nodes: usize,
    /// Memory width per node.
    pub dim: usize,
    /// Seed for GRU weight init.
    pub seed: u64,
}

/// Per-node memory with a GRU-flavored update rule. See module docs.
pub struct TgnMemory {
    cfg: TgnMemoryConfig,
    /// GRU weights (trained): per gate, an input map `W` over
    /// `[partner ; enc(Δt)]`, a recurrent map `U` over `h`, and a bias.
    weights: ParamSet,
    w_z: Param,
    u_z: Param,
    b_z: Param,
    w_r: Param,
    u_r: Param,
    b_r: Param,
    w_h: Param,
    u_h: Param,
    b_h: Param,
    /// `[num_nodes, dim]` memory state (not trained; committed host-side).
    memory: Param,
    /// `[num_nodes]` last-update timestamps as f32.
    last_update: Param,
    /// Fixed cosine basis frequencies (not learned, not checkpointed).
    freqs: [f32; TIME_ENC_DIM],
}

impl TgnMemory {
    /// A fresh memory: zero state, Glorot-initialised GRU weights drawn
    /// from `cfg.seed`.
    pub fn new(cfg: TgnMemoryConfig) -> TgnMemory {
        assert!(cfg.dim > 0 && cfg.num_nodes > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7a6e_0001);
        let d = cfg.dim;
        let x_dim = d + TIME_ENC_DIM;
        let mut ws = ParamSet::new();
        let mut gate = |name: &str| {
            (
                ws.register(format!("tgn.w_{name}"), Tensor::glorot(x_dim, d, &mut rng)),
                ws.register(format!("tgn.u_{name}"), Tensor::glorot(d, d, &mut rng)),
                ws.register(format!("tgn.b_{name}"), Tensor::zeros(Shape::Vec(d))),
            )
        };
        let (w_z, u_z, b_z) = gate("z");
        let (w_r, u_r, b_r) = gate("r");
        let (w_h, u_h, b_h) = gate("h");
        let mut freqs = [0.0f32; TIME_ENC_DIM];
        for (i, f) in freqs.iter_mut().enumerate() {
            // Geometric ladder from period ~6 up to ~60k time units.
            *f = 1.0 / 10f32.powf(i as f32 * 4.0 / (TIME_ENC_DIM - 1) as f32);
        }
        TgnMemory {
            cfg,
            weights: ws,
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_h,
            u_h,
            b_h,
            memory: Param::new("tgn.memory", Tensor::zeros(Shape::Mat(cfg.num_nodes, d))),
            last_update: Param::new("tgn.last_update", Tensor::zeros(Shape::Vec(cfg.num_nodes))),
            freqs,
        }
    }

    /// Memory width per node.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Nodes tracked.
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes
    }

    /// The trainable GRU weights (what the optimizer steps).
    pub fn weights(&self) -> &ParamSet {
        &self.weights
    }

    /// Zeroes the memory state and last-update clocks (epoch start).
    /// GRU weights are untouched.
    pub fn reset_state(&self) {
        self.memory
            .set_value(Tensor::zeros(Shape::Mat(self.cfg.num_nodes, self.cfg.dim)));
        self.last_update
            .set_value(Tensor::zeros(Shape::Vec(self.cfg.num_nodes)));
    }

    /// Current memory rows for `nodes` (`[len, dim]`, detached).
    pub fn read_rows(&self, nodes: &[u32]) -> Tensor {
        self.memory.value().gather_rows(nodes)
    }

    /// Fixed cosine encoding of per-row time deltas (`[len, TIME_ENC_DIM]`).
    /// Δt for node `i` at event time `t` is `t - last_update[i]`.
    pub fn time_encode(&self, nodes: &[u32], times: &[u64]) -> Tensor {
        assert_eq!(nodes.len(), times.len());
        let last = self.last_update.value();
        let lastd = last.data();
        let mut out = vec![0.0f32; nodes.len() * TIME_ENC_DIM];
        for (row, (&n, &t)) in nodes.iter().zip(times).enumerate() {
            let dt = (t as f32 - lastd[n as usize]).max(0.0);
            for (j, &f) in self.freqs.iter().enumerate() {
                out[row * TIME_ENC_DIM + j] = (dt * f).cos();
            }
        }
        Tensor::from_vec(Shape::Mat(nodes.len(), TIME_ENC_DIM), out)
    }

    /// One GRU step on the tape. `h` is the nodes' current memory
    /// (detached read), `partner` the message content (e.g. the partner
    /// node's memory, or zeros for negative samples), `enc` the time
    /// encoding. Returns `h'`; gradients flow into the GRU weights only.
    pub fn update<'t>(
        &self,
        tape: &'t Tape,
        h: &Var<'t>,
        partner: &Var<'t>,
        enc: &Var<'t>,
    ) -> Var<'t> {
        let x = Var::concat_cols(&[partner, enc]);
        let wz = tape.param(&self.w_z);
        let uz = tape.param(&self.u_z);
        let bz = tape.param(&self.b_z);
        let wr = tape.param(&self.w_r);
        let ur = tape.param(&self.u_r);
        let br = tape.param(&self.b_r);
        let wh = tape.param(&self.w_h);
        let uh = tape.param(&self.u_h);
        let bh = tape.param(&self.b_h);
        let z = x.matmul(&wz).add(&h.matmul(&uz)).add_bias(&bz).sigmoid();
        let r = x.matmul(&wr).add(&h.matmul(&ur)).add_bias(&br).sigmoid();
        let h_tilde = x
            .matmul(&wh)
            .add(&r.mul(h).matmul(&uh))
            .add_bias(&bh)
            .tanh();
        z.one_minus().mul(h).add(&z.mul(&h_tilde))
    }

    /// Writes updated rows back into the store and stamps their clocks.
    /// Duplicate nodes in the batch resolve last-write-wins (= latest
    /// event), matching sequential replay.
    pub fn commit(&self, nodes: &[u32], h_new: &Tensor, times: &[u64]) {
        assert_eq!(h_new.rows(), nodes.len());
        assert_eq!(h_new.cols(), self.cfg.dim);
        let mut mem = self.memory.value().to_vec();
        let mut last = self.last_update.value().to_vec();
        let src = h_new.data();
        let d = self.cfg.dim;
        for (row, (&n, &t)) in nodes.iter().zip(times).enumerate() {
            let n = n as usize;
            mem[n * d..(n + 1) * d].copy_from_slice(&src[row * d..(row + 1) * d]);
            last[n] = t as f32;
        }
        self.memory
            .set_value(Tensor::from_vec(Shape::Mat(self.cfg.num_nodes, d), mem));
        self.last_update
            .set_value(Tensor::from_vec(Shape::Vec(self.cfg.num_nodes), last));
    }
}

impl StateDict for TgnMemory {
    fn parameters(&self) -> Vec<Param> {
        let mut ps: Vec<Param> = self.weights.iter().cloned().collect();
        ps.push(self.memory.clone());
        ps.push(self.last_update.clone());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TgnMemory {
        TgnMemory::new(TgnMemoryConfig {
            num_nodes: 6,
            dim: 4,
            seed: 11,
        })
    }

    #[test]
    fn update_and_commit_change_only_touched_rows() {
        let m = tiny();
        let nodes = [1u32, 3];
        let times = [10u64, 12];
        let tape = Tape::new();
        let h = tape.constant(m.read_rows(&nodes));
        let partner = tape.constant(m.read_rows(&[3, 1]));
        let enc = tape.constant(m.time_encode(&nodes, &times));
        let h2 = m.update(&tape, &h, &partner, &enc);
        m.commit(&nodes, h2.value(), &times);
        let mem = m.memory.value();
        assert!(mem.data()[4..8].iter().any(|&v| v != 0.0));
        assert!(
            mem.data()[0..4].iter().all(|&v| v == 0.0),
            "row 0 untouched"
        );
        assert_eq!(m.last_update.value().data()[3], 12.0);
        m.reset_state();
        assert!(m.memory.value().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn state_dict_roundtrips_weights_and_memory() {
        let a = tiny();
        let nodes = [0u32, 5];
        let times = [7u64, 9];
        let tape = Tape::new();
        let h = tape.constant(a.read_rows(&nodes));
        let p = tape.constant(a.read_rows(&[5, 0]));
        let enc = tape.constant(a.time_encode(&nodes, &times));
        let h2 = a.update(&tape, &h, &p, &enc);
        a.commit(&nodes, h2.value(), &times);

        let dict = a.to_state_dict();
        let b = TgnMemory::new(TgnMemoryConfig {
            num_nodes: 6,
            dim: 4,
            seed: 999, // different init — must be overwritten
        });
        b.try_load_state_dict(&dict).unwrap();
        for (pa, pb) in a.parameters().iter().zip(b.parameters()) {
            assert_eq!(pa.name(), pb.name());
            assert_eq!(pa.value().to_vec(), pb.value().to_vec(), "{}", pa.name());
        }
    }

    #[test]
    fn gru_step_is_deterministic_and_learns_gradients() {
        let m = tiny();
        let nodes = [2u32];
        let times = [5u64];
        let tape = Tape::new();
        let h = tape.constant(m.read_rows(&nodes));
        let p = tape.constant(m.read_rows(&[4]));
        let enc = tape.constant(m.time_encode(&nodes, &times));
        let out = m.update(&tape, &h, &p, &enc);
        let loss = out.square().sum();
        tape.backward(&loss);
        let total_grad: f32 = m
            .weights()
            .iter()
            .map(|pm| pm.grad().data().iter().map(|g| g.abs()).sum::<f32>())
            .sum();
        assert!(total_grad > 0.0, "GRU weights must receive gradient");
    }
}
