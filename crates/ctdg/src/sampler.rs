//! Deterministic, seeded temporal neighbor sampling over the T-CSR —
//! the new hot path this workload family opens.
//!
//! A query is `(node, t)`: "give me up to *k* of this node's interactions
//! strictly before *t*". Two strategies, per TGL:
//!
//! * **Recent** — the true *k* most-recent such interactions, emitted
//!   oldest-first. Pure index arithmetic on the time-sorted adjacency: a
//!   binary search for the horizon, then the tail window. No RNG.
//! * **Uniform** — *k* distinct interactions uniform over everything
//!   before *t*, via Floyd's algorithm, emitted in time order. RNG is
//!   derived *per query* from `(seed, query index)` with a splitmix64
//!   scramble, so results are independent of thread schedule and batch
//!   partitioning — the parallel sampler is bitwise reproducible.
//!
//! Output is a padded `q × k` struct-of-arrays batch with an f32 validity
//! mask and per-slot mean-aggregation weights (`mask / count`), shaped to
//! feed the tensor stack directly: gather rows with
//! [`NeighborSample::nbrs`], scale with [`NeighborSample::weights`],
//! scatter-add with [`NeighborSample::scatter_idx`]. The f32 planes are
//! allocated through `stgraph-tensor`'s tracked buffers, so a surrounding
//! [`PoolScope`](stgraph_tensor::PoolScope) (the train loop and bench hold
//! one) recycles them across batches instead of hitting the allocator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use stgraph_tensor::mem::TrackedBuf;
use stgraph_tensor::{Shape, Tensor};

use crate::TCsr;

/// Which temporal neighbors a query draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The k most-recent interactions before the query time.
    Recent,
    /// k distinct interactions uniform over all before the query time.
    Uniform,
}

impl Strategy {
    /// Stable lowercase name (CLI flags, bench report keys).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Recent => "recent",
            Strategy::Uniform => "uniform",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "recent" => Ok(Strategy::Recent),
            "uniform" => Ok(Strategy::Uniform),
            other => Err(format!("unknown strategy '{other}' (recent|uniform)")),
        }
    }
}

/// Seeded sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Neighbors per query (slots; queries with fewer valid neighbors pad).
    pub k: usize,
    /// Sampling strategy.
    pub strategy: Strategy,
    /// Base seed; combined with the query index per draw.
    pub seed: u64,
}

/// A sampled `q × k` neighbor batch (see module docs for the layout).
#[derive(Clone)]
pub struct NeighborSample {
    /// Slots per query.
    pub k: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Sampled neighbor per slot (`q*k`; padding slots hold node 0 and are
    /// masked out).
    pub nbrs: Vec<u32>,
    /// Interaction timestamp per slot (`q*k`).
    pub times: Vec<u64>,
    /// Event id per slot (`q*k`).
    pub eids: Vec<u64>,
    /// 1.0 for a valid slot, 0.0 for padding (`[q*k]`, pool-allocated).
    pub mask: Tensor,
    /// `mask / valid_count(query)` — mean-aggregation weights (`[q*k]`,
    /// pool-allocated; all-zero for queries with no history).
    pub weights: Tensor,
    /// Valid neighbors per query (`q`).
    pub counts: Vec<u32>,
}

impl PartialEq for NeighborSample {
    fn eq(&self, other: &NeighborSample) -> bool {
        self.k == other.k
            && self.queries == other.queries
            && self.nbrs == other.nbrs
            && self.times == other.times
            && self.eids == other.eids
            && self.counts == other.counts
            && self.mask.data() == other.mask.data()
            && self.weights.data() == other.weights.data()
    }
}

impl std::fmt::Debug for NeighborSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborSample")
            .field("k", &self.k)
            .field("queries", &self.queries)
            .field("nbrs", &self.nbrs)
            .field("times", &self.times)
            .field("counts", &self.counts)
            .finish_non_exhaustive()
    }
}

impl NeighborSample {
    /// Row index (into a `q`-row output) for each of the `q*k` slots —
    /// the scatter-add map that folds slot rows back onto their query.
    pub fn scatter_idx(&self) -> Vec<u32> {
        let mut idx = Vec::with_capacity(self.queries * self.k);
        for q in 0..self.queries as u32 {
            idx.extend(std::iter::repeat_n(q, self.k));
        }
        idx
    }

    /// Total valid (non-padding) slots.
    pub fn total_valid(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }
}

/// splitmix64 — decorrelates consecutive query indices into independent
/// RNG seeds.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One query's slots, borrowed disjointly from the batch output.
struct Slot<'a> {
    node: u32,
    t: u64,
    qi: usize,
    nbr: &'a mut [u32],
    times: &'a mut [u64],
    eid: &'a mut [u64],
    mask: &'a mut [f32],
    weights: &'a mut [f32],
    count: &'a mut u32,
}

fn sample_one(index: &TCsr, cfg: &SamplerConfig, s: &mut Slot<'_>) {
    let k = cfg.k;
    let horizon = index.degree_before(s.node, s.t);
    let take = horizon.min(k);
    // Choose `take` history indices, ascending (= time order).
    let chosen: Vec<usize> = match cfg.strategy {
        Strategy::Recent => (horizon - take..horizon).collect(),
        Strategy::Uniform => {
            if take == horizon {
                (0..horizon).collect()
            } else {
                // Floyd's algorithm: `take` distinct draws from 0..horizon.
                let mut rng =
                    ChaCha8Rng::seed_from_u64(splitmix64(cfg.seed ^ (s.qi as u64).rotate_left(17)));
                let mut picked: Vec<usize> = Vec::with_capacity(take);
                for j in horizon - take..horizon {
                    let r = rng.gen_range(0..=j);
                    if picked.contains(&r) {
                        picked.push(j);
                    } else {
                        picked.push(r);
                    }
                }
                picked.sort_unstable();
                picked
            }
        }
    };
    *s.count = chosen.len() as u32;
    let w = if chosen.is_empty() {
        0.0
    } else {
        1.0 / chosen.len() as f32
    };
    for (slot, &hist_i) in chosen.iter().enumerate() {
        let (nbr, t, eid) = index.entry(s.node, hist_i);
        debug_assert!(t < s.t, "sampled neighbor must predate the query");
        s.nbr[slot] = nbr;
        s.times[slot] = t;
        s.eid[slot] = eid;
        s.mask[slot] = 1.0;
        s.weights[slot] = w;
    }
    for slot in chosen.len()..k {
        s.nbr[slot] = 0;
        s.times[slot] = 0;
        s.eid[slot] = 0;
        s.mask[slot] = 0.0;
        s.weights[slot] = 0.0;
    }
}

/// Samples temporal neighbors for a batch of `(node, t)` queries,
/// parallelized over the batch. Deterministic for a fixed config: the
/// output is a pure function of `(index, queries, cfg)`.
pub fn sample(index: &TCsr, queries: &[(u32, u64)], cfg: &SamplerConfig) -> NeighborSample {
    assert!(cfg.k > 0, "k must be positive");
    let _sp = stgraph_telemetry::span_cat("ctdg.sample", "ctdg");
    let q = queries.len();
    let k = cfg.k;
    let mut nbrs = vec![0u32; q * k];
    let mut times = vec![0u64; q * k];
    let mut eids = vec![0u64; q * k];
    let mut mask = TrackedBuf::raw(q * k);
    let mut weights = TrackedBuf::raw(q * k);
    let mut counts = vec![0u32; q];

    {
        // Zip the six output planes into per-query work items so rayon
        // hands each thread disjoint slices (the chunked-slot idiom the
        // sharded store uses).
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(q);
        let mut nbr_rest: &mut [u32] = &mut nbrs;
        let mut t_rest: &mut [u64] = &mut times;
        let mut eid_rest: &mut [u64] = &mut eids;
        let mut mask_rest: &mut [f32] = mask.as_mut_slice();
        let mut w_rest: &mut [f32] = weights.as_mut_slice();
        let mut count_rest: &mut [u32] = &mut counts;
        for (qi, &(node, t)) in queries.iter().enumerate() {
            let (nbr, nr) = nbr_rest.split_at_mut(k);
            let (tt, tr) = t_rest.split_at_mut(k);
            let (eid, er) = eid_rest.split_at_mut(k);
            let (m, mr) = mask_rest.split_at_mut(k);
            let (w, wr) = w_rest.split_at_mut(k);
            let (c, cr) = count_rest.split_at_mut(1);
            nbr_rest = nr;
            t_rest = tr;
            eid_rest = er;
            mask_rest = mr;
            w_rest = wr;
            count_rest = cr;
            slots.push(Slot {
                node,
                t,
                qi,
                nbr,
                times: tt,
                eid,
                mask: m,
                weights: w,
                count: &mut c[0],
            });
        }
        slots.par_chunks_mut(32).for_each(|chunk| {
            for s in chunk {
                sample_one(index, cfg, s);
            }
        });
    }

    stgraph_telemetry::counter("ctdg.samples").add(q as u64);
    NeighborSample {
        k,
        queries: q,
        nbrs,
        times,
        eids,
        mask: Tensor::from_buf(Shape::Vec(q * k), mask),
        weights: Tensor::from_buf(Shape::Vec(q * k), weights),
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_datasets::TimedEdge;

    fn chain_index() -> TCsr {
        // Node 0 interacts with 1..=9 at t = 10,20,...,90.
        let mut x = TCsr::new(16);
        let batch: Vec<TimedEdge> = (1..10)
            .map(|i| TimedEdge {
                src: 0,
                dst: i,
                t: 10 * i as u64,
            })
            .collect();
        x.ingest_batch(&batch);
        x
    }

    #[test]
    fn recent_returns_true_k_most_recent_oldest_first() {
        let x = chain_index();
        let cfg = SamplerConfig {
            k: 3,
            strategy: Strategy::Recent,
            seed: 0,
        };
        let s = sample(&x, &[(0, 75)], &cfg);
        assert_eq!(s.counts, vec![3]);
        // Before 75: t = 10..70. Most recent 3: 50,60,70 (oldest first).
        assert_eq!(&s.times[..3], &[50, 60, 70]);
        assert_eq!(&s.nbrs[..3], &[5, 6, 7]);
        assert_eq!(&s.mask.data()[..3], &[1.0; 3]);
    }

    #[test]
    fn queries_pad_when_history_is_short() {
        let x = chain_index();
        let cfg = SamplerConfig {
            k: 4,
            strategy: Strategy::Recent,
            seed: 0,
        };
        let s = sample(&x, &[(0, 25), (3, 5), (15, 99)], &cfg);
        assert_eq!(s.counts, vec![2, 0, 0]);
        assert_eq!(&s.times[..2], &[10, 20]);
        assert_eq!(s.mask.data()[2], 0.0);
        assert_eq!(s.weights.data()[0], 0.5);
        assert_eq!(
            &s.weights.data()[4..8],
            &[0.0; 4],
            "empty query: zero weights"
        );
        assert_eq!(s.total_valid(), 2);
    }

    #[test]
    fn uniform_is_deterministic_and_respects_the_horizon() {
        let x = chain_index();
        let cfg = SamplerConfig {
            k: 3,
            strategy: Strategy::Uniform,
            seed: 7,
        };
        let queries = vec![(0u32, 85u64); 8];
        let a = sample(&x, &queries, &cfg);
        let b = sample(&x, &queries, &cfg);
        assert_eq!(a, b, "same seed must reproduce bitwise");
        for qi in 0..8 {
            let slice = &a.times[qi * 3..qi * 3 + 3];
            assert!(slice.windows(2).all(|w| w[0] < w[1]), "time-ordered");
            assert!(slice.iter().all(|&t| t < 85), "no time travel");
        }
        // Different query indices draw differently (with 8 draws of 3
        // from 8 candidates, identical picks everywhere are ~impossible).
        assert!(
            (1..8).any(|qi| a.times[qi * 3..qi * 3 + 3] != a.times[0..3]),
            "per-query seeds must decorrelate draws"
        );
        let c = sample(
            &x,
            &queries,
            &SamplerConfig {
                seed: 8,
                ..cfg.clone()
            },
        );
        assert_ne!(a, c, "different seed, different draws");
    }

    #[test]
    fn scatter_idx_maps_slots_to_queries() {
        let x = chain_index();
        let cfg = SamplerConfig {
            k: 2,
            strategy: Strategy::Recent,
            seed: 0,
        };
        let s = sample(&x, &[(0, 95), (1, 95)], &cfg);
        assert_eq!(s.scatter_idx(), vec![0, 0, 1, 1]);
    }
}
