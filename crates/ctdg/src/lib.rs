//! Continuous-time dynamic graphs (CTDG) for the STGraph reproduction.
//!
//! The rest of the workspace models *discrete-time* dynamic graphs: a
//! sequence of snapshots, each a full graph. This crate adds the
//! *continuous-time* view — the graph **is** the stream: an append-only
//! log of timestamped edge events `(src, dst, t)`, never materialised as
//! snapshots. Three layers:
//!
//! * [`event`] / [`tcsr`] — the system of record ([`EventLog`]) and its
//!   T-CSR index ([`TCsr`]): per-node adjacency kept time-sorted in
//!   chained fixed-capacity blocks, so appends touch only each node's
//!   tail block (no global re-sort) and "history before t" is a binary
//!   search. Batch ingest is a [`stgraph_faultline`] site
//!   (`tcsr.append`) with exact-inverse rollback: a faulted batch is
//!   bitwise invisible.
//! * [`sampler`] — deterministic seeded temporal neighbor sampling
//!   (`recent` / `uniform`), parallel over the query batch and bitwise
//!   reproducible regardless of thread schedule.
//! * [`memory`] / [`workload`] — a TGN-style per-node memory module
//!   (GRU-flavored update + time-delta encoding, checkpointable through
//!   `.stgc`) and the end-to-end continuous-time link-prediction
//!   workload over the synthetic fraud-burst stream.

#![warn(missing_docs)]

pub mod event;
pub mod memory;
pub mod sampler;
pub mod tcsr;
pub mod workload;

pub use event::{CtdgStore, EventLog};
pub use memory::{TgnMemory, TgnMemoryConfig, TIME_ENC_DIM};
pub use sampler::{sample, NeighborSample, SamplerConfig, Strategy};
pub use tcsr::{TCsr, TcsrStats, BLOCK_CAP};
pub use workload::{CtdgConfig, CtdgReport, CtdgWorkload, EpochStats};

use stgraph_faultline::FaultError;

/// Typed failure from CTDG ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtdgError {
    /// An injected fault fired at the `tcsr.append` site; the half-applied
    /// batch was rolled back and the index is bitwise unchanged.
    Fault(FaultError),
    /// An event's timestamp precedes the last ingested event's.
    NonMonotonic {
        /// Offending timestamp.
        t: u64,
        /// Timestamp of the last accepted event.
        last: u64,
    },
    /// `src == dst`.
    SelfLoop {
        /// The node.
        node: u32,
        /// The event's timestamp.
        t: u64,
    },
    /// An endpoint is outside the store's node range.
    NodeOutOfRange {
        /// Offending node id.
        node: u32,
        /// The store's node count.
        num_nodes: usize,
    },
}

impl std::fmt::Display for CtdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtdgError::Fault(e) => write!(f, "injected fault at {} (hit {})", e.site, e.hit),
            CtdgError::NonMonotonic { t, last } => {
                write!(f, "non-monotonic event time {t} after {last}")
            }
            CtdgError::SelfLoop { node, t } => write!(f, "self-loop on node {node} at t={t}"),
            CtdgError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (num_nodes = {num_nodes})")
            }
        }
    }
}

impl std::error::Error for CtdgError {}
