//! The T-CSR index: per-node neighbor lists sorted by timestamp, stored in
//! fixed-capacity append blocks.
//!
//! The DTDG stores answer "what does the graph look like at snapshot *t*";
//! the continuous-time sampler instead asks "which interactions touched
//! node *u* strictly before instant *t*, and when". That query wants
//! per-node adjacency ordered by time with O(1) random access — a
//! *temporal* CSR. Two properties drive the layout:
//!
//! * **Ingest is append-only.** Events arrive in non-decreasing timestamp
//!   order (enforced, typed error otherwise), so every per-node list stays
//!   time-sorted by construction — there is never a global re-sort.
//!   Appends land in the node's last block; when it fills, a new
//!   [`BLOCK_CAP`]-entry block is chained on. Existing entries never move,
//!   so a 1M-event ingest does zero `memcpy`-the-world reallocation and a
//!   half-applied batch can be rolled back by popping in reverse.
//! * **Lookup is two divides.** Every block except the last is full, so
//!   entry `i` of a node lives at block `i / BLOCK_CAP`, offset
//!   `i % BLOCK_CAP` — binary search over a node's (sorted) timestamps
//!   costs O(log d) with no pointer chasing beyond one block hop.
//!
//! Blocks are struct-of-arrays (`nbr` / `t` / `eid` in parallel vectors) so
//! the sampler's timestamp binary search touches only timestamp bytes.
//!
//! Each event is indexed on **both** endpoints (interaction graphs are
//! queried from either side in TGN-class models), under the same event id,
//! which is the event's index in the append-only [`EventLog`]
//! (`crate::event::EventLog`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stgraph_datasets::TimedEdge;

use crate::CtdgError;

/// Entries per adjacency block. Big enough that the block spine is cold in
/// the binary search, small enough that a hub node's tail block waste is
/// negligible.
pub const BLOCK_CAP: usize = 64;

/// One append block of a node's temporal adjacency (struct-of-arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Block {
    nbr: Vec<u32>,
    t: Vec<u64>,
    eid: Vec<u64>,
}

impl Block {
    fn new() -> Block {
        Block {
            nbr: Vec::with_capacity(BLOCK_CAP),
            t: Vec::with_capacity(BLOCK_CAP),
            eid: Vec::with_capacity(BLOCK_CAP),
        }
    }

    fn len(&self) -> usize {
        self.nbr.len()
    }
}

/// A node's temporal adjacency: chained blocks, all full except the last.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct NodeAdj {
    blocks: Vec<Block>,
}

impl NodeAdj {
    fn len(&self) -> usize {
        match self.blocks.last() {
            None => 0,
            Some(last) => (self.blocks.len() - 1) * BLOCK_CAP + last.len(),
        }
    }

    fn push(&mut self, nbr: u32, t: u64, eid: u64) {
        let need_block = match self.blocks.last() {
            None => true,
            Some(b) => b.len() == BLOCK_CAP,
        };
        if need_block {
            self.blocks.push(Block::new());
        }
        let b = self.blocks.last_mut().unwrap();
        b.nbr.push(nbr);
        b.t.push(t);
        b.eid.push(eid);
    }

    /// Removes the most recent entry — the exact inverse of `push`,
    /// including the block spine (an emptied tail block is dropped), so a
    /// rolled-back batch leaves the structure equal to the pre-batch one.
    fn pop(&mut self) {
        let b = self.blocks.last_mut().expect("pop on empty adjacency");
        b.nbr.pop();
        b.t.pop();
        b.eid.pop();
        if b.nbr.is_empty() {
            self.blocks.pop();
        }
    }

    #[inline]
    fn entry(&self, i: usize) -> (u32, u64, u64) {
        let b = &self.blocks[i / BLOCK_CAP];
        let o = i % BLOCK_CAP;
        (b.nbr[o], b.t[o], b.eid[o])
    }

    #[inline]
    fn time_at(&self, i: usize) -> u64 {
        self.blocks[i / BLOCK_CAP].t[i % BLOCK_CAP]
    }
}

/// Live counters behind the `ctdg.*` telemetry gauges.
#[derive(Debug, Default)]
pub struct TcsrStats {
    /// Events currently indexed.
    pub events: AtomicU64,
    /// Adjacency blocks currently allocated (both endpoints).
    pub blocks: AtomicU64,
}

/// The time-sorted adjacency index (see module docs).
#[derive(Debug, Clone)]
pub struct TCsr {
    adj: Vec<NodeAdj>,
    num_events: u64,
    last_t: u64,
    stats: Arc<TcsrStats>,
}

/// Equality is over indexed contents — the chaos suite's "bitwise
/// invisible" check. The telemetry stats handle is identity, not state.
impl PartialEq for TCsr {
    fn eq(&self, other: &TCsr) -> bool {
        self.num_events == other.num_events && self.last_t == other.last_t && self.adj == other.adj
    }
}

impl TCsr {
    /// An empty index over `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> TCsr {
        TCsr {
            adj: vec![NodeAdj::default(); num_nodes],
            num_events: 0,
            last_t: 0,
            stats: Arc::new(TcsrStats::default()),
        }
    }

    /// Vertex count.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Events indexed so far (each is listed under both endpoints).
    pub fn num_events(&self) -> u64 {
        self.num_events
    }

    /// Timestamp of the newest indexed event (0 when empty).
    pub fn last_timestamp(&self) -> u64 {
        self.last_t
    }

    /// Total temporal degree of `u` (interactions on either side).
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Number of interactions of `u` strictly before `t` — binary search
    /// over the node's time-sorted entries. Entries at exactly `t` are
    /// excluded: sampling at an event's own timestamp must not see it.
    pub fn degree_before(&self, u: u32, t: u64) -> usize {
        let a = &self.adj[u as usize];
        let (mut lo, mut hi) = (0usize, a.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if a.time_at(mid) < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The `i`-th oldest interaction of `u`: `(neighbor, timestamp,
    /// event id)`. O(1).
    pub fn entry(&self, u: u32, i: usize) -> (u32, u64, u64) {
        self.adj[u as usize].entry(i)
    }

    /// Adjacency blocks currently allocated across all nodes.
    pub fn num_blocks(&self) -> u64 {
        self.stats.blocks.load(Ordering::Relaxed)
    }

    /// Registers this index's `ctdg.events` / `ctdg.blocks` gauges with
    /// the telemetry registry. Call once per long-lived index (the train
    /// workload and the bench do); short-lived test indices skip it.
    pub fn install_gauges(&self) {
        let stats = Arc::clone(&self.stats);
        stgraph_telemetry::register_gauge("ctdg.events", move || {
            stats.events.load(Ordering::Relaxed) as f64
        });
        let stats = Arc::clone(&self.stats);
        stgraph_telemetry::register_gauge("ctdg.blocks", move || {
            stats.blocks.load(Ordering::Relaxed) as f64
        });
    }

    fn validate(&self, batch: &[TimedEdge]) -> Result<(), CtdgError> {
        let mut last = self.last_t;
        for e in batch {
            if e.t < last {
                return Err(CtdgError::NonMonotonic { t: e.t, last });
            }
            if e.src == e.dst {
                return Err(CtdgError::SelfLoop {
                    node: e.src,
                    t: e.t,
                });
            }
            for node in [e.src, e.dst] {
                if node as usize >= self.adj.len() {
                    return Err(CtdgError::NodeOutOfRange {
                        node,
                        num_nodes: self.adj.len(),
                    });
                }
            }
            last = e.t;
        }
        Ok(())
    }

    /// Appends a batch of events, all-or-nothing. Validation (monotonic
    /// timestamps, no self-loops, nodes in range) runs before any
    /// mutation. The `tcsr.append` fault point fires per event; an
    /// injected fault mid-batch rolls every already-applied event back by
    /// popping in reverse, so a failed batch is bitwise invisible.
    ///
    /// Returns the event id assigned to the batch's first event (ids are
    /// consecutive within a batch).
    pub fn try_ingest_batch(&mut self, batch: &[TimedEdge]) -> Result<u64, CtdgError> {
        let _sp = stgraph_telemetry::span_cat("ctdg.ingest", "ctdg");
        self.validate(batch)?;
        let base_eid = self.num_events;
        let prev_last_t = self.last_t;
        let prev_blocks = self.stats.blocks.load(Ordering::Relaxed);
        let mut applied = 0usize;
        for (i, e) in batch.iter().enumerate() {
            if let Err(f) = stgraph_faultline::fault_point!("tcsr.append") {
                // Roll back the half-applied prefix in reverse: pop is the
                // exact inverse of push, block spine included.
                for ev in batch[..applied].iter().rev() {
                    self.adj[ev.dst as usize].pop();
                    self.adj[ev.src as usize].pop();
                }
                self.num_events = base_eid;
                self.last_t = prev_last_t;
                self.stats.blocks.store(prev_blocks, Ordering::Relaxed);
                stgraph_faultline::note_rollback();
                stgraph_telemetry::counter("ctdg.rollbacks").inc();
                return Err(CtdgError::Fault(f));
            }
            let eid = base_eid + i as u64;
            let before = self.block_count_of(e.src) + self.block_count_of(e.dst);
            self.adj[e.src as usize].push(e.dst, e.t, eid);
            self.adj[e.dst as usize].push(e.src, e.t, eid);
            let after = self.block_count_of(e.src) + self.block_count_of(e.dst);
            if after != before {
                self.stats
                    .blocks
                    .fetch_add((after - before) as u64, Ordering::Relaxed);
            }
            self.num_events += 1;
            self.last_t = e.t;
            applied = i + 1;
        }
        self.stats.events.store(self.num_events, Ordering::Relaxed);
        stgraph_telemetry::counter("ctdg.events_ingested").add(batch.len() as u64);
        Ok(base_eid)
    }

    /// Appends a batch, panicking on validation failure (malformed input
    /// is a caller bug on this path; injected faults stay typed via
    /// [`TCsr::try_ingest_batch`]).
    pub fn ingest_batch(&mut self, batch: &[TimedEdge]) -> u64 {
        self.try_ingest_batch(batch)
            .unwrap_or_else(|e| panic!("ingest failed: {e}"))
    }

    fn block_count_of(&self, u: u32) -> usize {
        self.adj[u as usize].blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, t: u64) -> TimedEdge {
        TimedEdge { src, dst, t }
    }

    #[test]
    fn appends_stay_time_sorted_and_indexed_on_both_endpoints() {
        let mut x = TCsr::new(8);
        x.ingest_batch(&[ev(0, 1, 5), ev(2, 0, 5), ev(1, 3, 9)]);
        assert_eq!(x.num_events(), 3);
        assert_eq!(x.last_timestamp(), 9);
        assert_eq!(x.degree(0), 2);
        assert_eq!(x.entry(0, 0), (1, 5, 0));
        assert_eq!(x.entry(0, 1), (2, 5, 1));
        assert_eq!(x.entry(1, 1), (3, 9, 2));
        assert_eq!(x.degree_before(0, 5), 0, "t == query excluded");
        assert_eq!(x.degree_before(0, 6), 2);
        assert_eq!(x.degree_before(1, 9), 1);
    }

    #[test]
    fn block_spine_fills_and_random_access_is_exact() {
        let mut x = TCsr::new(4);
        let batch: Vec<TimedEdge> = (0..200).map(|i| ev(0, 1 + (i % 3), i as u64)).collect();
        x.ingest_batch(&batch);
        assert_eq!(x.degree(0), 200);
        assert!(x.num_blocks() >= (200 / BLOCK_CAP) as u64);
        for i in 0..200 {
            let (nbr, t, eid) = x.entry(0, i);
            assert_eq!(t, i as u64);
            assert_eq!(eid, i as u64);
            assert_eq!(nbr, 1 + (i as u32 % 3));
        }
        assert_eq!(x.degree_before(0, 137), 137);
    }

    #[test]
    fn validation_errors_are_typed_and_leave_index_untouched() {
        let mut x = TCsr::new(4);
        x.ingest_batch(&[ev(0, 1, 10)]);
        let before = x.clone();
        assert_eq!(
            x.try_ingest_batch(&[ev(1, 2, 3)]),
            Err(CtdgError::NonMonotonic { t: 3, last: 10 })
        );
        assert_eq!(
            x.try_ingest_batch(&[ev(2, 2, 11)]),
            Err(CtdgError::SelfLoop { node: 2, t: 11 })
        );
        assert_eq!(
            x.try_ingest_batch(&[ev(0, 9, 11)]),
            Err(CtdgError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            })
        );
        // A mid-batch validation error must also leave nothing applied.
        assert!(x.try_ingest_batch(&[ev(0, 1, 12), ev(1, 1, 13)]).is_err());
        assert_eq!(x, before);
    }

    #[test]
    fn equal_ingest_sequences_compare_equal() {
        let batch: Vec<TimedEdge> = (0..100).map(|i| ev(i % 5, 5 + (i % 3), i as u64)).collect();
        let mut a = TCsr::new(10);
        let mut b = TCsr::new(10);
        a.ingest_batch(&batch);
        for chunk in batch.chunks(7) {
            b.ingest_batch(chunk);
        }
        assert_eq!(a, b, "batching must not change the index");
    }
}
