//! The append-only event log and the store that pairs it with its T-CSR
//! index.
//!
//! The log is the system of record: a flat, append-only vector of
//! [`TimedEdge`] events whose index *is* the event id. The
//! [`TCsr`](crate::TCsr) is a derived index over the same events; the
//! [`CtdgStore`] keeps the two in lock-step — a batch lands in both or in
//! neither (the index's `tcsr.append` fault rollback covers the log too,
//! because the log is only extended after the index accepts the batch).

use stgraph_datasets::TimedEdge;

use crate::{CtdgError, TCsr};

/// Append-only timestamped edge-event log; event id = position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<TimedEdge>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with id `eid`, if recorded.
    pub fn get(&self, eid: u64) -> Option<TimedEdge> {
        self.events.get(eid as usize).copied()
    }

    /// All events in arrival (= id, = time) order.
    pub fn as_slice(&self) -> &[TimedEdge] {
        &self.events
    }

    /// The suffix of events with id `>= eid` — the replay-cursor view an
    /// online trainer uses to feed freshly ingested events into its replay
    /// buffer ([`stgraph_serve::online::ReplayBuffer::push_events`]) without
    /// re-reading the whole log. `eid` past the end yields an empty slice.
    pub fn events_since(&self, eid: u64) -> &[TimedEdge] {
        let start = (eid as usize).min(self.events.len());
        &self.events[start..]
    }
}

/// An event log plus its T-CSR index, mutated only in lock-step.
#[derive(Debug, Clone, PartialEq)]
pub struct CtdgStore {
    log: EventLog,
    index: TCsr,
}

impl CtdgStore {
    /// An empty store over `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> CtdgStore {
        CtdgStore {
            log: EventLog::new(),
            index: TCsr::new(num_nodes),
        }
    }

    /// The system-of-record event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The time-sorted adjacency index.
    pub fn index(&self) -> &TCsr {
        &self.index
    }

    /// Appends a batch to the index and (only on success) the log, so a
    /// faulted batch is bitwise invisible in both. Returns the first
    /// event id of the batch.
    pub fn try_append_batch(&mut self, batch: &[TimedEdge]) -> Result<u64, CtdgError> {
        let base = self.index.try_ingest_batch(batch)?;
        self.log.events.extend_from_slice(batch);
        Ok(base)
    }

    /// Appends a batch, panicking on malformed input (see
    /// [`TCsr::ingest_batch`]).
    pub fn append_batch(&mut self, batch: &[TimedEdge]) -> u64 {
        self.try_append_batch(batch)
            .unwrap_or_else(|e| panic!("append failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_index_stay_in_lockstep() {
        let mut s = CtdgStore::new(8);
        let batch = [
            TimedEdge {
                src: 0,
                dst: 1,
                t: 3,
            },
            TimedEdge {
                src: 1,
                dst: 2,
                t: 4,
            },
        ];
        let base = s.append_batch(&batch);
        assert_eq!(base, 0);
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.index().num_events(), 2);
        assert_eq!(s.log().get(1), Some(batch[1]));
        // A rejected batch touches neither side.
        let before = s.clone();
        assert!(s
            .try_append_batch(&[TimedEdge {
                src: 2,
                dst: 2,
                t: 9
            }])
            .is_err());
        assert_eq!(s, before);
    }

    #[test]
    fn events_since_is_the_replay_cursor_view() {
        let mut s = CtdgStore::new(8);
        let batch: Vec<TimedEdge> = (0..5)
            .map(|i| TimedEdge {
                src: i,
                dst: i + 1,
                t: 10 + i as u64,
            })
            .collect();
        s.append_batch(&batch);
        assert_eq!(s.log().events_since(0), &batch[..]);
        assert_eq!(s.log().events_since(3), &batch[3..]);
        assert_eq!(s.log().events_since(5), &[] as &[TimedEdge]);
        assert_eq!(s.log().events_since(99), &[] as &[TimedEdge]);
    }
}
