//! End-to-end continuous-time link prediction over the fraud-burst
//! stream: the CTDG analogue of the snapshot workloads in `stgraph`.
//!
//! The stream is split **chronologically** 70/15/15 into train/val/test —
//! the only split that makes sense for temporal data (a random split
//! would let the model peek at the future). Each epoch resets the
//! per-node memory and replays the stream in order: every batch of
//! events steps the [`TgnMemory`](crate::TgnMemory) GRU for the nodes
//! involved, aggregates sampled temporal neighbors, and scores the real
//! destination against a corrupted one (BCE on the pair of logits).
//! Validation and test replay the same machinery without gradients —
//! memory keeps evolving through eval, as in TGN.
//!
//! Reproducibility contract: every random draw — GRU init, negative
//! sampling, uniform neighbor sampling — is a pure function of
//! `(cfg.seed, epoch, batch)`, never of iteration history. Together with
//! the per-epoch memory reset and bitwise Adam-state checkpointing, this
//! makes `--resume` *exact*: a run killed at an epoch boundary and
//! resumed produces the same loss trajectory as one that never stopped.

use std::rc::Rc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph::metrics::roc_auc;
use stgraph_datasets::{fraud_stream, FraudConfig, FraudEvent};
use stgraph_serve::manager::CheckpointManager;
use stgraph_tensor::nn::{Linear, ParamSet, StateEntry};
use stgraph_tensor::optim::{clip_grad_norm, Adam};
use stgraph_tensor::{Param, PoolScope, Shape, StateDict, Tape, Tensor, Var};

use crate::sampler::{sample, SamplerConfig, Strategy};
use crate::{CtdgStore, TgnMemory, TgnMemoryConfig};

/// Name of the bookkeeping entry that records the last finished epoch in
/// a checkpoint (stored alongside the model/optimizer state).
pub const EPOCH_ENTRY: &str = "ctdg.epoch";

/// Configuration for the CTDG link-prediction workload.
#[derive(Debug, Clone)]
pub struct CtdgConfig {
    /// Vertices in the synthetic stream.
    pub num_nodes: usize,
    /// Events in the synthetic stream.
    pub num_events: usize,
    /// Memory / embedding width.
    pub dim: usize,
    /// Temporal neighbors sampled per query.
    pub k: usize,
    /// Events per training batch.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Neighbor sampling strategy.
    pub strategy: Strategy,
    /// Master seed: data, init, negatives, and sampling all derive from it.
    pub seed: u64,
}

impl CtdgConfig {
    /// A small smoke-test shape (seconds, not minutes).
    pub fn smoke(seed: u64) -> CtdgConfig {
        CtdgConfig {
            num_nodes: 400,
            num_events: 4000,
            dim: 16,
            k: 8,
            batch_size: 200,
            epochs: 2,
            lr: 1e-2,
            strategy: Strategy::Recent,
            seed,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based, global across resumes).
    pub epoch: usize,
    /// Mean training-batch loss.
    pub loss: f32,
    /// Link-prediction ROC-AUC on the chronological validation slice.
    pub val_auc: f32,
}

/// Result of a [`CtdgWorkload`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CtdgReport {
    /// Stats for each epoch *this run* executed (a resumed run reports
    /// only the epochs it ran).
    pub epochs: Vec<EpochStats>,
    /// ROC-AUC on the held-out chronological test slice (after the final
    /// epoch), or `NaN` if no epoch ran.
    pub test_auc: f32,
    /// Events in the train/val/test slices.
    pub split: (usize, usize, usize),
}

/// Link scorer head + projections around the shared [`TgnMemory`].
struct CtdgModel {
    memory: TgnMemory,
    head: ParamSet,
    nbr_proj: Linear,
    self_proj: Linear,
    score1: Linear,
    score2: Linear,
}

impl CtdgModel {
    fn new(cfg: &CtdgConfig) -> CtdgModel {
        let memory = TgnMemory::new(TgnMemoryConfig {
            num_nodes: cfg.num_nodes,
            dim: cfg.dim,
            seed: cfg.seed,
        });
        let mut head = ParamSet::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xc7d6_0002);
        let d = cfg.dim;
        let nbr_proj = Linear::new(&mut head, "ctdg.nbr_proj", d, d, true, &mut rng);
        let self_proj = Linear::new(&mut head, "ctdg.self_proj", d, d, true, &mut rng);
        let score1 = Linear::new(&mut head, "ctdg.score1", 2 * d, d, true, &mut rng);
        let score2 = Linear::new(&mut head, "ctdg.score2", d, 1, true, &mut rng);
        CtdgModel {
            memory,
            head,
            nbr_proj,
            self_proj,
            score1,
            score2,
        }
    }

    /// Everything the optimizer steps (GRU weights + head; the memory
    /// *state* is not a trainable parameter).
    fn trainable(&self) -> ParamSet {
        let mut ps = self.memory.weights().clone();
        ps.extend(&self.head);
        ps
    }
}

impl StateDict for CtdgModel {
    fn parameters(&self) -> Vec<Param> {
        let mut ps = self.memory.parameters();
        ps.extend(self.head.iter().cloned());
        ps
    }
}

/// splitmix64-style mix for deriving per-(epoch, batch) stream seeds.
#[inline]
fn mix(seed: u64, epoch: u64, batch: u64) -> u64 {
    let mut x = seed
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ batch.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The runnable workload: stream + store + model + optimizer.
pub struct CtdgWorkload {
    cfg: CtdgConfig,
    store: CtdgStore,
    events: Vec<FraudEvent>,
    /// `events[..train_end]` train, `..val_end` val, rest test.
    train_end: usize,
    val_end: usize,
    model: CtdgModel,
    opt: Adam,
}

impl CtdgWorkload {
    /// Generates the stream, indexes it, and initialises model and
    /// optimizer. Deterministic in `cfg`.
    pub fn new(cfg: CtdgConfig) -> CtdgWorkload {
        let _sp = stgraph_telemetry::span_cat("ctdg.setup", "ctdg");
        let fcfg = FraudConfig::new(cfg.num_nodes, cfg.num_events, cfg.seed);
        let events: Vec<FraudEvent> = fraud_stream(&fcfg).collect();
        // The whole stream is indexed up front: the sampler's strict
        // `t < query` horizon makes future events invisible, so one index
        // serves every epoch and split without leakage.
        let mut store = CtdgStore::new(cfg.num_nodes);
        for chunk in events
            .chunks(4096)
            .map(|c| c.iter().map(|e| e.edge).collect::<Vec<_>>())
        {
            store.append_batch(&chunk);
        }
        store.index().install_gauges();
        let n = events.len();
        let train_end = n * 70 / 100;
        let val_end = n * 85 / 100;
        let model = CtdgModel::new(&cfg);
        let opt = Adam::new(model.trainable(), cfg.lr);
        CtdgWorkload {
            cfg,
            store,
            events,
            train_end,
            val_end,
            model,
            opt,
        }
    }

    /// The indexed event store (tests and benches poke at it).
    pub fn store(&self) -> &CtdgStore {
        &self.store
    }

    /// The workload configuration.
    pub fn config(&self) -> &CtdgConfig {
        &self.cfg
    }

    /// Forward pass over `events[lo..hi]`. Steps the optimizer when
    /// `train`; always commits memory. Returns `(loss, pos, neg)` logits
    /// for metric accumulation.
    fn run_batch(
        &mut self,
        lo: usize,
        hi: usize,
        epoch: usize,
        batch: usize,
        train: bool,
    ) -> (f32, Vec<f32>, Vec<f32>) {
        let b = hi - lo;
        let d = self.cfg.dim;
        let slice = &self.events[lo..hi];
        let mut rows: Vec<u32> = Vec::with_capacity(3 * b);
        let mut times: Vec<u64> = Vec::with_capacity(3 * b);
        rows.extend(slice.iter().map(|e| e.edge.src));
        rows.extend(slice.iter().map(|e| e.edge.dst));
        let mut neg_rng = ChaCha8Rng::seed_from_u64(mix(self.cfg.seed, epoch as u64, batch as u64));
        for e in slice {
            // Corrupt the destination; avoid the true endpoints.
            let neg = loop {
                let c = neg_rng.gen_range(0..self.cfg.num_nodes as u32);
                if c != e.edge.src && c != e.edge.dst {
                    break c;
                }
            };
            rows.push(neg);
        }
        for _ in 0..3 {
            times.extend(slice.iter().map(|e| e.edge.t));
        }

        // Message content: each endpoint sees its partner's memory;
        // negatives see a zero message (no real interaction happened).
        let mut partner = Vec::with_capacity(2 * b);
        partner.extend(slice.iter().map(|e| e.edge.dst));
        partner.extend(slice.iter().map(|e| e.edge.src));
        let mut partner_mem = self.model.memory.read_rows(&partner).to_vec();
        partner_mem.resize(3 * b * d, 0.0);

        // Temporal neighbors from the current (pre-update) memory.
        let queries: Vec<(u32, u64)> = rows.iter().copied().zip(times.iter().copied()).collect();
        let ns = sample(
            self.store.index(),
            &queries,
            &SamplerConfig {
                k: self.cfg.k,
                strategy: self.cfg.strategy,
                seed: mix(self.cfg.seed ^ 0x5a3b, epoch as u64, batch as u64),
            },
        );

        let tape = Tape::new();
        let h = tape.constant(self.model.memory.read_rows(&rows));
        let p = tape.constant(Tensor::from_vec(Shape::Mat(3 * b, d), partner_mem));
        let enc = tape.constant(self.model.memory.time_encode(&rows, &times));
        let h2 = self.model.memory.update(&tape, &h, &p, &enc);

        let nbr_mem = tape.constant(self.model.memory.read_rows(&ns.nbrs));
        let agg = self
            .model
            .nbr_proj
            .forward(&tape, &nbr_mem)
            .scale_rows_const(&ns.weights)
            .scatter_add_rows(Rc::new(ns.scatter_idx()), 3 * b);
        let emb = self.model.self_proj.forward(&tape, &h2).add(&agg).relu();

        let idx =
            |range: std::ops::Range<usize>| Rc::new(range.map(|i| i as u32).collect::<Vec<_>>());
        let emb_src = emb.gather_rows(idx(0..b));
        let emb_dst = emb.gather_rows(idx(b..2 * b));
        let emb_neg = emb.gather_rows(idx(2 * b..3 * b));
        let pos_h = self
            .model
            .score1
            .forward(&tape, &Var::concat_cols(&[&emb_src, &emb_dst]))
            .relu();
        let pos = self.model.score2.forward(&tape, &pos_h);
        let neg_h = self
            .model
            .score1
            .forward(&tape, &Var::concat_cols(&[&emb_src, &emb_neg]))
            .relu();
        let neg = self.model.score2.forward(&tape, &neg_h);
        let ones = Tensor::ones(Shape::Mat(b, 1));
        let zeros = Tensor::zeros(Shape::Mat(b, 1));
        let loss = pos
            .bce_with_logits_loss(&ones)
            .add(&neg.bce_with_logits_loss(&zeros))
            .mul_scalar(0.5);
        let loss_v = loss.value().item();

        if train {
            tape.backward(&loss);
            clip_grad_norm(&self.model.trainable(), 5.0);
            self.opt.step();
            self.opt.zero_grad();
        }

        // Commit the post-interaction memories for the real endpoints
        // (rows 0..2b), stamped with the event times.
        let upd = Tensor::from_vec(
            Shape::Mat(2 * b, d),
            h2.value().data()[..2 * b * d].to_vec(),
        );
        self.model
            .memory
            .commit(&rows[..2 * b], &upd, &times[..2 * b]);

        (loss_v, pos.value().to_vec(), neg.value().to_vec())
    }

    /// Replays `events[lo..hi]` without gradients and returns ROC-AUC.
    fn evaluate(&mut self, lo: usize, hi: usize, epoch: usize, tag: u64) -> f32 {
        let bs = self.cfg.batch_size;
        let mut logits: Vec<f32> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        let mut start = lo;
        let mut batch = tag; // disjoint batch-id space per segment
        while start < hi {
            let end = (start + bs).min(hi);
            let (_, pos, neg) = self.run_batch(start, end, epoch, batch as usize, false);
            labels.extend(std::iter::repeat_n(1.0, pos.len()));
            labels.extend(std::iter::repeat_n(0.0, neg.len()));
            logits.extend(pos);
            logits.extend(neg);
            start = end;
            batch += 1;
        }
        let n = logits.len();
        roc_auc(
            &Tensor::from_vec(Shape::Vec(n), logits),
            &Tensor::from_vec(Shape::Vec(n), labels),
        )
    }

    /// One epoch: memory reset, train slice with gradients, val slice
    /// without. Returns the epoch's stats.
    fn run_epoch(&mut self, epoch: usize) -> EpochStats {
        let _sp = stgraph_telemetry::span_cat("ctdg.epoch", "ctdg");
        self.model.memory.reset_state();
        let bs = self.cfg.batch_size;
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        let mut start = 0usize;
        while start < self.train_end {
            let end = (start + bs).min(self.train_end);
            let (loss, _, _) = self.run_batch(start, end, epoch, batches, true);
            loss_sum += loss;
            batches += 1;
            start = end;
        }
        let val_auc = self.evaluate(self.train_end, self.val_end, epoch, 1 << 32);
        stgraph_telemetry::counter("ctdg.epochs").inc();
        EpochStats {
            epoch,
            loss: loss_sum / batches.max(1) as f32,
            val_auc,
        }
    }

    /// Checkpoint payload: model (GRU + head + memory state) + Adam
    /// moments + the epoch counter.
    fn checkpoint_entries(&self, epoch: usize) -> Vec<StateEntry> {
        let mut entries = self.model.to_state_dict();
        entries.extend(self.opt.state_entries());
        entries.push((EPOCH_ENTRY.to_string(), Shape::Scalar, vec![epoch as f32]));
        entries
    }

    /// Restores model + optimizer from checkpoint entries; returns the
    /// recorded epoch.
    pub fn restore(&mut self, entries: &[StateEntry]) -> Result<usize, String> {
        let (_, _, epoch_data) = entries
            .iter()
            .find(|(n, _, _)| n == EPOCH_ENTRY)
            .ok_or_else(|| format!("checkpoint has no '{EPOCH_ENTRY}' entry"))?;
        self.model
            .try_load_state_dict(entries)
            .map_err(|e| e.to_string())?;
        self.opt
            .load_state_entries(entries)
            .map_err(|e| e.to_string())?;
        Ok(epoch_data[0] as usize)
    }

    /// Runs all epochs (no checkpointing) and the final test eval.
    pub fn run(&mut self) -> CtdgReport {
        self.run_from(0, None)
    }

    /// Runs epochs with per-epoch checkpoints; `resume` loads the latest
    /// checkpoint first and continues after its recorded epoch.
    pub fn run_with_checkpoints(
        &mut self,
        manager: &CheckpointManager,
        resume: bool,
    ) -> CtdgReport {
        let start = if resume {
            let (_, entries) = manager
                .load_latest()
                .unwrap_or_else(|e| panic!("resume: {e}"));
            let done = self
                .restore(&entries)
                .unwrap_or_else(|e| panic!("resume: {e}"));
            done + 1
        } else {
            0
        };
        self.run_from(start, Some(manager))
    }

    fn run_from(&mut self, start: usize, manager: Option<&CheckpointManager>) -> CtdgReport {
        let _scope = PoolScope::new();
        let mut epochs = Vec::new();
        for e in start..self.cfg.epochs {
            let stats = self.run_epoch(e);
            if let Some(m) = manager {
                m.save(&self.checkpoint_entries(e))
                    .unwrap_or_else(|err| panic!("checkpoint save: {err}"));
            }
            epochs.push(stats);
        }
        // Test continues chronologically from the last epoch's val state.
        let test_auc = if epochs.is_empty() {
            f32::NAN
        } else {
            let last = epochs.last().unwrap().epoch;
            self.evaluate(self.val_end, self.events.len(), last, 1 << 33)
        };
        CtdgReport {
            epochs,
            test_auc,
            split: (
                self.train_end,
                self.val_end - self.train_end,
                self.events.len() - self.val_end,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_learns_and_reports() {
        let mut w = CtdgWorkload::new(CtdgConfig::smoke(7));
        let report = w.run();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.epochs.iter().all(|e| e.loss.is_finite()));
        assert!(report.test_auc.is_finite());
        // Chronological split accounts for every event.
        let (tr, va, te) = report.split;
        assert_eq!(tr + va + te, w.config().num_events);
        // A learned model separates real from corrupted destinations
        // clearly better than chance on held-out future events.
        assert!(
            report.test_auc > 0.6,
            "test AUC {} should beat chance",
            report.test_auc
        );
    }

    #[test]
    fn identical_seeds_reproduce_bitwise() {
        let a = CtdgWorkload::new(CtdgConfig::smoke(3)).run();
        let b = CtdgWorkload::new(CtdgConfig::smoke(3)).run();
        assert_eq!(a, b);
        let c = CtdgWorkload::new(CtdgConfig::smoke(4)).run();
        assert_ne!(a, c);
    }
}
