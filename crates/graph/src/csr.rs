//! CSR storage with shared edge labels, degree-sorted processing order and
//! the paper's parallel reverse-CSR kernel (Algorithm 3).
//!
//! Conventions follow §V.B of the paper:
//!
//! * the **CSR** stores *out*-neighbours and drives the backward pass;
//! * the **reverse CSR** stores *in*-neighbours and drives the forward pass;
//! * both carry the same **edge ids** (`eids`) so an edge's data is addressed
//!   identically in both passes;
//! * instead of relabelling vertices per snapshot, each CSR carries an
//!   auxiliary [`Csr::node_ids`] array listing vertices in descending degree
//!   order — the kernel processes vertices in that order so high-degree rows
//!   start early and overlap with many low-degree rows (Figure 3);
//! * `col_indices` entries may be [`SPACE`] sentinels (gaps left by the GPMA
//!   for fast insertion); every consumer skips them.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use stgraph_tensor::mem::BytesCharge;

/// Sentinel marking an empty slot in a gapped CSR (GPMA leaves these).
pub const SPACE: u32 = u32::MAX;

/// A compressed-sparse-row adjacency with edge labels.
pub struct Csr {
    /// `row_offset[i]..row_offset[i+1]` spans vertex `i`'s slot range in
    /// `col_indices` (the range may contain [`SPACE`] gaps).
    pub row_offset: Vec<usize>,
    /// Neighbour vertex per slot, or [`SPACE`].
    pub col_indices: Vec<u32>,
    /// Edge id per slot (meaningless where `col_indices` is [`SPACE`]).
    pub eids: Vec<u32>,
    /// Vertices in descending order of (valid-slot) degree: the kernel
    /// scheduling order.
    pub node_ids: Vec<u32>,
    /// Number of valid (non-gap) edges.
    num_edges: usize,
    charge: BytesCharge,
}

impl Csr {
    /// Assembles a CSR from raw arrays, computing `node_ids` and the charge.
    pub fn from_parts(row_offset: Vec<usize>, col_indices: Vec<u32>, eids: Vec<u32>) -> Csr {
        assert_eq!(col_indices.len(), eids.len());
        assert!(!row_offset.is_empty());
        let n = row_offset.len() - 1;
        debug_assert_eq!(*row_offset.last().unwrap(), col_indices.len());
        let mut degree = vec![0u32; n];
        let mut num_edges = 0;
        for i in 0..n {
            let d = col_indices[row_offset[i]..row_offset[i + 1]]
                .iter()
                .filter(|&&c| c != SPACE)
                .count();
            degree[i] = d as u32;
            num_edges += d;
        }
        let node_ids = degree_sorted_ids(&degree);
        let bytes = row_offset.len() * std::mem::size_of::<usize>()
            + col_indices.len() * std::mem::size_of::<u32>()
            + eids.len() * std::mem::size_of::<u32>()
            + node_ids.len() * std::mem::size_of::<u32>();
        Csr {
            row_offset,
            col_indices,
            eids,
            node_ids,
            num_edges,
            charge: BytesCharge::new(bytes),
        }
    }

    /// Builds an out-neighbour CSR from a COO edge list, labelling edge `e`
    /// with id `e` (the canonical labelling shared with the reverse CSR).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Csr {
        let mut degree = vec![0usize; num_nodes];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut row_offset = vec![0usize; num_nodes + 1];
        for i in 0..num_nodes {
            row_offset[i + 1] = row_offset[i] + degree[i];
        }
        let m = edges.len();
        let mut col_indices = vec![0u32; m];
        let mut eids = vec![0u32; m];
        let mut cursor = row_offset.clone();
        for (e, &(s, d)) in edges.iter().enumerate() {
            let slot = cursor[s as usize];
            cursor[s as usize] += 1;
            col_indices[slot] = d;
            eids[slot] = e as u32;
        }
        Csr::from_parts(row_offset, col_indices, eids)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.row_offset.len() - 1
    }

    /// Number of valid edges (gaps excluded).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Valid-slot degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.iter_row(i).count()
    }

    /// Iterates vertex `i`'s valid `(neighbour, eid)` slots, skipping gaps.
    pub fn iter_row(&self, i: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.row_offset[i];
        let hi = self.row_offset[i + 1];
        self.col_indices[lo..hi]
            .iter()
            .zip(&self.eids[lo..hi])
            .filter(|(&c, _)| c != SPACE)
            .map(|(&c, &e)| (c, e))
    }

    /// Degrees of all vertices (valid slots only).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_nodes())
            .map(|i| self.degree(i) as u32)
            .collect()
    }

    /// Bytes charged against the memory tracker for this CSR.
    pub fn bytes(&self) -> usize {
        self.charge.bytes()
    }

    /// Collects `(src, dst, eid)` triples in row order (test/debug helper).
    pub fn triples(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for i in 0..self.num_nodes() {
            for (d, e) in self.iter_row(i) {
                out.push((i as u32, d, e));
            }
        }
        out
    }
}

/// Vertices sorted by descending degree (stable: ties keep id order). This is
/// the `node_ids` auxiliary array of Figure 3 — it avoids relabelling the CSR
/// per snapshot while still scheduling high-degree vertices first.
pub fn degree_sorted_ids(degree: &[u32]) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..degree.len() as u32).collect();
    ids.sort_by(|&a, &b| degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b)));
    ids
}

/// Parallel reverse-CSR construction — Algorithm 3 of the paper, with
/// `atomic_sub` claiming slots exactly as the CUDA kernel does.
///
/// Input: a (possibly gapped) out-neighbour CSR and the in-degree array.
/// Output: a dense in-neighbour CSR carrying the same edge ids.
pub fn reverse_csr(g: &Csr, in_degrees: &[u32]) -> Csr {
    let n = g.num_nodes();
    assert_eq!(in_degrees.len(), n);
    let m: usize = in_degrees.iter().map(|&d| d as usize).sum();
    debug_assert_eq!(m, g.num_edges(), "in-degrees inconsistent with CSR");

    // r_row_offset = inclusive prefix sum of in_degrees: slot *ends*.
    let mut ends = vec![0usize; n];
    let mut acc = 0usize;
    for i in 0..n {
        acc += in_degrees[i] as usize;
        ends[i] = acc;
    }
    let cursor: Vec<AtomicUsize> = ends.iter().map(|&e| AtomicUsize::new(e)).collect();

    let mut r_col = vec![0u32; m];
    let mut r_eids = vec![0u32; m];
    {
        // Writes are disjoint: each (dst) slot index is claimed exactly once
        // via fetch_sub, so raw pointer writes are race-free.
        struct Shared(*mut u32, *mut u32);
        unsafe impl Sync for Shared {}
        let shared = Shared(r_col.as_mut_ptr(), r_eids.as_mut_ptr());
        let body = |i: usize| {
            let shared = &shared;
            for (dst, eid) in g.iter_row(i) {
                // `loc = atomic_sub(r_row_offset[dst], 1)` then write at
                // loc-1 (the paper's pseudo-code returns the decremented
                // value; fetch_sub returns the previous one).
                let loc = cursor[dst as usize].fetch_sub(1, Ordering::Relaxed) - 1;
                unsafe {
                    *shared.0.add(loc) = i as u32;
                    *shared.1.add(loc) = eid;
                }
            }
        };
        if m >= stgraph_tensor::par_min() {
            (0..n).into_par_iter().for_each(body);
        } else {
            (0..n).for_each(body);
        }
    }

    // After all decrements each cursor holds the slot *start*; assemble the
    // standard (n+1)-length offsets.
    let mut r_row_offset = Vec::with_capacity(n + 1);
    for c in &cursor {
        r_row_offset.push(c.load(Ordering::Relaxed));
    }
    r_row_offset.push(m);
    Csr::from_parts(r_row_offset, r_col, r_eids)
}

/// Sequential transpose used as the correctness oracle for [`reverse_csr`].
pub fn reverse_csr_sequential(g: &Csr, num_nodes: usize) -> Csr {
    let mut in_deg = vec![0usize; num_nodes];
    for i in 0..g.num_nodes() {
        for (d, _) in g.iter_row(i) {
            in_deg[d as usize] += 1;
        }
    }
    let mut row_offset = vec![0usize; num_nodes + 1];
    for i in 0..num_nodes {
        row_offset[i + 1] = row_offset[i] + in_deg[i];
    }
    let m = row_offset[num_nodes];
    let mut col = vec![0u32; m];
    let mut eids = vec![0u32; m];
    let mut cursor = row_offset.clone();
    for i in 0..g.num_nodes() {
        for (d, e) in g.iter_row(i) {
            let slot = cursor[d as usize];
            cursor[d as usize] += 1;
            col[slot] = i as u32;
            eids[slot] = e;
        }
    }
    Csr::from_parts(row_offset, col, eids)
}

/// Checks two CSRs describe the same labelled edge multiset per row
/// (slot order within a row is allowed to differ — the parallel kernel's
/// interleaving is nondeterministic).
pub fn same_rows(a: &Csr, b: &Csr) -> bool {
    if a.num_nodes() != b.num_nodes() {
        return false;
    }
    for i in 0..a.num_nodes() {
        let mut ra: Vec<_> = a.iter_row(i).collect();
        let mut rb: Vec<_> = b.iter_row(i).collect();
        ra.sort_unstable();
        rb.sort_unstable();
        if ra != rb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The worked example of Figure 3: V2 has out-degree 3, V0 and V1 have 2,
    /// V3 has 0; node_ids must order them [2, 0, 1, 3].
    #[test]
    fn figure3_node_ids_order() {
        let edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 0), (2, 1), (2, 3)];
        let g = Csr::from_edges(4, &edges);
        assert_eq!(g.node_ids, vec![2, 0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn from_edges_roundtrips_triples() {
        let edges = [(0u32, 1u32), (2, 0), (1, 2), (0, 2)];
        let g = Csr::from_edges(3, &edges);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        let mut t = g.triples();
        t.sort_unstable();
        // Edge e keeps label e.
        assert_eq!(t, vec![(0, 1, 0), (0, 2, 3), (1, 2, 2), (2, 0, 1)]);
    }

    #[test]
    fn gapped_rows_are_skipped() {
        // Row 0 has slots [1, SPACE, 2]; row 1 empty; degrees must ignore
        // the gap.
        let g = Csr::from_parts(vec![0, 3, 3], vec![1, SPACE, 2], vec![0, 99, 1]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.iter_row(0).collect::<Vec<_>>(), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn reverse_matches_sequential_small() {
        let edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 0), (2, 1), (2, 3)];
        let g = Csr::from_edges(4, &edges);
        let rev_par = reverse_csr(&g, &reverse_csr_sequential(&g, 4).degrees());
        let rev_seq = reverse_csr_sequential(&g, 4);
        assert!(same_rows(&rev_par, &rev_seq));
        // Shared labels: eid e appears exactly once in each CSR, linking the
        // same (src, dst).
        let fwd: std::collections::HashMap<u32, (u32, u32)> = g
            .triples()
            .into_iter()
            .map(|(s, d, e)| (e, (s, d)))
            .collect();
        for (d, s, e) in rev_par.triples() {
            assert_eq!(fwd[&e], (s, d), "edge {e} disagrees between CSRs");
        }
    }

    #[test]
    fn reverse_matches_sequential_random_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 500usize;
        let m = 20_000usize;
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let g = Csr::from_edges(n, &edges);
        let seq = reverse_csr_sequential(&g, n);
        let par = reverse_csr(&g, &seq.degrees());
        assert!(same_rows(&par, &seq));
        assert_eq!(par.num_edges(), m);
    }

    #[test]
    fn reverse_of_gapped_csr_is_dense() {
        let g = Csr::from_parts(
            vec![0, 3, 4, 6],
            vec![1, SPACE, 2, 2, SPACE, 0],
            vec![0, 99, 1, 2, 98, 3],
        );
        let seq = reverse_csr_sequential(&g, 3);
        let par = reverse_csr(&g, &seq.degrees());
        assert!(same_rows(&par, &seq));
        assert_eq!(par.num_edges(), 4);
        assert!(par.col_indices.iter().all(|&c| c != SPACE));
    }

    #[test]
    fn degree_sorted_ids_stable_on_ties() {
        assert_eq!(degree_sorted_ids(&[1, 3, 3, 0, 2]), vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(5, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.node_ids.len(), 5);
        let r = reverse_csr(&g, &[0; 5]);
        assert_eq!(r.num_edges(), 0);
    }

    #[test]
    fn bytes_accounts_all_arrays() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        // 4 offsets * 8 + (2 cols + 2 eids + 3 node_ids) * 4
        assert_eq!(g.bytes(), 4 * 8 + 7 * 4);
    }
}
