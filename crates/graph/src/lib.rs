//! # stgraph-graph
//!
//! Graph storage for the STGraph reproduction: CSR / reverse-CSR arrays with
//! shared edge labels and GPMA-style gaps, the parallel reverse-CSR kernel
//! (paper Algorithm 3), the degree-sorted `node_ids` scheduling order
//! (Figure 3), and the `STGraphBase` abstraction with its static subclass
//! (Figure 4).

#![warn(missing_docs)]

pub mod base;
pub mod csr;

pub use base::{dense_adjacency, gcn_norm, STGraphBase, Snapshot, StaticGraph};
pub use csr::{degree_sorted_ids, reverse_csr, reverse_csr_sequential, same_rows, Csr, SPACE};
