//! The `STGraphBase` graph abstraction (Figure 4) and its static subclass.
//!
//! The abstraction unifies how the framework sees static-temporal graphs and
//! DTDG snapshots. Per §V.B it must provide: forward and backward CSRs,
//! degree-sorted vertex order, shared edge labels, and graph properties
//! (node/edge counts, in/out degrees). Dynamic implementations
//! (`NaiveGraph`, `GPMAGraph`) live in `stgraph-dyngraph` and hand out
//! [`Snapshot`]s through the same interface.

use crate::csr::{reverse_csr, Csr};
use std::sync::Arc;

/// A fully-materialised view of one graph timestamp, ready for the kernels.
///
/// `csr` is the out-neighbour CSR consumed by the *backward* pass (it may
/// contain GPMA gaps); `reverse_csr` is the dense in-neighbour CSR consumed
/// by the *forward* pass. Both carry the same edge labels.
#[derive(Clone)]
pub struct Snapshot {
    /// Out-neighbour CSR (backward pass).
    pub csr: Arc<Csr>,
    /// In-neighbour CSR (forward pass).
    pub reverse_csr: Arc<Csr>,
    /// In-degree per vertex.
    pub in_degrees: Arc<Vec<u32>>,
    /// Out-degree per vertex.
    pub out_degrees: Arc<Vec<u32>>,
}

impl Snapshot {
    /// Builds a snapshot from an out-neighbour CSR, deriving the reverse CSR
    /// with the parallel Algorithm-3 kernel.
    pub fn from_csr(csr: Csr) -> Snapshot {
        let n = csr.num_nodes();
        let mut in_deg = vec![0u32; n];
        for i in 0..n {
            for (d, _) in csr.iter_row(i) {
                in_deg[d as usize] += 1;
            }
        }
        Snapshot::from_csr_with_in_degrees(csr, in_deg)
    }

    /// [`Snapshot::from_csr`] when the caller already holds the in-degree
    /// array (the GPMA view computes it while scanning its slots); skips
    /// the extra O(slots) recount over the gapped CSR.
    pub fn from_csr_with_in_degrees(csr: Csr, in_deg: Vec<u32>) -> Snapshot {
        debug_assert_eq!(in_deg.len(), csr.num_nodes());
        let rev = {
            let _sp = stgraph_telemetry::span_cat("snapshot.reverse_csr", "snapshot");
            reverse_csr(&csr, &in_deg)
        };
        let out_deg = csr.degrees();
        Snapshot {
            csr: Arc::new(csr),
            reverse_csr: Arc::new(rev),
            in_degrees: Arc::new(in_deg),
            out_degrees: Arc::new(out_deg),
        }
    }

    /// Builds a snapshot from a COO edge list with canonical edge labels.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::from_csr(Csr::from_edges(num_nodes, edges))
    }

    /// Structural equality (same labelled edges per row, order-insensitive).
    pub fn same_structure(&self, other: &Snapshot) -> bool {
        crate::csr::same_rows(&self.csr, &other.csr)
            && crate::csr::same_rows(&self.reverse_csr, &other.reverse_csr)
    }
}

/// The `STGraphBase` abstraction: every graph the framework processes —
/// static or one DTDG timestamp — exposes this interface.
pub trait STGraphBase {
    /// Number of vertices.
    fn num_nodes(&self) -> usize;
    /// Number of edges.
    fn num_edges(&self) -> usize;
    /// Out-neighbour CSR (backward pass).
    fn csr(&self) -> &Csr;
    /// In-neighbour CSR (forward pass); shares edge labels with [`Self::csr`].
    fn reverse_csr(&self) -> &Csr;
    /// In-degree per vertex.
    fn in_degrees(&self) -> &[u32];
    /// Out-degree per vertex.
    fn out_degrees(&self) -> &[u32];
}

impl STGraphBase for Snapshot {
    fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    fn csr(&self) -> &Csr {
        &self.csr
    }

    fn reverse_csr(&self) -> &Csr {
        &self.reverse_csr
    }

    fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
}

/// A static graph (fixed structure; features may still vary over time —
/// the "static-temporal" case of Definition II.1). Pre-processing happens
/// once, ahead of training, exactly as Seastar does for static graphs.
pub struct StaticGraph {
    snapshot: Snapshot,
    /// Original COO edge list (kept for loaders/baselines).
    pub edges: Vec<(u32, u32)>,
}

impl StaticGraph {
    /// Builds and pre-processes a static graph from a COO edge list.
    pub fn new(num_nodes: usize, edges: Vec<(u32, u32)>) -> StaticGraph {
        let snapshot = Snapshot::from_edges(num_nodes, &edges);
        StaticGraph { snapshot, edges }
    }

    /// The single pre-processed snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Edge density m / n².
    pub fn density(&self) -> f64 {
        let n = self.num_nodes() as f64;
        self.num_edges() as f64 / (n * n)
    }
}

impl STGraphBase for StaticGraph {
    fn num_nodes(&self) -> usize {
        self.snapshot.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.snapshot.num_edges()
    }

    fn csr(&self) -> &Csr {
        self.snapshot.csr()
    }

    fn reverse_csr(&self) -> &Csr {
        self.snapshot.reverse_csr()
    }

    fn in_degrees(&self) -> &[u32] {
        self.snapshot.in_degrees()
    }

    fn out_degrees(&self) -> &[u32] {
        self.snapshot.out_degrees()
    }
}

/// GCN symmetric normalisation with self-loops: `1 / sqrt(1 + in_degree)`.
/// Matches PyG's `GCNConv(add_self_loops=True)` on directed graphs.
pub fn gcn_norm(in_degrees: &[u32]) -> Vec<f32> {
    in_degrees
        .iter()
        .map(|&d| 1.0 / ((1.0 + d as f32).sqrt()))
        .collect()
}

/// Oracle helper: dense adjacency from a snapshot (tests only; O(n²)).
pub fn dense_adjacency(s: &Snapshot) -> Vec<Vec<f32>> {
    let n = s.num_nodes();
    let mut a = vec![vec![0.0f32; n]; n];
    for (i, row) in a.iter_mut().enumerate() {
        for (d, _) in s.csr.iter_row(i) {
            row[d as usize] += 1.0;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SPACE;

    fn diamond() -> Snapshot {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn snapshot_degrees() {
        let s = diamond();
        assert_eq!(s.out_degrees.as_slice(), &[2, 1, 1, 0]);
        assert_eq!(s.in_degrees.as_slice(), &[0, 1, 1, 2]);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 4);
    }

    #[test]
    fn forward_and_backward_share_edge_labels() {
        let s = diamond();
        let fwd: std::collections::HashMap<u32, (u32, u32)> = s
            .csr
            .triples()
            .into_iter()
            .map(|(a, b, e)| (e, (a, b)))
            .collect();
        for (dst, src, e) in s.reverse_csr.triples() {
            assert_eq!(fwd[&e], (src, dst));
        }
    }

    #[test]
    fn snapshot_from_gapped_csr() {
        let csr = Csr::from_parts(
            vec![0, 3, 4, 6],
            vec![1, SPACE, 2, 2, SPACE, 0],
            vec![0, 7, 1, 2, 9, 3],
        );
        let s = Snapshot::from_csr(csr);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.in_degrees.as_slice(), &[1, 1, 2]);
        // Reverse CSR must be dense even though the source was gapped.
        assert!(s.reverse_csr.col_indices.iter().all(|&c| c != SPACE));
    }

    #[test]
    fn static_graph_density() {
        let g = StaticGraph::new(4, vec![(0, 1), (1, 2)]);
        assert!((g.density() - 2.0 / 16.0).abs() < 1e-12);
        assert_eq!(g.snapshot().num_edges(), 2);
    }

    #[test]
    fn gcn_norm_formula() {
        let norms = gcn_norm(&[0, 3, 8]);
        assert!((norms[0] - 1.0).abs() < 1e-6);
        assert!((norms[1] - 0.5).abs() < 1e-6);
        assert!((norms[2] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn same_structure_detects_difference() {
        let a = diamond();
        let b = Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 1)]);
        assert!(a.same_structure(&diamond()));
        assert!(!a.same_structure(&b));
    }

    #[test]
    fn dense_adjacency_matches_csr() {
        let s = diamond();
        let a = dense_adjacency(&s);
        assert_eq!(a[0][1], 1.0);
        assert_eq!(a[0][2], 1.0);
        assert_eq!(a[1][3], 1.0);
        assert_eq!(a[3][0], 0.0);
    }
}
