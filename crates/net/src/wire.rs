//! The length-prefixed binary protocol, and the one inference-payload
//! encoding both protocols share.
//!
//! ## Framing
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! u32 LE body_len | body_len bytes
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are rejected before allocation, so a
//! hostile length prefix cannot balloon memory.
//!
//! ## Request body
//!
//! ```text
//! u8 opcode
//!   INFER (1):  u16 LE tenant_len | tenant utf8 | u32 LE node
//!   INGEST (2): u16 LE tenant_len | tenant utf8
//!               | u32 LE n_add | n_add × (u32 LE src, u32 LE dst)
//!               | u32 LE n_del | n_del × (u32 LE src, u32 LE dst)
//!   PING (3):   (empty)
//! ```
//!
//! ## Response body
//!
//! ```text
//! u8 status
//!   OK (0):     opcode-specific payload (INFER → infer payload, others empty)
//!   errors:     u16 LE message_len | message utf8
//! ```
//!
//! ## The shared inference payload
//!
//! [`encode_infer_payload`] is the *only* serialiser for inference answers
//! in the whole tier: the HTTP handler returns exactly these bytes as an
//! `application/octet-stream` body and the binary handler puts them after
//! the OK status byte. Bitwise identity between the two protocols is
//! therefore a property of the code shape, not a test-enforced convention
//! (the `net_e2e` integration test pins it anyway).
//!
//! ```text
//! u32 LE node | u64 LE generation | u32 LE width | width × f32 LE (raw bits)
//! ```

use std::io::{self, Read, Write};

/// Upper bound on one frame's body. Large enough for any realistic ingest
/// batch, small enough that a corrupt length prefix fails fast.
pub const MAX_FRAME: usize = 16 << 20;

/// Request opcodes (first body byte).
pub mod opcode {
    /// Node inference for a tenant's model.
    pub const INFER: u8 = 1;
    /// Stream advance: a batch of edge additions/deletions.
    pub const INGEST: u8 = 2;
    /// Liveness probe; the binary protocol's `/healthz`.
    pub const PING: u8 = 3;
}

/// Response status codes (first body byte). Each maps 1:1 onto the HTTP
/// status the other protocol would have returned — see
/// [`http_status`](crate::server::NetError::http_status).
pub mod status {
    /// Success; payload follows.
    pub const OK: u8 = 0;
    /// Malformed request (HTTP 400).
    pub const BAD_REQUEST: u8 = 1;
    /// Tenant has no published model (HTTP 404).
    pub const UNKNOWN_TENANT: u8 = 2;
    /// Tenant exceeded its token-bucket rate quota (HTTP 429).
    pub const RATE_LIMITED: u8 = 3;
    /// Shed: tenant concurrency cap or engine queue full (HTTP 503).
    pub const OVERLOADED: u8 = 4;
    /// Query expired in the engine queue (HTTP 504).
    pub const DEADLINE: u8 = 5;
    /// Engine-side failure; the request is lost but the server lives
    /// (HTTP 500).
    pub const INTERNAL: u8 = 6;
    /// The server is draining for shutdown (HTTP 503).
    pub const SHUTTING_DOWN: u8 = 7;
}

/// Encodes one inference answer. The single source of truth for the bytes
/// a client sees, whichever protocol it spoke.
pub fn encode_infer_payload(node: u32, generation: u64, values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + values.len() * 4);
    out.extend_from_slice(&node.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decodes [`encode_infer_payload`] bytes. Returns `None` on any length or
/// width mismatch.
pub fn decode_infer_payload(bytes: &[u8]) -> Option<(u32, u64, Vec<f32>)> {
    let mut c = Cursor::new(bytes);
    let node = c.u32()?;
    let generation = c.u64()?;
    let width = c.u32()? as usize;
    let mut values = Vec::with_capacity(width.min(1 << 20));
    for _ in 0..width {
        values.push(f32::from_bits(c.u32()?));
    }
    if c.rest().is_empty() {
        Some((node, generation, values))
    } else {
        None
    }
}

/// Writes one frame (length prefix + body).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. `Ok(None)` on clean EOF (the peer closed between
/// frames); an EOF mid-frame or an oversized length prefix is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            n => got += n,
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// A parsed binary-protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Inference for `node` against `tenant`'s current model.
    Infer {
        /// Tenant whose model answers.
        tenant: String,
        /// Node id to embed.
        node: u32,
    },
    /// Advance the shared live graph by one update batch.
    Ingest {
        /// Tenant charged for the update (admission applies).
        tenant: String,
        /// Edges to insert.
        additions: Vec<(u32, u32)>,
        /// Edges to delete.
        deletions: Vec<(u32, u32)>,
    },
    /// Liveness probe.
    Ping,
}

/// Encodes a request body (no frame prefix — pair with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Infer { tenant, node } => {
            out.push(opcode::INFER);
            push_str(&mut out, tenant);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::Ingest {
            tenant,
            additions,
            deletions,
        } => {
            out.push(opcode::INGEST);
            push_str(&mut out, tenant);
            push_edges(&mut out, additions);
            push_edges(&mut out, deletions);
        }
        Request::Ping => out.push(opcode::PING),
    }
    out
}

/// Decodes a request body. Errors name the first malformed field.
pub fn decode_request(body: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(body);
    let op = c.u8().ok_or("empty request body")?;
    let req = match op {
        opcode::INFER => Request::Infer {
            tenant: c.str().ok_or("bad tenant field")?,
            node: c.u32().ok_or("missing node id")?,
        },
        opcode::INGEST => Request::Ingest {
            tenant: c.str().ok_or("bad tenant field")?,
            additions: c.edges().ok_or("bad additions list")?,
            deletions: c.edges().ok_or("bad deletions list")?,
        },
        opcode::PING => Request::Ping,
        other => return Err(format!("unknown opcode {other}")),
    };
    if c.rest().is_empty() {
        Ok(req)
    } else {
        Err(format!("{} trailing bytes after request", c.rest().len()))
    }
}

/// A binary-protocol response: OK with an opcode-specific payload, or a
/// typed error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success. For `INFER` the payload is [`encode_infer_payload`] bytes;
    /// for `INGEST`/`PING` it is empty.
    Ok(Vec<u8>),
    /// Typed failure; `code` is one of the [`status`] constants.
    Err {
        /// One of the non-OK [`status`] constants.
        code: u8,
        /// Human-readable detail, mirrored from the HTTP body.
        message: String,
    },
}

/// Encodes a response body (no frame prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok(payload) => {
            out.push(status::OK);
            out.extend_from_slice(payload);
        }
        Response::Err { code, message } => {
            out.push(*code);
            push_str(&mut out, message);
        }
    }
    out
}

/// Decodes a response body.
pub fn decode_response(body: &[u8]) -> Result<Response, String> {
    let mut c = Cursor::new(body);
    let code = c.u8().ok_or("empty response body")?;
    if code == status::OK {
        return Ok(Response::Ok(c.rest().to_vec()));
    }
    let message = c.str().ok_or("bad error message field")?;
    Ok(Response::Err { code, message })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn push_edges(out: &mut Vec<u8>, edges: &[(u32, u32)]) {
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for (s, d) in edges {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = u16::from_le_bytes(self.take(2)?.try_into().ok()?) as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn edges(&mut self) -> Option<Vec<(u32, u32)>> {
        let n = self.u32()? as usize;
        // Each edge is 8 bytes; reject counts the remaining buffer cannot hold.
        if n > (self.buf.len() - self.pos) / 8 {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push((self.u32()?, self.u32()?));
        }
        Some(v)
    }

    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_payload_roundtrip_is_exact() {
        let values = vec![1.0f32, -0.5, f32::MIN_POSITIVE, 0.0, -0.0];
        let bytes = encode_infer_payload(7, 42, &values);
        let (node, generation, got) = decode_infer_payload(&bytes).unwrap();
        assert_eq!(node, 7);
        assert_eq!(generation, 42);
        assert_eq!(got.len(), values.len());
        for (a, b) in got.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits(), "bitwise roundtrip");
        }
        assert!(decode_infer_payload(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Ping,
            Request::Infer {
                tenant: "acme".into(),
                node: 12,
            },
            Request::Ingest {
                tenant: "züri".into(),
                additions: vec![(0, 1), (2, 3)],
                deletions: vec![(4, 5)],
            },
        ] {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).unwrap(), req);
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        let mut trailing = encode_request(&Request::Ping);
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Ok(vec![1, 2, 3]),
            Response::Err {
                code: status::RATE_LIMITED,
                message: "quota".into(),
            },
        ] {
            let body = encode_response(&resp);
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let torn = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &torn[..]).is_err(), "eof mid-frame");
    }

    #[test]
    fn ingest_edge_count_is_bounds_checked() {
        // Claims u32::MAX additions with no bytes behind the claim.
        let mut body = vec![opcode::INGEST, 1, 0, b'a'];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&body).is_err());
    }
}
