//! A hand-rolled HTTP/1.1 server side — just enough of RFC 9112 for the
//! serve tier, with hard limits everywhere a peer controls an allocation.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! percent-encoded query strings, keep-alive (1.1 default) and
//! `Connection: close`. Not supported (rejected, not mis-parsed): chunked
//! transfer encoding, HTTP/1.0 keep-alive, multiline headers, duplicate
//! `Content-Length` headers (a request-smuggling shape on keep-alive).

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
const MAX_BODY: usize = crate::wire::MAX_FRAME;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (`/infer`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers in order of appearance; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `key` (ASCII case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one request. `Ok(None)` on clean EOF before any byte of the next
/// request (the keep-alive peer hung up); anything torn or over-limit is an
/// `InvalidData` error the caller answers with 400 or just drops.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<HttpRequest>> {
    let Some(request_line) = read_line(r, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad("malformed request line"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, false)?.ok_or_else(|| bad("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = content_length(&headers)?;
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(bad("chunked transfer encoding unsupported"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let path = percent_decode(raw_path).ok_or_else(|| bad("bad path encoding"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((
            percent_decode(k).ok_or_else(|| bad("bad query encoding"))?,
            percent_decode(v).ok_or_else(|| bad("bad query encoding"))?,
        ));
    }

    Ok(Some(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Writes one response with `Content-Length` framing. `extra_headers` lets
/// handlers attach e.g. `Retry-After`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        status_reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reason phrase for the status codes this tier emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Decodes `%XX` escapes and `+`-as-space. `None` on torn escapes or
/// non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Client side: writes one request with an optional body. Used by the
/// load generator and the integration tests — kept here so client and
/// server framing can never drift apart.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: stgraph\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A parsed client-side response: `(status, headers, body)`.
pub type ResponseParts = (u16, Vec<(String, String)>, Vec<u8>);

/// Client side: reads one response, returning `(status, headers, body)`.
/// Only `Content-Length` framing is supported (which is all
/// [`write_response`] emits).
pub fn read_response(r: &mut impl BufRead) -> io::Result<ResponseParts> {
    let status_line = read_line(r, false)?.ok_or_else(|| bad("eof before status line"))?;
    let mut parts = status_line.split(' ');
    if parts.next().map(|v| v.starts_with("HTTP/1.")) != Some(true) {
        return Err(bad("malformed status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status code"))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, false)?.ok_or_else(|| bad("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = content_length(&headers)?;
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok((status, headers, body))
}

/// Reads one CRLF (or bare-LF) terminated line, bounded by [`MAX_LINE`].
/// `Ok(None)` only when `eof_ok` and zero bytes arrived.
fn read_line(r: &mut impl BufRead, eof_ok: bool) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte)?;
        if n == 0 {
            if line.is_empty() && eof_ok {
                return Ok(None);
            }
            return Err(bad("eof mid-line"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| bad("non-utf8 header line"));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(bad("line too long"));
        }
    }
}

/// The message's body length. More than one `Content-Length` header is an
/// outright rejection (even when the values agree): if this parser and an
/// intermediary ever disagreed on which copy frames the body, a keep-alive
/// connection would desync into request smuggling. A comma-joined list
/// (`5, 5`) fails the integer parse for the same reason.
fn content_length(headers: &[(String, String)]) -> io::Result<usize> {
    let mut lengths = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v);
    let Some(first) = lengths.next() else {
        return Ok(0);
    };
    if lengths.next().is_some() {
        return Err(bad("duplicate content-length"));
    }
    first
        .parse::<usize>()
        .map_err(|_| bad("bad content-length"))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> io::Result<Option<HttpRequest>> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /infer?tenant=acme%20co&node=7 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/infer");
        assert_eq!(req.query_param("tenant"), Some("acme co"));
        assert_eq!(req.query_param("node"), Some("7"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_and_connection_close() {
        let req = parse(
            b"POST /ingest?tenant=a HTTP/1.1\r\nContent-Length: 8\r\nConnection: close\r\n\r\n+ 1 2\n- ",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"+ 1 2\n- ");
        assert!(req.wants_close());
    }

    #[test]
    fn keep_alive_reads_two_requests_then_clean_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert_eq!(read_request(&mut r).unwrap().unwrap().path, "/healthz");
        assert_eq!(read_request(&mut r).unwrap().unwrap().path, "/metrics");
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(parse(b"BROKEN\r\n\r\n").is_err());
        assert!(parse(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(parse(long.as_bytes()).is_err());
        assert!(parse(b"GET /a%zz HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Conflicting copies: classic request-smuggling shape.
        assert!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 0\r\n\r\nhello")
                .is_err()
        );
        // Even agreeing copies are rejected — no intermediary disagreement
        // about which one frames the body is ever possible.
        assert!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
                .is_err()
        );
        // Comma-joined list fails the integer parse.
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello").is_err());
        // The client-side response parser applies the same rule.
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok";
        assert!(read_response(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn response_has_length_framing_and_extra_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "text/plain",
            &[("retry-after", "1".to_string())],
            b"slow down\n",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 10\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("slow down\n"));
    }

    #[test]
    fn client_and_server_framing_roundtrip() {
        let mut raw = Vec::new();
        write_request(&mut raw, "POST", "/ingest?tenant=a", b"+ 1 2\n").unwrap();
        let req = parse(&raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ingest");
        assert_eq!(req.body, b"+ 1 2\n");

        let mut raw = Vec::new();
        write_response(
            &mut raw,
            200,
            "application/octet-stream",
            &[],
            &[9, 8, 7],
            false,
        )
        .unwrap();
        let (status, headers, body) = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, vec![9, 8, 7]);
        assert!(headers
            .iter()
            .any(|(k, v)| k == "content-type" && v == "application/octet-stream"));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c").unwrap(), "a/b c");
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%gg").is_none());
    }
}
