//! Per-tenant admission control: token-bucket rate quotas plus concurrency
//! caps, sitting *in front of* the engine's own Overloaded/deadline
//! shedding.
//!
//! The layering is deliberate: the engine's queue cap protects the engine
//! (global, tenant-blind); admission protects tenants from *each other*.
//! A tenant that blows through its quota gets a typed 429 with a
//! `Retry-After`, while its neighbours' requests still reach the queue —
//! the isolation property the load generator measures.
//!
//! [`TokenBucket`] is deterministic by construction: time is an injected
//! `now_ns` (the controller feeds it a monotonic reading; tests feed it
//! literals), and all arithmetic is integer nano-tokens, so refill
//! boundaries are exact and unit-testable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One token = one admitted request, tracked in nano-tokens so a
/// `rate_per_s` of 3 refills exactly 3 tokens every `1e9` ns with no drift.
const NANOS_PER_TOKEN: u128 = 1_000_000_000;

/// A deterministic token bucket. Starts full.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_s: u64,
    capacity_nt: u128,
    level_nt: u128,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_s` tokens/second, holding at most
    /// `burst` tokens. A zero rate never refills; a zero burst never
    /// admits.
    pub fn new(rate_per_s: u64, burst: u64) -> TokenBucket {
        let capacity_nt = burst as u128 * NANOS_PER_TOKEN;
        TokenBucket {
            rate_per_s,
            capacity_nt,
            level_nt: capacity_nt,
            last_ns: 0,
        }
    }

    /// Tries to take one token at `now_ns` (monotonic, nanoseconds).
    /// `Err(retry_after)` when empty: `Some(d)` says when one token will
    /// exist, `None` means never (zero quota). A `now_ns` earlier than the
    /// last call counts as zero elapsed time.
    pub fn try_acquire_at(&mut self, now_ns: u64) -> Result<(), Option<Duration>> {
        let elapsed = now_ns.saturating_sub(self.last_ns) as u128;
        self.last_ns = self.last_ns.max(now_ns);
        // tokens/s gained over `elapsed` ns is exactly `rate * elapsed` nt.
        self.level_nt = (self.level_nt + elapsed * self.rate_per_s as u128).min(self.capacity_nt);
        if self.level_nt >= NANOS_PER_TOKEN {
            self.level_nt -= NANOS_PER_TOKEN;
            return Ok(());
        }
        if self.rate_per_s == 0 {
            return Err(None);
        }
        let deficit = NANOS_PER_TOKEN - self.level_nt;
        let wait_ns = deficit.div_ceil(self.rate_per_s as u128);
        Err(Some(Duration::from_nanos(wait_ns as u64)))
    }
}

/// A tenant's admission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Sustained admitted requests per second (token-bucket refill rate).
    pub rate_per_s: u64,
    /// Burst allowance (token-bucket capacity).
    pub burst: u64,
    /// Requests in flight (admitted, not yet answered) at once.
    pub max_inflight: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            rate_per_s: 500,
            burst: 100,
            max_inflight: 32,
        }
    }
}

/// Why a request was refused before reaching the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Token bucket empty → HTTP 429 / wire `RATE_LIMITED`. `retry_after`
    /// is `None` for zero-quota tenants (retrying never helps).
    RateLimited {
        /// When one token will exist, if ever.
        retry_after: Option<Duration>,
    },
    /// Concurrency cap hit → HTTP 503 / wire `OVERLOADED`, the same shed
    /// class as the engine's full queue.
    TooManyInFlight {
        /// The cap that was hit.
        limit: u64,
    },
}

struct TenantState {
    bucket: TokenBucket,
    quota: TenantQuota,
    inflight: Arc<AtomicU64>,
}

/// Thread-safe per-tenant admission. Unknown tenants get the default
/// quota on first sight; [`AdmissionController::set_quota`] overrides per
/// tenant (resetting its bucket, keeping its in-flight count). First sight
/// allocates per-tenant state, so callers must bound the name universe —
/// the network tier registry-validates every tenant before admitting it,
/// keeping this table sized by published tenants, not by peer input.
pub struct AdmissionController {
    start: Instant,
    default_quota: TenantQuota,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl AdmissionController {
    /// A controller handing `default_quota` to tenants it has not seen.
    pub fn new(default_quota: TenantQuota) -> AdmissionController {
        AdmissionController {
            start: Instant::now(),
            default_quota,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides one tenant's quota (and refills its bucket to the new
    /// burst). The tenant's in-flight counter is preserved: outstanding
    /// [`InflightGuard`]s decrement the counter new admissions are checked
    /// against, so a quota change can never let the concurrency cap be
    /// transiently exceeded by requests admitted under the old quota.
    pub fn set_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = TokenBucket::new(quota.rate_per_s, quota.burst);
        match map.entry(tenant.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let st = e.get_mut();
                st.bucket = bucket;
                st.quota = quota;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(TenantState {
                    bucket,
                    quota,
                    inflight: Arc::new(AtomicU64::new(0)),
                });
            }
        }
    }

    /// Admits or refuses one request at the current time. On success the
    /// returned guard holds the tenant's in-flight slot until dropped —
    /// keep it alive across the full engine round-trip so the concurrency
    /// cap covers queue wait, not just submission.
    pub fn admit(&self, tenant: &str) -> Result<InflightGuard, AdmissionError> {
        self.admit_at(tenant, self.start.elapsed().as_nanos() as u64)
    }

    /// [`AdmissionController::admit`] with an explicit clock, for
    /// deterministic tests.
    pub fn admit_at(&self, tenant: &str, now_ns: u64) -> Result<InflightGuard, AdmissionError> {
        let mut map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let st = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                bucket: TokenBucket::new(self.default_quota.rate_per_s, self.default_quota.burst),
                quota: self.default_quota,
                inflight: Arc::new(AtomicU64::new(0)),
            });
        // Concurrency before rate: a capped-out request must not burn a
        // token it never got to use.
        if st.inflight.load(Ordering::Acquire) >= st.quota.max_inflight {
            return Err(AdmissionError::TooManyInFlight {
                limit: st.quota.max_inflight,
            });
        }
        st.bucket
            .try_acquire_at(now_ns)
            .map_err(|retry_after| AdmissionError::RateLimited { retry_after })?;
        st.inflight.fetch_add(1, Ordering::AcqRel);
        Ok(InflightGuard {
            inflight: Arc::clone(&st.inflight),
        })
    }

    /// A tenant's current in-flight count (0 for unseen tenants).
    pub fn inflight(&self, tenant: &str) -> u64 {
        let map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        map.get(tenant)
            .map_or(0, |st| st.inflight.load(Ordering::Acquire))
    }
}

/// RAII in-flight slot; dropping it (response written, or request failed
/// downstream) releases the tenant's concurrency budget.
#[derive(Debug)]
pub struct InflightGuard {
    inflight: Arc<AtomicU64>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_refill_boundaries_are_exact() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_acquire_at(0).is_ok(), "starts full");
        // One nanosecond short of a full token: refused, and the retry
        // hint names the exact missing nanosecond.
        assert_eq!(
            b.try_acquire_at(SEC - 1),
            Err(Some(Duration::from_nanos(1)))
        );
        assert!(b.try_acquire_at(SEC).is_ok(), "exactly refilled");
        assert!(b.try_acquire_at(SEC).is_err(), "and spent again");
    }

    #[test]
    fn bucket_burst_is_capacity_then_rate() {
        let mut b = TokenBucket::new(10, 5);
        for i in 0..5 {
            assert!(b.try_acquire_at(0).is_ok(), "burst token {i}");
        }
        assert_eq!(
            b.try_acquire_at(0),
            Err(Some(Duration::from_nanos(SEC / 10)))
        );
        // At 10/s, 100ms buys exactly one more token — not the burst back.
        assert!(b.try_acquire_at(SEC / 10).is_ok());
        assert!(b.try_acquire_at(SEC / 10).is_err());
    }

    #[test]
    fn bucket_never_overfills_past_burst() {
        let mut b = TokenBucket::new(1000, 2);
        assert!(b.try_acquire_at(0).is_ok());
        // An hour idle still caps the bucket at burst=2.
        let later = 3600 * SEC;
        assert!(b.try_acquire_at(later).is_ok());
        assert!(b.try_acquire_at(later).is_ok());
        assert!(b.try_acquire_at(later).is_err());
    }

    #[test]
    fn zero_quota_tenant_is_always_refused_with_no_retry() {
        let mut b = TokenBucket::new(0, 0);
        assert_eq!(b.try_acquire_at(0), Err(None));
        assert_eq!(b.try_acquire_at(u64::MAX), Err(None));
        // Zero rate with a burst: the burst is spendable once, then never
        // again.
        let mut b = TokenBucket::new(0, 1);
        assert!(b.try_acquire_at(0).is_ok());
        assert_eq!(b.try_acquire_at(u64::MAX), Err(None));
    }

    #[test]
    fn clock_going_backwards_is_zero_elapsed() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_acquire_at(5 * SEC).is_ok());
        // A regressed reading must not mint tokens or panic.
        assert!(b.try_acquire_at(0).is_err());
        assert!(b.try_acquire_at(6 * SEC).is_ok());
    }

    #[test]
    fn controller_isolates_tenants_and_caps_inflight() {
        let ctl = AdmissionController::new(TenantQuota {
            rate_per_s: 1,
            burst: 2,
            max_inflight: 2,
        });
        let g1 = ctl.admit_at("a", 0).unwrap();
        let _g2 = ctl.admit_at("a", 0).unwrap();
        // Both dimensions are exhausted; the concurrency cap is checked
        // first so no token is burned on a request that cannot run.
        assert_eq!(
            ctl.admit_at("a", 0).err(),
            Some(AdmissionError::TooManyInFlight { limit: 2 })
        );
        assert_eq!(ctl.inflight("a"), 2);
        // Tenant b is untouched by a's exhaustion.
        let _gb = ctl.admit_at("b", 0).unwrap();
        drop(g1);
        assert_eq!(ctl.inflight("a"), 1);
        // Slot free but bucket empty → rate-limited, with a retry hint.
        match ctl.admit_at("a", 0) {
            Err(AdmissionError::RateLimited {
                retry_after: Some(_),
            }) => {}
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // One second later the bucket refilled one token.
        let _g3 = ctl.admit_at("a", SEC).unwrap();
    }

    #[test]
    fn set_quota_preserves_outstanding_inflight() {
        let ctl = AdmissionController::new(TenantQuota {
            rate_per_s: 1000,
            burst: 10,
            max_inflight: 2,
        });
        let g1 = ctl.admit_at("a", 0).unwrap();
        let _g2 = ctl.admit_at("a", 0).unwrap();
        // Re-quota while two requests are in flight: the counter the old
        // guards decrement must be the one new admissions are checked
        // against, or the cap is transiently exceeded.
        ctl.set_quota(
            "a",
            TenantQuota {
                rate_per_s: 1000,
                burst: 10,
                max_inflight: 2,
            },
        );
        assert_eq!(ctl.inflight("a"), 2, "in-flight survives the override");
        assert_eq!(
            ctl.admit_at("a", 0).err(),
            Some(AdmissionError::TooManyInFlight { limit: 2 })
        );
        drop(g1);
        assert_eq!(ctl.inflight("a"), 1, "old guard releases the kept counter");
        assert!(ctl.admit_at("a", 0).is_ok());
    }

    #[test]
    fn set_quota_overrides_default() {
        let ctl = AdmissionController::new(TenantQuota::default());
        ctl.set_quota(
            "starved",
            TenantQuota {
                rate_per_s: 0,
                burst: 0,
                max_inflight: 4,
            },
        );
        assert_eq!(
            ctl.admit_at("starved", 0).err(),
            Some(AdmissionError::RateLimited { retry_after: None })
        );
        ctl.admit_at("normal", 0).unwrap();
    }
}
