//! The network front end: thread-per-core acceptors on two listeners
//! (HTTP/1.1 and the binary protocol), both funnelling into one dispatch
//! path — admission, tenant→slot resolution, engine submit — so the two
//! protocols cannot drift.
//!
//! ## Endpoints
//!
//! | HTTP                      | binary opcode | meaning                      |
//! |---------------------------|---------------|------------------------------|
//! | `GET /infer?tenant=&node=`| `INFER`       | node embedding               |
//! | `POST /ingest?tenant=`    | `INGEST`      | advance the live graph       |
//! | `GET /metrics`            | —             | Prometheus text exposition   |
//! | `GET /healthz`            | `PING`        | liveness                     |
//! | `POST /admin/shutdown`    | —             | begin draining               |
//!
//! The HTTP ingest body is one edge op per line: `+ src dst` inserts,
//! `- src dst` deletes.
//!
//! ## Threading model
//!
//! `threads` acceptor threads per listener share the `TcpListener` and
//! handle accepted connections *inline* (shared-nothing, no per-connection
//! spawn), so at most `threads` connections per protocol are served
//! concurrently — sized to cores, like the seastar execution model the
//! paper builds on. Per-connection read timeouts bound how long a stalled
//! peer can pin an acceptor.
//!
//! ## Fault sites
//!
//! `net.accept` (connection dropped at accept, before any byte) and
//! `net.read` (connection killed mid-stream, between requests) extend the
//! faultline catalogue into the network tier; the chaos suite uses them to
//! prove a dying connection never wedges the engine.

use crate::admission::{AdmissionController, AdmissionError};
use crate::registry::{ModelRegistry, RegistryError};
use crate::{http, wire};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stgraph_dyngraph::source::UpdateBatch;
use stgraph_serve::{ModelKey, RequestQueue, ServeError};
use stgraph_telemetry::{counter, counter_labeled, histogram_labeled};

/// Network-tier knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// HTTP listener address; port 0 binds an ephemeral port.
    pub http_addr: String,
    /// Binary-protocol listener address; port 0 binds an ephemeral port.
    pub bin_addr: String,
    /// Acceptor threads per listener (also the per-protocol connection
    /// concurrency — connections are handled inline).
    pub threads: usize,
    /// Per-connection read timeout; bounds how long an idle or stalled
    /// peer pins an acceptor thread.
    pub read_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            http_addr: "127.0.0.1:0".into(),
            bin_addr: "127.0.0.1:0".into(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 16)),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Everything a connection handler needs, shared across all acceptors.
pub struct ServeContext {
    /// The engine's submit boundary.
    pub queue: Arc<RequestQueue>,
    /// Tenant → model bindings.
    pub registry: Arc<ModelRegistry>,
    /// Per-tenant quotas.
    pub admission: AdmissionController,
    /// Node-id bound for request validation (the live graph's node count).
    pub num_nodes: u32,
}

/// One typed failure vocabulary for both protocols. Each variant knows its
/// HTTP status and its wire status byte, so the mapping lives in exactly
/// one place.
#[derive(Debug)]
pub enum NetError {
    /// Unparseable or out-of-range request.
    BadRequest(String),
    /// Tenant has no published model.
    UnknownTenant(String),
    /// Admission refused on rate; carries the bucket's retry hint.
    RateLimited(Option<Duration>),
    /// Shed: tenant concurrency cap, or the engine queue was full.
    Overloaded(String),
    /// The query expired in the engine queue.
    Deadline(String),
    /// Engine-side failure (panic recovery, checkpoint load, ...).
    Internal(String),
    /// The server is draining.
    ShuttingDown,
}

impl NetError {
    /// HTTP status code for this failure.
    pub fn http_status(&self) -> u16 {
        match self {
            NetError::BadRequest(_) => 400,
            NetError::UnknownTenant(_) => 404,
            NetError::RateLimited(_) => 429,
            NetError::Overloaded(_) | NetError::ShuttingDown => 503,
            NetError::Deadline(_) => 504,
            NetError::Internal(_) => 500,
        }
    }

    /// Binary-protocol status byte for this failure.
    pub fn wire_status(&self) -> u8 {
        match self {
            NetError::BadRequest(_) => wire::status::BAD_REQUEST,
            NetError::UnknownTenant(_) => wire::status::UNKNOWN_TENANT,
            NetError::RateLimited(_) => wire::status::RATE_LIMITED,
            NetError::Overloaded(_) => wire::status::OVERLOADED,
            NetError::Deadline(_) => wire::status::DEADLINE,
            NetError::Internal(_) => wire::status::INTERNAL,
            NetError::ShuttingDown => wire::status::SHUTTING_DOWN,
        }
    }

    /// Human-readable body/message text, identical across protocols.
    pub fn message(&self) -> String {
        match self {
            NetError::BadRequest(m) => format!("bad request: {m}"),
            NetError::UnknownTenant(t) => format!("no model published for tenant {t:?}"),
            NetError::RateLimited(Some(d)) => {
                format!("rate limited; retry in {}ms", d.as_millis().max(1))
            }
            NetError::RateLimited(None) => "rate limited; tenant has zero quota".into(),
            NetError::Overloaded(m) => format!("overloaded: {m}"),
            NetError::Deadline(m) => format!("deadline exceeded: {m}"),
            NetError::Internal(m) => format!("internal error: {m}"),
            NetError::ShuttingDown => "server is shutting down".into(),
        }
    }
}

impl From<AdmissionError> for NetError {
    fn from(e: AdmissionError) -> NetError {
        match e {
            AdmissionError::RateLimited { retry_after } => NetError::RateLimited(retry_after),
            AdmissionError::TooManyInFlight { limit } => {
                NetError::Overloaded(format!("tenant concurrency cap {limit} reached"))
            }
        }
    }
}

impl From<RegistryError> for NetError {
    fn from(e: RegistryError) -> NetError {
        match e {
            RegistryError::UnknownTenant(t) => NetError::UnknownTenant(t),
            RegistryError::UnknownSlot(k) => NetError::Internal(format!("stale model slot {k}")),
            RegistryError::Checkpoint(e) => NetError::Internal(format!("checkpoint: {e}")),
        }
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> NetError {
        match e {
            ServeError::Overloaded => NetError::Overloaded("engine queue full".into()),
            ServeError::UnknownModel(k) => NetError::Internal(format!("engine lost model {k}")),
            ServeError::DeadlineExceeded { waited } => {
                NetError::Deadline(format!("queued {waited:?}"))
            }
            ServeError::Closed => NetError::ShuttingDown,
            ServeError::Internal(m) => NetError::Internal(m),
        }
    }
}

/// Longest tenant name the dispatch path accepts. Anything longer is
/// rejected before it can touch a map or a metric label — a query string
/// or wire frame can carry kilobytes, and every byte of an accepted name
/// is stored at least twice (admission table, metric label).
pub const MAX_TENANT_LEN: usize = 128;

/// Metric label that absorbs every rejected-before-validation tenant, so
/// a peer cycling made-up names grows exactly one series, not one per
/// name. Prefixed to keep it out of the way of real tenant names.
const UNKNOWN_TENANT_LABEL: &str = "_unknown";

/// Gates the client-supplied tenant string *before* it becomes a metric
/// label or an admission-table key: only names the registry knows get a
/// per-tenant series or a `TenantState`, so both allocations are bounded
/// by the operator-controlled published-tenant set, never by what a peer
/// sends. Rejections are accounted under the one fixed
/// [`UNKNOWN_TENANT_LABEL`] series. Returns the tenant's current slot.
fn gate_tenant(
    ctx: &ServeContext,
    tenant: &str,
    proto: &'static str,
) -> Result<ModelKey, NetError> {
    let err = if tenant.is_empty() || tenant.len() > MAX_TENANT_LEN {
        NetError::BadRequest(format!("tenant name must be 1..={MAX_TENANT_LEN} bytes"))
    } else {
        match ctx.registry.resolve(tenant) {
            Ok(key) => return Ok(key),
            Err(e) => e.into(),
        }
    };
    counter_labeled(
        "net.requests",
        &[("tenant", UNKNOWN_TENANT_LABEL), ("proto", proto)],
    )
    .inc();
    let status = err.http_status().to_string();
    counter_labeled(
        "net.rejected",
        &[("tenant", UNKNOWN_TENANT_LABEL), ("status", &status)],
    )
    .inc();
    Err(err)
}

/// Validate tenant → admission → submit → wait → encode: the one inference
/// path both protocols call. Returns the shared payload bytes on success.
pub fn dispatch_infer(
    ctx: &ServeContext,
    tenant: &str,
    node: u32,
    proto: &'static str,
) -> Result<Vec<u8>, NetError> {
    let key = gate_tenant(ctx, tenant, proto)?;
    counter_labeled("net.requests", &[("tenant", tenant), ("proto", proto)]).inc();
    let outcome = (|| {
        if node >= ctx.num_nodes {
            return Err(NetError::BadRequest(format!(
                "node {node} out of range (graph has {} nodes)",
                ctx.num_nodes
            )));
        }
        admit_submit_wait(ctx, tenant, key, node)
    })();
    match &outcome {
        Ok(_) => counter_labeled("net.answered", &[("tenant", tenant)]).inc(),
        Err(e) => {
            let status = e.http_status().to_string();
            counter_labeled("net.rejected", &[("tenant", tenant), ("status", &status)]).inc();
        }
    }
    outcome
}

fn admit_submit_wait(
    ctx: &ServeContext,
    tenant: &str,
    key: ModelKey,
    node: u32,
) -> Result<Vec<u8>, NetError> {
    let start = Instant::now();
    // The guard lives across the engine round-trip: the concurrency cap
    // covers queue wait, not just the submit call.
    let _guard = ctx.admission.admit(tenant)?;
    let resp = ctx.queue.submit_for(key, node)?.wait()?;
    histogram_labeled("net.latency_ns", &[("tenant", tenant)])
        .record(start.elapsed().as_nanos() as u64);
    Ok(wire::encode_infer_payload(
        resp.node,
        resp.generation,
        &resp.values,
    ))
}

/// Validate tenant → admission → advance: the shared ingest path. Updates
/// are the stream's ground truth, so past admission they block rather than
/// shed.
pub fn dispatch_ingest(
    ctx: &ServeContext,
    tenant: &str,
    additions: Vec<(u32, u32)>,
    deletions: Vec<(u32, u32)>,
    proto: &'static str,
) -> Result<(), NetError> {
    gate_tenant(ctx, tenant, proto)?;
    counter_labeled("net.requests", &[("tenant", tenant), ("proto", proto)]).inc();
    for &(s, d) in additions.iter().chain(&deletions) {
        if s >= ctx.num_nodes || d >= ctx.num_nodes {
            return Err(NetError::BadRequest(format!(
                "edge ({s}, {d}) out of range (graph has {} nodes)",
                ctx.num_nodes
            )));
        }
    }
    let _guard = ctx.admission.admit(tenant)?;
    ctx.queue.advance(UpdateBatch {
        additions,
        deletions,
    });
    counter_labeled("net.ingested", &[("tenant", tenant)]).inc();
    Ok(())
}

/// An ingest body split into `(additions, deletions)` edge lists.
pub type IngestEdits = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Parses the HTTP ingest body: one `+ src dst` / `- src dst` line per op.
pub fn parse_ingest_lines(body: &str) -> Result<IngestEdits, String> {
    let mut additions = Vec::new();
    let mut deletions = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().unwrap_or("");
        let parse = |tok: Option<&str>| {
            tok.and_then(|t| t.parse::<u32>().ok())
                .ok_or_else(|| format!("line {}: expected '+|- src dst'", i + 1))
        };
        let edge = (parse(parts.next())?, parse(parts.next())?);
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", i + 1));
        }
        match op {
            "+" => additions.push(edge),
            "-" => deletions.push(edge),
            other => return Err(format!("line {}: unknown op {other:?}", i + 1)),
        }
    }
    Ok((additions, deletions))
}

struct Shutdown {
    flag: AtomicBool,
    mu: Mutex<bool>,
    cv: Condvar,
}

impl Shutdown {
    fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        *self.mu.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    fn triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running pair of listeners plus their acceptor threads.
pub struct ServerHandle {
    /// Bound HTTP address (real port even when configured as 0).
    pub http_addr: SocketAddr,
    /// Bound binary-protocol address.
    pub bin_addr: SocketAddr,
    stop: Arc<Shutdown>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Blocks until shutdown is requested (`/admin/shutdown`, or
    /// [`ServerHandle::shutdown`] from another thread) or `timeout`
    /// passes. Returns true when shutdown was requested.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut done = self.stop.mu.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + timeout;
        while !*done {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (g, _) = self
                .stop
                .cv
                .wait_timeout(done, left)
                .unwrap_or_else(|e| e.into_inner());
            done = g;
        }
        true
    }

    /// True once shutdown was requested.
    pub fn shutting_down(&self) -> bool {
        self.stop.triggered()
    }

    /// Requests shutdown, wakes every acceptor, and joins them. Idempotent
    /// with an earlier `/admin/shutdown` trigger.
    pub fn shutdown(mut self) {
        self.stop.trigger();
        // Blocked accept() calls only notice the flag on their next
        // connection; hand each acceptor one.
        for addr in [self.http_addr, self.bin_addr] {
            for _ in 0..self.threads.len() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The server constructor.
pub struct NetServer;

impl NetServer {
    /// Binds both listeners and spawns `config.threads` acceptors per
    /// protocol. Returns immediately; the engine behind `ctx.queue` must
    /// already be running.
    pub fn start(config: NetConfig, ctx: Arc<ServeContext>) -> std::io::Result<ServerHandle> {
        let http = TcpListener::bind(&config.http_addr)?;
        let bin = TcpListener::bind(&config.bin_addr)?;
        let http_addr = http.local_addr()?;
        let bin_addr = bin.local_addr()?;
        let stop = Arc::new(Shutdown {
            flag: AtomicBool::new(false),
            mu: Mutex::new(false),
            cv: Condvar::new(),
        });
        ctx.registry.register_gauges();

        let mut threads = Vec::new();
        let n = config.threads.max(1);
        for (listener, is_http) in [(http, true), (bin, false)] {
            let listener = Arc::new(listener);
            for i in 0..n {
                let listener = Arc::clone(&listener);
                let ctx = Arc::clone(&ctx);
                let stop = Arc::clone(&stop);
                let timeout = config.read_timeout;
                let name = format!("net-{}-{i}", if is_http { "http" } else { "bin" });
                threads.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || accept_loop(&listener, is_http, &ctx, &stop, timeout))
                        .expect("spawn acceptor"),
                );
            }
        }
        Ok(ServerHandle {
            http_addr,
            bin_addr,
            stop,
            threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    is_http: bool,
    ctx: &ServeContext,
    stop: &Shutdown,
    timeout: Duration,
) {
    while !stop.triggered() {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if stop.triggered() {
            return;
        }
        // Accept-time fault: the connection dies before its first byte —
        // the client sees a reset, the server moves on.
        if stgraph_faultline::fault_point!("net.accept").is_err() {
            counter("net.faults.accept").inc();
            continue;
        }
        counter("net.connections").inc();
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_nodelay(true);
        if is_http {
            handle_http_conn(stream, ctx, stop);
        } else {
            handle_bin_conn(stream, ctx, stop);
        }
    }
}

fn handle_http_conn(stream: TcpStream, ctx: &ServeContext, stop: &Shutdown) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        // Mid-stream fault: the connection dies between requests.
        if stgraph_faultline::fault_point!("net.read").is_err() {
            counter("net.faults.read").inc();
            return;
        }
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                counter("net.http.malformed").inc();
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "text/plain",
                    &[],
                    format!("bad request: {e}\n").as_bytes(),
                    true,
                );
                return;
            }
            Err(_) => return, // timeout or reset
        };
        let close = req.wants_close() || stop.triggered();
        if !serve_http_request(&mut writer, &req, ctx, stop, close) {
            return;
        }
        if close {
            return;
        }
    }
}

/// Routes and answers one HTTP request. Returns false when the connection
/// must close (write failure or shutdown endpoint).
fn serve_http_request(
    w: &mut TcpStream,
    req: &http::HttpRequest,
    ctx: &ServeContext,
    stop: &Shutdown,
    close: bool,
) -> bool {
    let respond =
        |w: &mut TcpStream, status: u16, ct: &str, extra: &[(&str, String)], body: &[u8]| {
            http::write_response(w, status, ct, extra, body, close).is_ok()
        };
    let fail = |w: &mut TcpStream, e: NetError| {
        let mut extra = Vec::new();
        if let NetError::RateLimited(Some(d)) = &e {
            extra.push(("retry-after", d.as_secs().max(1).to_string()));
        }
        let body = format!("{}\n", e.message());
        respond(w, e.http_status(), "text/plain", &extra, body.as_bytes())
    };
    match (req.method.as_str(), req.path.as_str()) {
        (_, "/healthz") => respond(w, 200, "text/plain", &[], b"ok\n"),
        (_, "/metrics") => {
            let text = stgraph_telemetry::export::prometheus_text();
            respond(w, 200, "text/plain; version=0.0.4", &[], text.as_bytes())
        }
        ("POST", "/admin/shutdown") => {
            respond(w, 200, "text/plain", &[], b"shutting down\n");
            stop.trigger();
            false
        }
        (_, "/infer") if stop.triggered() => fail(w, NetError::ShuttingDown),
        ("GET" | "POST", "/infer") => {
            let parsed = (|| {
                let tenant = req
                    .query_param("tenant")
                    .ok_or_else(|| NetError::BadRequest("missing tenant parameter".into()))?;
                let node = req
                    .query_param("node")
                    .and_then(|n| n.parse::<u32>().ok())
                    .ok_or_else(|| NetError::BadRequest("missing or bad node parameter".into()))?;
                Ok((tenant.to_string(), node))
            })();
            match parsed.and_then(|(tenant, node)| dispatch_infer(ctx, &tenant, node, "http")) {
                Ok(payload) => respond(w, 200, "application/octet-stream", &[], &payload),
                Err(e) => fail(w, e),
            }
        }
        (_, "/ingest") if stop.triggered() => fail(w, NetError::ShuttingDown),
        ("POST", "/ingest") => {
            let outcome = (|| {
                let tenant = req
                    .query_param("tenant")
                    .ok_or_else(|| NetError::BadRequest("missing tenant parameter".into()))?
                    .to_string();
                let body = std::str::from_utf8(&req.body)
                    .map_err(|_| NetError::BadRequest("body is not utf-8".into()))?;
                let (additions, deletions) =
                    parse_ingest_lines(body).map_err(NetError::BadRequest)?;
                dispatch_ingest(ctx, &tenant, additions, deletions, "http")
            })();
            match outcome {
                Ok(()) => respond(w, 200, "text/plain", &[], b"accepted\n"),
                Err(e) => fail(w, e),
            }
        }
        ("GET" | "POST", _) => respond(w, 404, "text/plain", &[], b"no such endpoint\n"),
        _ => respond(w, 405, "text/plain", &[], b"method not allowed\n"),
    }
}

fn handle_bin_conn(stream: TcpStream, ctx: &ServeContext, stop: &Shutdown) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        if stgraph_faultline::fault_point!("net.read").is_err() {
            counter("net.faults.read").inc();
            return;
        }
        let body = match wire::read_frame(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                counter("net.bin.malformed").inc();
                let resp = wire::Response::Err {
                    code: wire::status::BAD_REQUEST,
                    message: e.to_string(),
                };
                let _ = wire::write_frame(&mut writer, &wire::encode_response(&resp));
                return;
            }
            Err(_) => return,
        };
        let resp = match wire::decode_request(&body) {
            Err(msg) => {
                counter("net.bin.malformed").inc();
                let e = NetError::BadRequest(msg);
                wire::Response::Err {
                    code: e.wire_status(),
                    message: e.message(),
                }
            }
            Ok(_) if stop.triggered() => wire::Response::Err {
                code: wire::status::SHUTTING_DOWN,
                message: NetError::ShuttingDown.message(),
            },
            Ok(wire::Request::Ping) => wire::Response::Ok(Vec::new()),
            Ok(wire::Request::Infer { tenant, node }) => {
                match dispatch_infer(ctx, &tenant, node, "bin") {
                    Ok(payload) => wire::Response::Ok(payload),
                    Err(e) => wire::Response::Err {
                        code: e.wire_status(),
                        message: e.message(),
                    },
                }
            }
            Ok(wire::Request::Ingest {
                tenant,
                additions,
                deletions,
            }) => match dispatch_ingest(ctx, &tenant, additions, deletions, "bin") {
                Ok(()) => wire::Response::Ok(Vec::new()),
                Err(e) => wire::Response::Err {
                    code: e.wire_status(),
                    message: e.message(),
                },
            },
        };
        if wire::write_frame(&mut writer, &wire::encode_response(&resp)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_line_parser() {
        let (add, del) = parse_ingest_lines("+ 1 2\n- 3 4\n\n+ 5 6\n").unwrap();
        assert_eq!(add, vec![(1, 2), (5, 6)]);
        assert_eq!(del, vec![(3, 4)]);
        assert!(parse_ingest_lines("* 1 2").is_err());
        assert!(parse_ingest_lines("+ 1").is_err());
        assert!(parse_ingest_lines("+ 1 2 3").is_err());
        assert!(parse_ingest_lines("+ x y").is_err());
    }

    #[test]
    fn error_mapping_is_total_and_consistent() {
        let cases = [
            (
                NetError::BadRequest("x".into()),
                400,
                wire::status::BAD_REQUEST,
            ),
            (
                NetError::UnknownTenant("t".into()),
                404,
                wire::status::UNKNOWN_TENANT,
            ),
            (NetError::RateLimited(None), 429, wire::status::RATE_LIMITED),
            (
                NetError::Overloaded("q".into()),
                503,
                wire::status::OVERLOADED,
            ),
            (NetError::Deadline("d".into()), 504, wire::status::DEADLINE),
            (NetError::Internal("i".into()), 500, wire::status::INTERNAL),
            (NetError::ShuttingDown, 503, wire::status::SHUTTING_DOWN),
        ];
        for (e, http_status, wire_status) in cases {
            assert_eq!(e.http_status(), http_status, "{e:?}");
            assert_eq!(e.wire_status(), wire_status, "{e:?}");
            assert!(!e.message().is_empty());
        }
    }

    #[test]
    fn serve_error_mapping() {
        assert_eq!(NetError::from(ServeError::Overloaded).http_status(), 503);
        assert_eq!(
            NetError::from(ServeError::DeadlineExceeded {
                waited: Duration::from_millis(5)
            })
            .http_status(),
            504
        );
        assert_eq!(NetError::from(ServeError::Closed).http_status(), 503);
        assert_eq!(
            NetError::from(ServeError::Internal("boom".into())).http_status(),
            500
        );
    }
}
