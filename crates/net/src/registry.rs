//! The multi-tenant model registry: which `.stgc` checkpoint answers for
//! which tenant, which checkpoints are resident in memory, and how the
//! engine materialises them.
//!
//! ## Slots and hot swap
//!
//! Every *publish* of a checkpoint gets a fresh, monotonically increasing
//! slot id — the [`ModelKey`] queries carry into the engine. Re-publishing
//! for a tenant binds the tenant to a *new* slot and never mutates the old
//! one, so in-flight queries submitted against the previous slot still
//! resolve against the previous weights: the atomic hot-swap is one
//! `HashMap` insert under the registry lock (the generation-guard pattern
//! the ingest layer uses for graph snapshots, applied to models).
//!
//! ## Residency and the byte budget
//!
//! Decoded checkpoint entries are cached per slot and LRU-evicted once
//! their total size passes the byte budget. An evicted slot keeps its
//! checkpoint *path*, so a later query for it (an old in-flight key, or a
//! cold tenant waking up) transparently reloads from disk — registry
//! eviction degrades latency, never correctness: weights are immutable, so
//! a reload is bit-identical. The *engine's* resident-model cap is the
//! other eviction layer; it parks the victim's hidden chain and resumes it
//! on reload (see the engine docs for the exact chain semantics while a
//! model is out of residence).
//!
//! ## The engine side
//!
//! [`ModelRegistry::resident`] is what the engine's model-provider hook
//! calls (on the engine thread) when a query names a key it has no cell
//! for; [`build_resident_cell`] then rebuilds the cell with the training
//! binaries' exact RNG draw order and loads the weights by name.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use stgraph::tgnn::RecurrentCell;
use stgraph_serve::checkpoint::load_checkpoint;
use stgraph_serve::{CheckpointError, ModelKey};
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::{StateDict, StateEntry};

/// Everything needed to rebuild a tenant's cell from its checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Architecture name, one of [`stgraph_serve::zoo::ARCHITECTURES`].
    pub arch: String,
    /// Input feature width the cell was trained with.
    pub features: usize,
    /// Hidden width the cell was trained with.
    pub hidden: usize,
    /// RNG seed used at construction; must match training so parameter
    /// shapes and registration order line up with the checkpoint.
    pub init_seed: u64,
}

/// A slot's decoded checkpoint, shared between the registry cache and the
/// engine thread (entries are plain `Send + Sync` data; the `!Send` cell
/// is built from them on the engine thread only).
#[derive(Debug)]
pub struct ResidentModel {
    /// The slot this decode belongs to.
    pub key: ModelKey,
    /// How to rebuild the cell.
    pub meta: ModelMeta,
    /// Named parameter tensors from the `.stgc` file.
    pub entries: Vec<StateEntry>,
}

/// Typed registry failures.
#[derive(Debug)]
pub enum RegistryError {
    /// No model was ever published for this tenant.
    UnknownTenant(String),
    /// The key names no published slot (stale beyond the retained window,
    /// or plain wrong).
    UnknownSlot(ModelKey),
    /// The slot's checkpoint failed to load or validate.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant(t) => write!(f, "no model published for tenant {t:?}"),
            RegistryError::UnknownSlot(k) => write!(f, "no published model slot {k}"),
            RegistryError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<CheckpointError> for RegistryError {
    fn from(e: CheckpointError) -> RegistryError {
        RegistryError::Checkpoint(e)
    }
}

struct SlotRecord {
    meta: ModelMeta,
    path: PathBuf,
    bytes: usize,
    resident: Option<Arc<ResidentModel>>,
    last_used: u64,
}

struct Inner {
    tenants: HashMap<String, ModelKey>,
    slots: HashMap<ModelKey, SlotRecord>,
    next_key: ModelKey,
    resident_bytes: usize,
    tick: u64,
}

/// Thread-safe tenant → slot → checkpoint registry with a byte-budget LRU
/// residency cache. Cloned behind an `Arc` into both the network handlers
/// (resolve) and the engine's provider hook (resident).
pub struct ModelRegistry {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl ModelRegistry {
    /// A registry keeping at most `budget_bytes` of decoded checkpoint
    /// entries resident (at least one slot always stays resident, so a
    /// single over-budget model still serves).
    pub fn new(budget_bytes: usize) -> ModelRegistry {
        ModelRegistry {
            budget_bytes,
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                slots: HashMap::new(),
                // Key 0 is the engine's DEFAULT_MODEL; registry slots start
                // above it.
                next_key: 1,
                resident_bytes: 0,
                tick: 0,
            }),
        }
    }

    /// Exposes the registry's residency numbers as pull gauges
    /// (`net.registry.resident_bytes`, `net.registry.resident_slots`).
    pub fn register_gauges(self: &Arc<Self>) {
        let me = Arc::clone(self);
        stgraph_telemetry::register_gauge("net.registry.resident_bytes", move || {
            me.lock().resident_bytes as f64
        });
        let me = Arc::clone(self);
        stgraph_telemetry::register_gauge("net.registry.resident_slots", move || {
            me.lock()
                .slots
                .values()
                .filter(|s| s.resident.is_some())
                .count() as f64
        });
    }

    /// Publishes `path` as `tenant`'s serving model: loads and validates
    /// the checkpoint, assigns a fresh slot, makes it resident, and
    /// atomically rebinds the tenant. Returns the new slot key.
    pub fn publish(
        &self,
        tenant: &str,
        meta: ModelMeta,
        path: impl AsRef<Path>,
    ) -> Result<ModelKey, RegistryError> {
        let path = path.as_ref().to_path_buf();
        // Load outside the lock: disk I/O must not stall the serve path.
        let entries = load_checkpoint(&path)?;
        let bytes = entries_bytes(&entries);

        let mut inner = self.lock();
        let key = inner.next_key;
        inner.next_key += 1;
        let resident = Arc::new(ResidentModel {
            key,
            meta: meta.clone(),
            entries,
        });
        inner.slots.insert(
            key,
            SlotRecord {
                meta,
                path,
                bytes,
                resident: Some(resident),
                last_used: 0,
            },
        );
        inner.resident_bytes += bytes;
        inner.touch(key);
        if inner.tenants.insert(tenant.to_string(), key).is_some() {
            stgraph_telemetry::counter("net.registry.swaps").inc();
        }
        stgraph_telemetry::counter("net.registry.publishes").inc();
        inner.evict_over_budget(self.budget_bytes, key);
        Ok(key)
    }

    /// The slot currently bound to `tenant` — the serve path's
    /// tenant-name → [`ModelKey`] hop.
    pub fn resolve(&self, tenant: &str) -> Result<ModelKey, RegistryError> {
        let inner = self.lock();
        inner
            .tenants
            .get(tenant)
            .copied()
            .ok_or_else(|| RegistryError::UnknownTenant(tenant.to_string()))
    }

    /// The slot's decoded checkpoint, reloading from disk if it was
    /// LRU-evicted. This is the engine provider's entry point.
    pub fn resident(&self, key: ModelKey) -> Result<Arc<ResidentModel>, RegistryError> {
        {
            let mut inner = self.lock();
            let slot = inner
                .slots
                .get(&key)
                .ok_or(RegistryError::UnknownSlot(key))?;
            if let Some(m) = &slot.resident {
                let m = Arc::clone(m);
                inner.touch(key);
                return Ok(m);
            }
        }
        // Reload outside the lock; two racing reloads are benign (last one
        // in repopulates the cache, both return valid entries).
        let (path, meta) = {
            let inner = self.lock();
            let slot = inner
                .slots
                .get(&key)
                .ok_or(RegistryError::UnknownSlot(key))?;
            (slot.path.clone(), slot.meta.clone())
        };
        let entries = load_checkpoint(&path)?;
        stgraph_telemetry::counter("net.registry.reloads").inc();
        let bytes = entries_bytes(&entries);
        let resident = Arc::new(ResidentModel { key, meta, entries });
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.get_mut(&key) {
            if slot.resident.is_none() {
                slot.resident = Some(Arc::clone(&resident));
                slot.bytes = bytes;
                inner.resident_bytes += bytes;
            }
            inner.touch(key);
            inner.evict_over_budget(self.budget_bytes, key);
        }
        Ok(resident)
    }

    /// Total bytes of decoded entries currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.lock().resident_bytes
    }

    /// Current tenant bindings, sorted by tenant name.
    pub fn tenants(&self) -> Vec<(String, ModelKey)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.tenants.iter().map(|(t, k)| (t.clone(), *k)).collect();
        v.sort();
        v
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Inner {
    fn touch(&mut self, key: ModelKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.last_used = tick;
        }
    }

    /// Drops least-recently-used resident entries until the budget holds.
    /// `keep` (the slot just loaded/touched) is never evicted, so the cache
    /// always serves at least the model that triggered the pressure.
    fn evict_over_budget(&mut self, budget: usize, keep: ModelKey) {
        while self.resident_bytes > budget {
            let victim = self
                .slots
                .iter()
                .filter(|(k, s)| **k != keep && s.resident.is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(slot) = self.slots.get_mut(&victim) {
                slot.resident = None;
                self.resident_bytes = self.resident_bytes.saturating_sub(slot.bytes);
                stgraph_telemetry::counter("net.registry.evictions").inc();
            }
        }
    }
}

/// Rebuilds a slot's `!Send` cell from its plain-data decode. Runs on the
/// engine thread (via the model-provider hook). `None` when the
/// architecture is unknown or the checkpoint does not fit the declared
/// shape — the engine then answers the query with `UnknownModel`.
pub fn build_resident_cell(m: &ResidentModel) -> Option<Box<dyn RecurrentCell>> {
    let mut rng = ChaCha8Rng::seed_from_u64(m.meta.init_seed);
    let mut params = ParamSet::new();
    let cell = stgraph_serve::build_cell(
        &m.meta.arch,
        &mut params,
        m.meta.features,
        m.meta.hidden,
        &mut rng,
    )?;
    params.try_load_state_dict(&m.entries).ok()?;
    Some(cell)
}

fn entries_bytes(entries: &[StateEntry]) -> usize {
    entries
        .iter()
        .map(|(name, _, data)| name.len() + 32 + data.len() * 4)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_serve::save_checkpoint;

    fn meta() -> ModelMeta {
        ModelMeta {
            arch: "tgcn".into(),
            features: 2,
            hidden: 3,
            init_seed: 7,
        }
    }

    /// Saves a real (arch-built) checkpoint so publish/build both succeed.
    fn checkpoint_at(dir: &Path, name: &str, seed: u64) -> PathBuf {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let _cell = stgraph_serve::build_cell("tgcn", &mut params, 2, 3, &mut rng).unwrap();
        let path = dir.join(name);
        save_checkpoint(&path, &params.to_state_dict()).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stgraph-net-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_resolve_resident_build_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = checkpoint_at(&dir, "a.stgc", 7);
        let reg = ModelRegistry::new(64 << 20);
        let key = reg.publish("acme", meta(), &path).unwrap();
        assert_eq!(reg.resolve("acme").unwrap(), key);
        let m = reg.resident(key).unwrap();
        assert_eq!(m.key, key);
        let cell = build_resident_cell(&m).expect("cell builds from entries");
        assert_eq!(cell.hidden_size(), 3);
        assert!(matches!(
            reg.resolve("nobody"),
            Err(RegistryError::UnknownTenant(_))
        ));
        assert!(matches!(
            reg.resident(9999),
            Err(RegistryError::UnknownSlot(9999))
        ));
    }

    #[test]
    fn hot_swap_assigns_new_slot_and_keeps_old_resolvable() {
        let dir = tmpdir("swap");
        let p1 = checkpoint_at(&dir, "v1.stgc", 7);
        let p2 = checkpoint_at(&dir, "v2.stgc", 8);
        let reg = ModelRegistry::new(64 << 20);
        let k1 = reg.publish("acme", meta(), &p1).unwrap();
        let mut m2 = meta();
        m2.init_seed = 8;
        let k2 = reg.publish("acme", m2, &p2).unwrap();
        assert_ne!(k1, k2, "hot swap mints a fresh slot");
        assert_eq!(reg.resolve("acme").unwrap(), k2);
        // The old slot still serves in-flight queries.
        assert!(reg.resident(k1).is_ok());
    }

    #[test]
    fn lru_evicts_over_budget_and_reloads_from_disk() {
        let dir = tmpdir("lru");
        let p1 = checkpoint_at(&dir, "m1.stgc", 1);
        let p2 = checkpoint_at(&dir, "m2.stgc", 2);
        // Budget fits roughly one decoded checkpoint.
        let one = entries_bytes(&load_checkpoint(&p1).unwrap());
        let reg = ModelRegistry::new(one + one / 2);
        let mut meta1 = meta();
        meta1.init_seed = 1;
        let mut meta2 = meta();
        meta2.init_seed = 2;
        let k1 = reg.publish("t1", meta1, &p1).unwrap();
        let k2 = reg.publish("t2", meta2, &p2).unwrap();
        // Publishing k2 pushed the total over budget; k1 (older) was
        // evicted and only k2 stayed resident.
        assert!(reg.resident_bytes() <= one + one / 2);
        // The evicted slot transparently reloads — eviction is a latency
        // event, not an error.
        assert!(reg.resident(k1).is_ok());
        assert!(reg.resident(k2).is_ok());
    }

    #[test]
    fn single_over_budget_model_still_serves() {
        let dir = tmpdir("overbudget");
        let path = checkpoint_at(&dir, "big.stgc", 3);
        let reg = ModelRegistry::new(1); // absurdly small budget
        let mut m = meta();
        m.init_seed = 3;
        let key = reg.publish("solo", m, &path).unwrap();
        assert!(reg.resident(key).is_ok(), "keep-slot is never evicted");
    }
}
