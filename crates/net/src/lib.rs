//! `stgraph-net` — the network serve tier on top of `stgraph-serve`.
//!
//! The serve crate ends at a process boundary: an [`EngineHost`] thread
//! answering an in-process [`RequestQueue`]. This crate is everything
//! between that queue and a socket, dependency-free on `std::net`:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 parser/writer (keep-alive,
//!   `Content-Length` framing, hard input limits);
//! * [`wire`] — a length-prefixed binary protocol, and
//!   [`wire::encode_infer_payload`], the *single* inference-answer
//!   serialiser both protocols share, so an `/infer` HTTP body and an
//!   `INFER` frame payload are bitwise identical by construction;
//! * [`registry`] — the multi-tenant model registry: per-tenant `.stgc`
//!   checkpoints resident under a byte-budget LRU, hot-swapped atomically
//!   by minting a fresh [`ModelKey`] slot per publish;
//! * [`admission`] — per-tenant token-bucket rate quotas and concurrency
//!   caps in front of the engine's own Overloaded/deadline shedding, with
//!   typed 429/503 refusals;
//! * [`server`] — thread-per-core acceptors on two listeners funnelling
//!   into one dispatch path, `/metrics` Prometheus exposition, and the
//!   `net.accept` / `net.read` fault sites.
//!
//! The `net` binary wires a dataset + checkpoints into a running server;
//! the `loadgen` binary drives it closed-loop over real sockets with
//! Zipfian-distributed tenants and reports per-tenant p50/p95/p99.
//!
//! [`EngineHost`]: stgraph_serve::EngineHost
//! [`RequestQueue`]: stgraph_serve::RequestQueue
//! [`ModelKey`]: stgraph_serve::ModelKey

#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod registry;
pub mod server;
pub mod wire;

pub use admission::{AdmissionController, AdmissionError, TenantQuota, TokenBucket};
pub use registry::{build_resident_cell, ModelMeta, ModelRegistry, RegistryError, ResidentModel};
pub use server::{NetConfig, NetError, NetServer, ServeContext, ServerHandle};
