//! `loadgen` — closed-loop load generator for the net tier, over real
//! sockets.
//!
//! Workers each hold a persistent connection and issue the next request
//! only after the previous answer lands (closed loop, so measured latency
//! includes every queueing stage). Tenants are picked from a Zipfian
//! distribution — a few hot tenants, a long cold tail, the shape that
//! actually stresses a multi-tenant LRU — and a configurable fraction of
//! requests are ingest updates that advance the shared live graph.
//!
//! Output is one machine-parseable `key=value` line per tenant plus a
//! `total:` line; `--json <path>` additionally writes the summary as JSON
//! (the CI smoke job and `BENCH_net.json` both consume these).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stgraph_net::{http, wire};
use stgraph_serve::LatencyRecorder;

const HELP: &str = "stgraph loadgen — closed-loop Zipfian load for the net tier

Options:
  --http <host:port>      HTTP address of a running net server
  --bin <host:port>       binary-protocol address
  --proto <http|bin|both> protocol to drive; both needs both addresses and
                          splits workers evenly (default: http if --http
                          was given, else bin)
  --requests <n>          total requests across all workers (default 1000)
  --tenants <n>           tenant universe t0..t{n-1} (default 4)
  --workers <n>           concurrent closed-loop workers (default 4)
  --zipf-s <f>            Zipf exponent over tenants; 0 = uniform (default 1.1)
  --update-frac <f>       fraction of requests that are ingest updates
                          (default 0.05)
  --edges-per-update <n>  edges per ingest batch (default 4)
  --nodes <n>             node-id bound; read it from the server's
                          'listening ... nodes=<n>' line (default 64)
  --seed <n>              RNG seed (default 7)
  --json <path>           also write the summary as JSON
  --help                  this text";

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        if key == "--help" || key == "-h" {
            println!("{HELP}");
            std::process::exit(0);
        }
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("unexpected argument '{key}' (try --help)");
            std::process::exit(2);
        };
        let Some(value) = args.next() else {
            eprintln!("missing value for --{name}");
            std::process::exit(2);
        };
        out.insert(name.replace('-', "_"), value);
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: '{v}'");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Zipfian sampler over `n` ranks: weight of rank `i` is `(i+1)^-s`.
/// Precomputed CDF + binary search (the vendored `rand` has no Zipf).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let r = rng.gen_range(0.0f64..1.0);
        self.cdf.partition_point(|&c| c < r).min(self.cdf.len() - 1)
    }
}

/// What one request came back as.
enum Outcome {
    Ok(Duration),
    Rejected(u16),
    /// Unparseable or out-of-contract response — the count that must be
    /// zero in CI.
    ProtocolError,
    /// Connection-level failure; the worker reconnects.
    ConnError,
}

#[derive(Default)]
struct TenantStats {
    requests: u64,
    ok: u64,
    r429: u64,
    r503: u64,
    r504: u64,
    other_rejected: u64,
    protocol_errors: u64,
    conn_errors: u64,
    ingests: u64,
    latencies: Vec<Duration>,
}

impl TenantStats {
    fn absorb(&mut self, other: TenantStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.r429 += other.r429;
        self.r503 += other.r503;
        self.r504 += other.r504;
        self.other_rejected += other.other_rejected;
        self.protocol_errors += other.protocol_errors;
        self.conn_errors += other.conn_errors;
        self.ingests += other.ingests;
        self.latencies.extend(other.latencies);
    }
}

enum Proto {
    Http,
    Bin,
}

/// One worker's connection, re-established on failure.
struct Conn {
    addr: String,
    proto: Proto,
    stream: Option<(BufReader<TcpStream>, TcpStream)>,
}

impl Conn {
    fn new(addr: String, proto: Proto) -> Conn {
        Conn {
            addr,
            proto,
            stream: None,
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut (BufReader<TcpStream>, TcpStream)> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            s.set_nodelay(true)?;
            let reader = BufReader::new(s.try_clone()?);
            self.stream = Some((reader, s));
        }
        Ok(self.stream.as_mut().unwrap())
    }

    fn infer(&mut self, tenant: &str, node: u32) -> Outcome {
        let start = Instant::now();
        match &self.proto {
            Proto::Http => {
                let target = format!("/infer?tenant={tenant}&node={node}");
                let resp = self.ensure().and_then(|(r, w)| {
                    http::write_request(w, "GET", &target, b"")?;
                    http::read_response(r)
                });
                match resp {
                    Ok((200, _, body)) => match wire::decode_infer_payload(&body) {
                        Some((n, _, _)) if n == node => Outcome::Ok(start.elapsed()),
                        _ => Outcome::ProtocolError,
                    },
                    Ok((status, _, _)) => Outcome::Rejected(status),
                    Err(_) => {
                        self.stream = None;
                        Outcome::ConnError
                    }
                }
            }
            Proto::Bin => {
                let req = wire::Request::Infer {
                    tenant: tenant.to_string(),
                    node,
                };
                match self.roundtrip(&req) {
                    Ok(wire::Response::Ok(payload)) => match wire::decode_infer_payload(&payload) {
                        Some((n, _, _)) if n == node => Outcome::Ok(start.elapsed()),
                        _ => Outcome::ProtocolError,
                    },
                    Ok(wire::Response::Err { code, .. }) => Outcome::Rejected(wire_to_http(code)),
                    Err(_) => {
                        self.stream = None;
                        Outcome::ConnError
                    }
                }
            }
        }
    }

    fn ingest(&mut self, tenant: &str, edges: &[(u32, u32)]) -> Outcome {
        let start = Instant::now();
        match &self.proto {
            Proto::Http => {
                let mut body = String::new();
                for (s, d) in edges {
                    body.push_str(&format!("+ {s} {d}\n"));
                }
                let target = format!("/ingest?tenant={tenant}");
                let resp = self.ensure().and_then(|(r, w)| {
                    http::write_request(w, "POST", &target, body.as_bytes())?;
                    http::read_response(r)
                });
                match resp {
                    Ok((200, _, _)) => Outcome::Ok(start.elapsed()),
                    Ok((status, _, _)) => Outcome::Rejected(status),
                    Err(_) => {
                        self.stream = None;
                        Outcome::ConnError
                    }
                }
            }
            Proto::Bin => {
                let req = wire::Request::Ingest {
                    tenant: tenant.to_string(),
                    additions: edges.to_vec(),
                    deletions: Vec::new(),
                };
                match self.roundtrip(&req) {
                    Ok(wire::Response::Ok(_)) => Outcome::Ok(start.elapsed()),
                    Ok(wire::Response::Err { code, .. }) => Outcome::Rejected(wire_to_http(code)),
                    Err(_) => {
                        self.stream = None;
                        Outcome::ConnError
                    }
                }
            }
        }
    }

    fn roundtrip(&mut self, req: &wire::Request) -> std::io::Result<wire::Response> {
        let (r, w) = self.ensure()?;
        wire::write_frame(w, &wire::encode_request(req))?;
        let body = wire::read_frame(r)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        wire::decode_response(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Maps a wire status byte onto the HTTP status the classification below
/// keys on — the two protocols' rejections land in the same buckets.
fn wire_to_http(code: u8) -> u16 {
    match code {
        wire::status::BAD_REQUEST => 400,
        wire::status::UNKNOWN_TENANT => 404,
        wire::status::RATE_LIMITED => 429,
        wire::status::OVERLOADED | wire::status::SHUTTING_DOWN => 503,
        wire::status::DEADLINE => 504,
        _ => 500,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    id: usize,
    addr: String,
    proto: Proto,
    issued: &AtomicU64,
    requests: u64,
    zipf: &Zipf,
    nodes: u32,
    update_frac: f64,
    edges_per_update: usize,
    seed: u64,
) -> HashMap<usize, TenantStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
    let mut conn = Conn::new(addr, proto);
    let mut stats: HashMap<usize, TenantStats> = HashMap::new();
    loop {
        if issued.fetch_add(1, Ordering::Relaxed) >= requests {
            break;
        }
        let tenant_idx = zipf.sample(&mut rng);
        let tenant = format!("t{tenant_idx}");
        let is_update = rng.gen_bool(update_frac);
        let outcome = if is_update {
            let edges: Vec<(u32, u32)> = (0..edges_per_update)
                .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
                .collect();
            conn.ingest(&tenant, &edges)
        } else {
            conn.infer(&tenant, rng.gen_range(0..nodes))
        };
        let st = stats.entry(tenant_idx).or_default();
        st.requests += 1;
        if is_update {
            st.ingests += 1;
        }
        match outcome {
            Outcome::Ok(lat) => {
                st.ok += 1;
                st.latencies.push(lat);
                stgraph_telemetry::histogram_labeled("loadgen.latency_ns", &[("tenant", &tenant)])
                    .record(lat.as_nanos() as u64);
            }
            Outcome::Rejected(429) => {
                st.r429 += 1;
                // Over-quota: back off a moment instead of hot-spinning the
                // admission gate.
                std::thread::sleep(Duration::from_millis(2));
            }
            Outcome::Rejected(503) => st.r503 += 1,
            Outcome::Rejected(504) => st.r504 += 1,
            Outcome::Rejected(_) => st.other_rejected += 1,
            Outcome::ProtocolError => st.protocol_errors += 1,
            Outcome::ConnError => {
                st.conn_errors += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    stats
}

fn main() {
    let args = parse_args();
    let http_addr = args.get("http").cloned();
    let bin_addr = args.get("bin").cloned();
    let proto = args
        .get("proto")
        .map(String::as_str)
        .unwrap_or(if http_addr.is_some() { "http" } else { "bin" })
        .to_string();
    let requests = get(&args, "requests", 1000u64);
    let tenants = get(&args, "tenants", 4usize).max(1);
    let workers = get(&args, "workers", 4usize).max(1);
    let zipf_s = get(&args, "zipf_s", 1.1f64);
    let update_frac = get(&args, "update_frac", 0.05f64).clamp(0.0, 1.0);
    let edges_per_update = get(&args, "edges_per_update", 4usize).max(1);
    let nodes = get(&args, "nodes", 64u32).max(1);
    let seed = get(&args, "seed", 7u64);
    let json_path = args.get("json").cloned();

    let pick_addr = |want: &str| -> String {
        let addr = match want {
            "http" => http_addr.clone(),
            _ => bin_addr.clone(),
        };
        addr.unwrap_or_else(|| {
            eprintln!("--proto {proto} needs --{want} <host:port>");
            std::process::exit(2);
        })
    };

    let zipf = Zipf::new(tenants, zipf_s);
    let issued = AtomicU64::new(0);
    let merged: Mutex<HashMap<usize, TenantStats>> = Mutex::new(HashMap::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (addr, p) = match proto.as_str() {
                "http" => (pick_addr("http"), Proto::Http),
                "bin" => (pick_addr("bin"), Proto::Bin),
                "both" => {
                    if w % 2 == 0 {
                        (pick_addr("http"), Proto::Http)
                    } else {
                        (pick_addr("bin"), Proto::Bin)
                    }
                }
                other => {
                    eprintln!("unknown --proto '{other}' (http|bin|both)");
                    std::process::exit(2);
                }
            };
            let issued = &issued;
            let zipf = &zipf;
            let merged = &merged;
            scope.spawn(move || {
                let local = worker(
                    w,
                    addr,
                    p,
                    issued,
                    requests,
                    zipf,
                    nodes,
                    update_frac,
                    edges_per_update,
                    seed,
                );
                let mut all = merged.lock().unwrap();
                for (tenant, st) in local {
                    all.entry(tenant).or_default().absorb(st);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let all = merged.into_inner().unwrap();

    let mut totals = TenantStats::default();
    let mut json_tenants = Vec::new();
    let mut idxs: Vec<usize> = all.keys().copied().collect();
    idxs.sort_unstable();
    for idx in idxs {
        let st = &all[&idx];
        let mut rec = LatencyRecorder::new();
        for &d in &st.latencies {
            rec.record(d);
        }
        let (p50, p95, p99) = (
            rec.percentile(0.50).as_micros(),
            rec.percentile(0.95).as_micros(),
            rec.percentile(0.99).as_micros(),
        );
        println!(
            "tenant t{idx}: requests={} ok={} ingests={} r429={} r503={} r504={} \
             protocol_errors={} conn_errors={} p50_us={p50} p95_us={p95} p99_us={p99}",
            st.requests,
            st.ok,
            st.ingests,
            st.r429,
            st.r503,
            st.r504,
            st.protocol_errors,
            st.conn_errors
        );
        json_tenants.push(format!(
            "{{\"tenant\":\"t{idx}\",\"requests\":{},\"ok\":{},\"r429\":{},\"r503\":{},\
             \"r504\":{},\"protocol_errors\":{},\"p50_us\":{p50},\"p95_us\":{p95},\
             \"p99_us\":{p99}}}",
            st.requests, st.ok, st.r429, st.r503, st.r504, st.protocol_errors
        ));
        totals.requests += st.requests;
        totals.ok += st.ok;
        totals.r429 += st.r429;
        totals.r503 += st.r503;
        totals.r504 += st.r504;
        totals.other_rejected += st.other_rejected;
        totals.protocol_errors += st.protocol_errors;
        totals.conn_errors += st.conn_errors;
        totals.ingests += st.ingests;
    }
    let throughput = totals.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "total: requests={} ok={} r429={} r503={} r504={} protocol_errors={} conn_errors={} \
         elapsed_s={:.3} throughput_rps={throughput:.1}",
        totals.requests,
        totals.ok,
        totals.r429,
        totals.r503,
        totals.r504,
        totals.protocol_errors,
        totals.conn_errors,
        elapsed.as_secs_f64()
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\"requests\":{},\"ok\":{},\"r429\":{},\"r503\":{},\"r504\":{},\
             \"protocol_errors\":{},\"conn_errors\":{},\"elapsed_s\":{:.3},\
             \"throughput_rps\":{throughput:.1},\"tenants\":[{}]}}\n",
            totals.requests,
            totals.ok,
            totals.r429,
            totals.r503,
            totals.r504,
            totals.protocol_errors,
            totals.conn_errors,
            elapsed.as_secs_f64(),
            json_tenants.join(",")
        );
        std::fs::write(&path, json).expect("write --json file");
        eprintln!("wrote {path}");
    }

    if totals.protocol_errors > 0 {
        std::process::exit(1);
    }
}
