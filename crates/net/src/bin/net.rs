//! `net` — stand up the full network serve tier: dataset → live graph →
//! engine thread → model registry → HTTP + binary listeners.
//!
//! ```text
//! cargo run --release -p stgraph-net --bin net -- \
//!     --dataset MO --tenants 4 --http-port 0 --bin-port 0
//! ```
//!
//! Each tenant `t0..t{n-1}` gets its own checkpoint (freshly initialised
//! and written through the real `.stgc` save/publish path unless
//! `--models-dir` already holds `t<i>.stgc` files), so the registry, the
//! LRU budget and the engine's provider hook are all exercised exactly as
//! they would be with trained models.
//!
//! The first stdout line is machine-parseable:
//! `listening http=<addr> bin=<addr> nodes=<n> tenants=<n>` — the CI smoke
//! job and the load generator read it to find the ephemeral ports.

use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use stgraph_datasets::{info, load_dynamic, GraphKind};
use stgraph_dyngraph::DtdgSource;
use stgraph_net::{
    build_resident_cell, AdmissionController, ModelMeta, ModelRegistry, NetConfig, NetServer,
    ServeContext, TenantQuota,
};
use stgraph_serve::engine::ServeConfig;
use stgraph_serve::ingest::LiveGraph;
use stgraph_serve::{
    load_checkpoint, save_checkpoint, EngineHost, InferenceEngine, OnlineConfig, OnlineTrainer,
};
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::{StateDict, Tensor};

const HELP: &str = "stgraph-net — serve temporal GNN inference over HTTP and a binary protocol

Options:
  --dataset <name|code>   dynamic dataset for the live graph (default MO)
  --scale <n>             dataset size divisor (default 64)
  --timestamps <n>        generations kept from the source stream (default 20)
  --pct-change <f>        snapshot churn percent (default 5)
  --model <arch>          tenant cell architecture (default tgcn)
  --features <n>          feature width (default 8)
  --hidden <n>            hidden width (default 16)
  --seed <n>              base RNG seed; tenant i uses seed+1+i (default 42)
  --tenants <n>           tenants t0..t{n-1} to publish models for (default 4)
  --models-dir <dir>      where tenant .stgc files live; existing files are
                          reused, missing ones are initialised and saved
                          (default: a fresh temp directory)
  --registry-budget-mb <n>  resident-checkpoint LRU byte budget (default 256)
  --max-resident-models <n> engine-side resident cell cap (default 8)
  --quota <n>             per-tenant sustained requests/s (default 500)
  --burst <n>             per-tenant token-bucket burst (default 100)
  --max-inflight <n>      per-tenant concurrency cap (default 32)
  --http-port <n>         HTTP port, 0 = ephemeral (default 0)
  --bin-port <n>          binary-protocol port, 0 = ephemeral (default 0)
  --threads <n>           acceptor threads per listener (default: cores, 2..16)
  --max-batch <n>         engine micro-batch cap (default 256)
  --queue-cap <n>         engine queue bound (default 1024)
  --deadline-ms <n>       per-query deadline (default off)
  --duration-s <n>        serve this long then exit; 0 = until POST
                          /admin/shutdown (default 0)
  --online                attach an online trainer to tenant t0: every
                          POST /ingest batch feeds a replay buffer and an
                          incremental gradient step, and each published
                          weight generation is installed behind the
                          generation guard (queries pinned to generation g
                          keep generation-g weights)
  --replay-cap <n>        online replay-buffer capacity in edges (default 4096)
  --staleness-ms <n>      online replay staleness bound on the logical
                          stream clock (default 60000)
  --online-batch <n>      positive edges sampled per online step (default 64)
  --online-lr <f>         online Adam learning rate (default 1e-2)
  --help                  this text

Fault injection: set STGRAPH_FAULTS (e.g. 'net.read:every=50,seed=1') to
exercise the net.accept / net.read sites alongside the engine's own; with
--online the online.step / online.publish sites fire too (a faulted step
rolls back exactly and halts training; serving continues).";

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        if key == "--help" || key == "-h" {
            println!("{HELP}");
            std::process::exit(0);
        }
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("unexpected argument '{key}' (try --help)");
            std::process::exit(2);
        };
        if name == "online" {
            out.insert(name.to_string(), "1".to_string());
            continue;
        }
        let Some(value) = args.next() else {
            eprintln!("missing value for --{name}");
            std::process::exit(2);
        };
        out.insert(name.replace('-', "_"), value);
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: '{v}'");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args = parse_args();
    let dataset = args.get("dataset").map_or("MO", String::as_str).to_string();
    let meta = info(&dataset);
    assert_eq!(meta.kind, GraphKind::Dynamic, "net needs a dynamic dataset");
    let model = args.get("model").map_or("tgcn", String::as_str).to_string();
    let features = get(&args, "features", 8usize);
    let hidden = get(&args, "hidden", 16usize);
    let max_t = get(&args, "timestamps", 20usize);
    let pct = get(&args, "pct_change", 5.0f64);
    let scale = get(&args, "scale", 64usize);
    let seed = get(&args, "seed", 42u64);
    let tenants = get(&args, "tenants", 4usize).max(1);
    let budget_mb = get(&args, "registry_budget_mb", 256usize);
    let max_resident = get(&args, "max_resident_models", 8usize).max(1);
    let duration_s = get(&args, "duration_s", 0u64);
    let online = args.contains_key("online");
    let replay_cap = get(&args, "replay_cap", 4096usize).max(1);
    let staleness_ms = get(&args, "staleness_ms", 60_000u64);
    let online_batch = get(&args, "online_batch", 64usize).max(1);
    let online_lr = get(&args, "online_lr", 1e-2f32);

    let quota = TenantQuota {
        rate_per_s: get(&args, "quota", 500u64),
        burst: get(&args, "burst", 100u64),
        max_inflight: get(&args, "max_inflight", 32u64),
    };

    let mut config = ServeConfig::from_env();
    config.max_batch = get(&args, "max_batch", config.max_batch).max(1);
    config.queue_capacity = get(&args, "queue_cap", config.queue_capacity).max(1);
    if let Some(ms) = args.get("deadline_ms") {
        let ms: u64 = ms.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --deadline-ms: '{ms}'");
            std::process::exit(2);
        });
        config.deadline = Some(Duration::from_millis(ms));
    }

    let raw = load_dynamic(meta.name, scale);
    let mut src = DtdgSource::from_temporal_edges(raw.num_nodes, &raw.edges, pct);
    src.snapshots.truncate(max_t);
    let num_nodes = src.num_nodes;
    eprintln!(
        "stream: {} ({num_nodes} nodes, {} generations available)",
        meta.name,
        src.num_timestamps()
    );

    // Publish one checkpoint per tenant through the real save → publish
    // path. Existing files in --models-dir are reused (trained models);
    // missing ones are initialised here.
    let models_dir = args.get("models_dir").cloned().unwrap_or_else(|| {
        let dir = std::env::temp_dir().join(format!("stgraph-net-models-{}", std::process::id()));
        dir.to_string_lossy().into_owned()
    });
    std::fs::create_dir_all(&models_dir).expect("create models dir");
    let registry = Arc::new(ModelRegistry::new(budget_mb << 20));
    let mut t0_slot = None;
    for i in 0..tenants {
        let tenant = format!("t{i}");
        let init_seed = seed + 1 + i as u64;
        let path = std::path::Path::new(&models_dir).join(format!("{tenant}.stgc"));
        if !path.exists() {
            use rand::SeedableRng;
            let mut rng = ChaCha8Rng::seed_from_u64(init_seed);
            let mut params = ParamSet::new();
            stgraph_serve::build_cell(&model, &mut params, features, hidden, &mut rng)
                .unwrap_or_else(|| {
                    eprintln!("unknown model '{model}' (try --help)");
                    std::process::exit(2);
                });
            save_checkpoint(&path, &params.to_state_dict()).expect("save tenant checkpoint");
        }
        let key = registry
            .publish(
                &tenant,
                ModelMeta {
                    arch: model.clone(),
                    features,
                    hidden,
                    init_seed,
                },
                &path,
            )
            .expect("publish tenant model");
        eprintln!("tenant {tenant}: slot {key} from {}", path.display());
        if i == 0 {
            t0_slot = Some((key, path.clone(), init_seed));
        }
    }

    // Engine thread: default cell + per-tenant models resolved lazily
    // through the registry provider.
    let reg_for_engine = Arc::clone(&registry);
    let model_for_engine = model.clone();
    let host = EngineHost::spawn(config, move || {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let cell =
            stgraph_serve::build_cell(&model_for_engine, &mut params, features, hidden, &mut rng)
                .expect("default cell architecture");
        let feats = Tensor::rand_uniform((num_nodes, features), -1.0, 1.0, &mut rng);
        let live = LiveGraph::from_source(&src);
        let mut engine = InferenceEngine::new(cell, feats, live, "seastar");
        engine.set_max_resident_models(max_resident);
        engine.set_model_provider(Box::new(move |key| {
            reg_for_engine
                .resident(key)
                .ok()
                .and_then(|m| build_resident_cell(&m))
        }));
        if online {
            // Tenant t0 trains on the live stream: rebuild its cell with
            // the registry's exact draw order, pin it resident, and hand
            // the trainer the serving ParamSet so each published weight
            // generation is installed in place behind the generation guard.
            let (t0_key, t0_path, t0_seed) = t0_slot.expect("tenant t0 exists");
            let mut t0_rng = ChaCha8Rng::seed_from_u64(t0_seed);
            let mut t0_params = ParamSet::new();
            let t0_cell = stgraph_serve::build_cell(
                &model_for_engine,
                &mut t0_params,
                features,
                hidden,
                &mut t0_rng,
            )
            .expect("t0 cell architecture");
            let entries = load_checkpoint(&t0_path).expect("reload t0 checkpoint");
            t0_params
                .try_load_state_dict(&entries)
                .expect("t0 checkpoint shape");
            engine.install_model(t0_key, t0_cell);
            let cfg = OnlineConfig {
                seed: t0_seed,
                batch_size: online_batch,
                lr: online_lr,
                replay_cap,
                staleness_ms,
                ..OnlineConfig::default()
            };
            let mut trainer =
                OnlineTrainer::new(&model_for_engine, features, hidden, num_nodes, cfg)
                    .expect("t0 online trainer");
            trainer
                .load_weights(&entries)
                .expect("t0 checkpoint into trainer");
            trainer.gauges().register();
            engine.attach_online(trainer, t0_key, t0_params);
        }
        engine
    });

    let admission = AdmissionController::new(quota);
    for i in 0..tenants {
        admission.set_quota(&format!("t{i}"), quota);
    }
    let ctx = Arc::new(ServeContext {
        queue: Arc::clone(host.queue()),
        registry,
        admission,
        num_nodes: num_nodes as u32,
    });

    let mut net_config = NetConfig {
        http_addr: format!("127.0.0.1:{}", get(&args, "http_port", 0u16)),
        bin_addr: format!("127.0.0.1:{}", get(&args, "bin_port", 0u16)),
        ..NetConfig::default()
    };
    if let Some(t) = args.get("threads") {
        net_config.threads = t.parse::<usize>().unwrap_or(net_config.threads).max(1);
    }
    let handle = NetServer::start(net_config, ctx).expect("bind listeners");
    println!(
        "listening http={} bin={} nodes={num_nodes} tenants={tenants}",
        handle.http_addr, handle.bin_addr
    );

    if duration_s > 0 {
        handle.wait_timeout(Duration::from_secs(duration_s));
    } else {
        // Until /admin/shutdown (poll in day-long chunks; wait_timeout
        // returns early the moment shutdown triggers).
        while !handle.wait_timeout(Duration::from_secs(86_400)) {}
    }
    handle.shutdown();
    let report = host.shutdown();
    println!(
        "served: queries={} forwards={} batches={} shed={} expired={}",
        report.queries, report.forwards, report.batches, report.shed, report.expired
    );
    if let Some(o) = report.online {
        println!(
            "online: steps={} weight_gen={} replay={} last_loss={:.6}{}",
            o.steps,
            o.weight_generation,
            o.replay_len,
            o.last_loss,
            if o.halted { " HALTED" } else { "" }
        );
    }
}
