//! Evaluation metrics for the two benchmark tasks: regression errors for
//! static-temporal node regression and classification metrics (including
//! ROC-AUC) for DTDG link prediction.

use stgraph_tensor::Tensor;

/// Mean squared error.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.numel() as f32;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / n
}

/// Mean absolute error.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.numel() as f32;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| (p - t).abs())
        .sum::<f32>()
        / n
}

/// Root mean squared error.
pub fn rmse(pred: &Tensor, target: &Tensor) -> f32 {
    mse(pred, target).sqrt()
}

/// Binary accuracy of logits against 0/1 labels at threshold 0.
pub fn binary_accuracy(logits: &Tensor, labels: &Tensor) -> f32 {
    assert_eq!(logits.numel(), labels.numel());
    let correct = logits
        .data()
        .iter()
        .zip(labels.data())
        .filter(|(&l, &y)| (l > 0.0) == (y > 0.5))
        .count();
    correct as f32 / logits.numel() as f32
}

/// Area under the ROC curve for logits against 0/1 labels, computed by the
/// rank statistic (equivalent to the Mann–Whitney U), with the midrank
/// correction for tied scores.
pub fn roc_auc(logits: &Tensor, labels: &Tensor) -> f32 {
    assert_eq!(logits.numel(), labels.numel());
    let n = logits.numel();
    let mut idx: Vec<usize> = (0..n).collect();
    let scores = logits.data();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // Midranks.
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = mid;
        }
        i = j + 1;
    }
    let labels = labels.data();
    let pos: f64 = labels.iter().filter(|&&y| y > 0.5).count() as f64;
    let neg = n as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return 0.5;
    }
    let rank_sum: f64 = (0..n).filter(|&k| labels[k] > 0.5).map(|k| ranks[k]).sum();
    ((rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_metrics() {
        let p = Tensor::from_vec(4, vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec(4, vec![1.0, 1.0, 5.0, 4.0]);
        assert!((mse(&p, &t) - (0.0 + 1.0 + 4.0 + 0.0) / 4.0).abs() < 1e-6);
        assert!((mae(&p, &t) - 3.0 / 4.0).abs() < 1e-6);
        assert!((rmse(&p, &t) - (1.25f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn accuracy_thresholds_at_zero() {
        let logits = Tensor::from_vec(4, vec![2.0, -1.0, 0.5, -0.1]);
        let labels = Tensor::from_vec(4, vec![1.0, 0.0, 0.0, 1.0]);
        // correct: idx0 (pos,pos), idx1 (neg,neg); wrong: idx2, idx3.
        assert!((binary_accuracy(&logits, &labels) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let logits = Tensor::from_vec(4, vec![-2.0, -1.0, 1.0, 2.0]);
        let labels = Tensor::from_vec(4, vec![0.0, 0.0, 1.0, 1.0]);
        assert!((roc_auc(&logits, &labels) - 1.0).abs() < 1e-6);
        let inverted = Tensor::from_vec(4, vec![1.0, 1.0, 0.0, 0.0]);
        assert!((roc_auc(&logits, &inverted) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        // All scores equal: AUC must be exactly 0.5.
        let logits = Tensor::from_vec(4, vec![0.3, 0.3, 0.3, 0.3]);
        let labels = Tensor::from_vec(4, vec![1.0, 0.0, 1.0, 0.0]);
        assert!((roc_auc(&logits, &labels) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_degenerate_single_class() {
        let logits = Tensor::from_vec(3, vec![0.1, 0.2, 0.3]);
        let labels = Tensor::from_vec(3, vec![1.0, 1.0, 1.0]);
        assert_eq!(roc_auc(&logits, &labels), 0.5);
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.9, 0.4}, neg {0.5, 0.1}. Pairs: (0.9>0.5),
        // (0.9>0.1), (0.4<0.5), (0.4>0.1) => 3/4.
        let logits = Tensor::from_vec(4, vec![0.9, 0.4, 0.5, 0.1]);
        let labels = Tensor::from_vec(4, vec![1.0, 1.0, 0.0, 0.0]);
        assert!((roc_auc(&logits, &labels) - 0.75).abs() < 1e-6);
    }
}
