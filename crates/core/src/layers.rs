//! GNN layers written in the vertex-centric programming model, the building
//! blocks TGNN models are assembled from (§V.A.1). Dense transforms run on
//! the backend (`stgraph-tensor`); graph aggregation runs through the
//! temporally-aware executor as compiled vertex-centric programs.

use crate::executor::{compile, CompiledProgram, TemporalExecutor};
use rand::Rng;
use std::rc::Rc;
use stgraph_graph::base::{gcn_norm, Snapshot};
use stgraph_seastar::ir::{gat_aggregation, gcn_aggregation, Program, ProgramBuilder};
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::{Param, StateDict, Tape, Tensor, Var};

/// Per-snapshot GCN degree norms as an `[n, 1]` tensor.
pub fn norm_tensor(snap: &Snapshot) -> Tensor {
    let n = snap.in_degrees.len();
    Tensor::from_vec((n, 1), gcn_norm(&snap.in_degrees))
}

/// Graph convolution (Kipf & Welling) with self-loops and symmetric
/// normalisation: `out = D̂^{-1/2} Â D̂^{-1/2} (X W) + b`.
///
/// ```
/// use stgraph::backend::create_backend;
/// use stgraph::executor::{GraphSource, TemporalExecutor};
/// use stgraph::layers::GcnConv;
/// use stgraph_graph::base::Snapshot;
/// use stgraph_tensor::{nn::ParamSet, Tape, Tensor};
/// use rand::SeedableRng;
///
/// let graph = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let exec = TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(graph));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut params = ParamSet::new();
/// let conv = GcnConv::new(&mut params, "gcn", 3, 8, &mut rng);
///
/// let tape = Tape::new();
/// let x = tape.constant(Tensor::zeros((4, 3)));
/// let y = conv.forward(&tape, &exec, 0, &x);
/// assert_eq!(y.value().shape(), stgraph_tensor::Shape::Mat(4, 8));
/// # let loss = y.sum();
/// # tape.backward(&loss);
/// ```
pub struct GcnConv {
    linear: Linear,
    program: Rc<CompiledProgram>,
    fused: bool,
}

impl GcnConv {
    /// A new GCN layer registered into `params`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> GcnConv {
        GcnConv {
            linear: Linear::new(params, name, in_features, out_features, true, rng),
            program: compile(gcn_aggregation(out_features)),
            fused: false,
        }
    }

    /// A GCN layer whose dense transform is *inside* the vertex program
    /// ([`stgraph_seastar::ir::gcn_linear_aggregation`]), so the executor's
    /// aggregate-into-GEMM fusion applies: neighbour features accumulate
    /// straight into the gate pre-activations in one adjacency pass, never
    /// materialising the aggregated `[n, in]` tensor.
    ///
    /// Opt-in rather than a drop-in swap because the bias lands *after* the
    /// aggregation (`Â(XW) + b`), whereas [`GcnConv::new`] computes
    /// `Â(XW + b)`. Both are legitimate GCN formulations (the fused order
    /// is PyG's), but trained weights are not interchangeable between them.
    pub fn new_fused(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> GcnConv {
        GcnConv {
            linear: Linear::new(params, name, in_features, out_features, true, rng),
            program: compile(stgraph_seastar::ir::gcn_linear_aggregation(
                in_features,
                out_features,
            )),
            fused: true,
        }
    }

    /// True when built by [`GcnConv::new_fused`].
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.linear.fan_out()
    }

    /// The dense weight parameter (tests, weight sharing with baselines).
    pub fn weight_param(&self) -> &stgraph_tensor::Param {
        &self.linear.weight
    }

    /// The bias parameter.
    pub fn bias_param(&self) -> Option<&stgraph_tensor::Param> {
        self.linear.bias.as_ref()
    }

    /// Applies the layer at timestamp `t`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
    ) -> Var<'t> {
        let snap = exec.snapshot_for(t);
        if self.fused {
            let w = tape.param(&self.linear.weight);
            let y = exec.apply_mats(
                tape,
                &self.program,
                t,
                &[x],
                vec![norm_tensor(&snap)],
                vec![],
                &[&w],
            );
            return match &self.linear.bias {
                Some(b) => y.add_bias(&tape.param(b)),
                None => y,
            };
        }
        let h = self.linear.forward(tape, x);
        exec.apply(
            tape,
            &self.program,
            t,
            &[&h],
            vec![norm_tensor(&snap)],
            vec![],
        )
    }
}

impl StateDict for GcnConv {
    fn parameters(&self) -> Vec<Param> {
        self.linear.parameters()
    }
}

/// Single-head graph attention (Veličković et al.): attention coefficients
/// from `leaky_relu(a_l·h_u + a_r·h_v)`, edge-softmax per destination,
/// weighted in-neighbour sum. The edge softmax is the op Seastar motivates
/// its vertex-centric model with.
pub struct GatConv {
    weight: Linear,
    attn_l: Linear,
    attn_r: Linear,
    program: Rc<CompiledProgram>,
}

impl GatConv {
    /// A new single-head GAT layer with LeakyReLU slope 0.2.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> GatConv {
        GatConv {
            weight: Linear::new(
                params,
                &format!("{name}.w"),
                in_features,
                out_features,
                false,
                rng,
            ),
            attn_l: Linear::new(params, &format!("{name}.al"), out_features, 1, false, rng),
            attn_r: Linear::new(params, &format!("{name}.ar"), out_features, 1, false, rng),
            program: compile(gat_aggregation(out_features, 0.2)),
        }
    }

    /// The dense weight parameter.
    pub fn weight_p(&self) -> &stgraph_tensor::Param {
        &self.weight.weight
    }

    /// The left attention parameter.
    pub fn attn_l_p(&self) -> &stgraph_tensor::Param {
        &self.attn_l.weight
    }

    /// The right attention parameter.
    pub fn attn_r_p(&self) -> &stgraph_tensor::Param {
        &self.attn_r.weight
    }

    /// Applies the layer at timestamp `t`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
    ) -> Var<'t> {
        let h = self.weight.forward(tape, x);
        let el = self.attn_l.forward(tape, &h);
        let er = self.attn_r.forward(tape, &h);
        exec.apply(tape, &self.program, t, &[&h, &el, &er], vec![], vec![])
    }
}

impl StateDict for GatConv {
    fn parameters(&self) -> Vec<Param> {
        let mut out = self.weight.parameters();
        out.extend(self.attn_l.parameters());
        out.extend(self.attn_r.parameters());
        out
    }
}

/// Multi-head graph attention: `heads` independent [`GatConv`]s with their
/// outputs concatenated (the standard GAT multi-head form).
pub struct MultiHeadGatConv {
    heads: Vec<GatConv>,
}

impl MultiHeadGatConv {
    /// A new multi-head GAT producing `heads * out_per_head` features.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_per_head: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> MultiHeadGatConv {
        assert!(heads >= 1);
        MultiHeadGatConv {
            heads: (0..heads)
                .map(|h| {
                    GatConv::new(
                        params,
                        &format!("{name}.h{h}"),
                        in_features,
                        out_per_head,
                        rng,
                    )
                })
                .collect(),
        }
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Applies all heads and concatenates along the feature axis.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
    ) -> Var<'t> {
        let outs: Vec<Var<'t>> = self
            .heads
            .iter()
            .map(|h| h.forward(tape, exec, t, x))
            .collect();
        let refs: Vec<&Var<'t>> = outs.iter().collect();
        Var::concat_cols(&refs)
    }
}

impl StateDict for MultiHeadGatConv {
    fn parameters(&self) -> Vec<Param> {
        self.heads.iter().flat_map(|h| h.parameters()).collect()
    }
}

/// The vertex program for `-D^{-1/2} A D^{-1/2} X` — the scaled-Laplacian
/// application `L̂X` used by Chebyshev convolutions (with the standard
/// `λ_max ≈ 2` approximation, `L̂ = L - I = -D^{-1/2} A D^{-1/2}`).
pub fn neg_sym_aggregation(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let norm = b.node_const(1);
    let scaled = b.mul(h, norm);
    let gathered = b.gather_src(scaled);
    let agg = b.agg_sum_dst(gathered);
    let normed = b.mul(agg, norm);
    let out = b.scale(normed, -1.0);
    b.finish(&[out])
}

/// Chebyshev-polynomial spectral convolution (Defferrard et al.):
/// `out = Σ_{k<K} T_k(L̂) X · W_k + b`, with `T_0 = X`, `T_1 = L̂X`,
/// `T_k = 2 L̂ T_{k-1} - T_{k-2}`.
pub struct ChebConv {
    weights: Vec<Linear>,
    program: Rc<CompiledProgram>,
    k: usize,
}

impl ChebConv {
    /// A new K-order ChebConv (`k >= 1`; `k = 1` degenerates to a dense
    /// layer, `k = 2` adds one neighbourhood hop, etc.).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> ChebConv {
        assert!(k >= 1, "ChebConv needs K >= 1");
        let weights = (0..k)
            .map(|i| {
                // Only W_0 carries the bias, matching PyG's ChebConv.
                Linear::new(
                    params,
                    &format!("{name}.w{i}"),
                    in_features,
                    out_features,
                    i == 0,
                    rng,
                )
            })
            .collect();
        ChebConv {
            weights,
            program: compile(neg_sym_aggregation(in_features)),
            k,
        }
    }

    /// Chebyshev order K.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Applies the layer at timestamp `t`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
    ) -> Var<'t> {
        let snap = exec.snapshot_for(t);
        // Norms without self-loops: 1/sqrt(max(deg, 1)).
        let n = snap.in_degrees.len();
        let norm: Vec<f32> = snap
            .in_degrees
            .iter()
            .map(|&d| 1.0 / (d.max(1) as f32).sqrt())
            .collect();
        let norm = Tensor::from_vec((n, 1), norm);

        let mut out = self.weights[0].forward(tape, x);
        if self.k == 1 {
            return out;
        }
        let lap = |tape: &'t Tape, v: &Var<'t>| {
            exec.apply(tape, &self.program, t, &[v], vec![norm.clone()], vec![])
        };
        let mut t_prev = x.clone();
        let mut t_cur = lap(tape, x);
        out = out.add(&self.weights[1].forward(tape, &t_cur));
        for k in 2..self.k {
            let t_next = lap(tape, &t_cur).mul_scalar(2.0).sub(&t_prev);
            out = out.add(&self.weights[k].forward(tape, &t_next));
            t_prev = t_cur;
            t_cur = t_next;
        }
        out
    }
}

impl StateDict for ChebConv {
    fn parameters(&self) -> Vec<Param> {
        self.weights.iter().flat_map(|w| w.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::create_backend;
    use crate::executor::GraphSource;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_tensor::autograd::check::{assert_close, numeric_grad};

    fn snap() -> Snapshot {
        Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
    }

    fn exec() -> TemporalExecutor {
        TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap()))
    }

    #[test]
    fn gcn_conv_matches_manual_computation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let conv = GcnConv::new(&mut ps, "g", 3, 2, &mut rng);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = conv.forward(&tape, &e, 0, &xv);
        // Manual: h = xW + b, then N(A^T+I)N h.
        let s = snap();
        let w = conv.linear.weight.value();
        let b = conv.linear.bias.as_ref().unwrap().value();
        let h = x.matmul(&w).add_bias(&b);
        let norm = gcn_norm(&s.in_degrees);
        let mut want = vec![0.0f32; 6 * 2];
        for v in 0..6 {
            for (u, _) in s.reverse_csr.iter_row(v) {
                for j in 0..2 {
                    want[v * 2 + j] += norm[v] * norm[u as usize] * h.at(u as usize, j);
                }
            }
            for j in 0..2 {
                want[v * 2 + j] += norm[v] * norm[v] * h.at(v, j);
            }
        }
        let want = Tensor::from_vec((6, 2), want);
        assert!(y.value().approx_eq(&want, 1e-4));
    }

    #[test]
    fn gcn_conv_weight_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let conv = GcnConv::new(&mut ps, "g", 3, 2, &mut rng);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let e = exec();
        {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e, 0, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        let analytic = conv.linear.weight.grad();
        let w0 = conv.linear.weight.value();
        let e2 = exec();
        let mut f = |w: &Tensor| {
            conv.linear.weight.set_value(w.clone());
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e2, 0, &xv).mse_loss(&target);
            let v = loss.value().item();
            // Drain the stacks without polluting accumulated grads.
            tape.backward(&loss.mul_scalar(0.0));
            v
        };
        let numeric = numeric_grad(&mut f, &w0, 1e-2);
        conv.linear.weight.set_value(w0);
        assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn fused_gcn_matches_unfused_with_zero_bias() {
        // With the bias zeroed the pre- and post-aggregation formulations
        // coincide: Â(XW) == (ÂX)W up to float association.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ps = ParamSet::new();
        let plain = GcnConv::new(&mut ps, "p", 3, 2, &mut rng);
        let fused = GcnConv::new_fused(&mut ps, "f", 3, 2, &mut rng);
        assert!(fused.is_fused());
        fused
            .linear
            .weight
            .set_value(plain.linear.weight.value().clone());
        plain
            .linear
            .bias
            .as_ref()
            .unwrap()
            .set_value(Tensor::zeros((1, 2)));
        fused
            .linear
            .bias
            .as_ref()
            .unwrap()
            .set_value(Tensor::zeros((1, 2)));
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let xv = tape.constant(x);
        let yp = plain.forward(&tape, &e, 0, &xv);
        let yf = fused.forward(&tape, &e, 1, &xv);
        assert!(
            yp.value().approx_eq(yf.value(), 1e-4),
            "diff {}",
            yp.value().max_abs_diff(yf.value())
        );
        let loss = yp.sum().add(&yf.sum());
        tape.backward(&loss);
    }

    #[test]
    fn fused_gcn_weight_and_input_gradcheck() {
        // Drives the whole fusion stack: MatmulConst adjoint, reval operand
        // recomputation, MatUse assembly, and AggMatmul backward kernels.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut ps = ParamSet::new();
        let conv = GcnConv::new_fused(&mut ps, "f", 3, 2, &mut rng);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let e = exec();
        let xp = Param::new("x", x.clone());
        {
            let tape = Tape::new();
            let xv = tape.param(&xp);
            let loss = conv.forward(&tape, &e, 0, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        for p in [&conv.linear.weight, &xp] {
            let analytic = p.grad();
            let p0 = p.value();
            let e2 = exec();
            let mut f = |w: &Tensor| {
                p.set_value(w.clone());
                let tape = Tape::new();
                let xv = tape.constant(xp.value().clone());
                let loss = conv.forward(&tape, &e2, 0, &xv).mse_loss(&target);
                let v = loss.value().item();
                // Drain the stacks without polluting accumulated grads.
                tape.backward(&loss.mul_scalar(0.0));
                v
            };
            let numeric = numeric_grad(&mut f, &p0, 1e-2);
            p.set_value(p0);
            assert_close(&analytic, &numeric, 2e-2);
        }
    }

    #[test]
    fn gat_attention_rows_are_convex_combinations() {
        // With equal attention inputs, GAT output of v = mean of in-nbr h.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let conv = GatConv::new(&mut ps, "a", 3, 4, &mut rng);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = conv.forward(&tape, &e, 0, &xv);
        let h = x.matmul(&conv.weight.weight.value());
        let s = snap();
        // Isolated-in-degree-0 vertices output zeros.
        for v in 0..6 {
            let indeg = s.in_degrees[v];
            if indeg == 0 {
                for j in 0..4 {
                    assert_eq!(y.value().at(v, j), 0.0);
                }
            }
        }
        // Vertices with one in-neighbour copy that neighbour's h (softmax
        // over a single edge is 1).
        for v in 0..6 {
            let nbrs: Vec<u32> = s.reverse_csr.iter_row(v).map(|(u, _)| u).collect();
            if nbrs.len() == 1 {
                for j in 0..4 {
                    assert!((y.value().at(v, j) - h.at(nbrs[0] as usize, j)).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn gat_weight_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let conv = GatConv::new(&mut ps, "a", 2, 3, &mut rng);
        let x = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let e = exec();
        {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e, 0, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        for p in [
            &conv.weight.weight,
            &conv.attn_l.weight,
            &conv.attn_r.weight,
        ] {
            let analytic = p.grad();
            let p0 = p.value();
            let e2 = exec();
            let mut f = |w: &Tensor| {
                p.set_value(w.clone());
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let loss = conv.forward(&tape, &e2, 0, &xv).mse_loss(&target);
                let v = loss.value().item();
                // Drain the stacks without polluting accumulated grads.
                tape.backward(&loss.mul_scalar(0.0));
                v
            };
            let numeric = numeric_grad(&mut f, &p0, 1e-2);
            p.set_value(p0);
            assert_close(&analytic, &numeric, 3e-2);
        }
    }

    #[test]
    fn cheb_k1_equals_linear() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let conv = ChebConv::new(&mut ps, "c", 3, 2, 1, &mut rng);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = conv.forward(&tape, &e, 0, &xv);
        let want = x
            .matmul(&conv.weights[0].weight.value())
            .add_bias(&conv.weights[0].bias.as_ref().unwrap().value());
        assert!(y.value().approx_eq(&want, 1e-5));
    }

    #[test]
    fn cheb_gradcheck_k3() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let conv = ChebConv::new(&mut ps, "c", 2, 2, 3, &mut rng);
        let x = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let e = exec();
        {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e, 0, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        let p = &conv.weights[2].weight;
        let analytic = p.grad();
        let p0 = p.value();
        let e2 = exec();
        let mut f = |w: &Tensor| {
            p.set_value(w.clone());
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e2, 0, &xv).mse_loss(&target);
            let v = loss.value().item();
            // Drain the stacks without polluting accumulated grads.
            tape.backward(&loss.mul_scalar(0.0));
            v
        };
        let numeric = numeric_grad(&mut f, &p0, 1e-2);
        p.set_value(p0);
        assert_close(&analytic, &numeric, 2e-2);
    }
}
