//! The STGraph backend interface (§VI.1).
//!
//! Seastar scattered its backend hooks across DGL-Hack; STGraph instead
//! confines every backend interaction to one dedicated interface created
//! through a factory, which is what keeps the framework backend-agnostic.
//! Here the interface is the execution of vertex-centric programs:
//!
//! * [`SeastarBackend`] — the default: fused vertex-parallel kernels from
//!   `stgraph-seastar` (edge values live in registers).
//! * [`ReferenceBackend`] — an unfused interpreter that materialises every
//!   edge-space value as an `[m, w]` tensor via gather/scatter, i.e. the
//!   edge-parallel strategy of PyG-style systems. It exists as the
//!   correctness oracle and as the "unfused" arm of the ablation bench.

use stgraph_graph::base::STGraphBase;
use stgraph_graph::csr::Csr;
use stgraph_seastar::exec::ExecOutput;
use stgraph_seastar::ir::{Id, Op, Program, Space};
use stgraph_tensor::{Shape, Tensor};

/// Executes vertex-centric programs for the framework.
pub trait AggregationBackend: Send + Sync {
    /// Backend name (factory key).
    fn name(&self) -> &'static str;

    /// Runs `prog` against `graph`; see
    /// `stgraph_seastar::exec::execute_with_mats`. `mat_consts` fills the
    /// program's mat-const slots (empty for programs without matmuls).
    ///
    /// One positional slice per IR binding class — the signature mirrors the
    /// kernel launch ABI rather than bundling slices into a struct.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        prog: &Program,
        graph: &dyn STGraphBase,
        inputs: &[&Tensor],
        node_consts: &[&Tensor],
        edge_consts: &[&Tensor],
        mat_consts: &[&Tensor],
        save: &[Id],
    ) -> ExecOutput;
}

/// The fused Seastar executor (default backend).
pub struct SeastarBackend;

impl AggregationBackend for SeastarBackend {
    fn name(&self) -> &'static str {
        "seastar"
    }

    fn execute(
        &self,
        prog: &Program,
        graph: &dyn STGraphBase,
        inputs: &[&Tensor],
        node_consts: &[&Tensor],
        edge_consts: &[&Tensor],
        mat_consts: &[&Tensor],
        save: &[Id],
    ) -> ExecOutput {
        let _sp = stgraph_telemetry::span_cat("kernel.fused", "kernel");
        stgraph_seastar::exec::execute_with_mats(
            prog,
            graph,
            inputs,
            node_consts,
            edge_consts,
            mat_consts,
            save,
        )
    }
}

/// Unfused reference backend: every edge-space IR value becomes a real
/// `[num_edges, w]` tensor built with edge-parallel gather/scatter kernels.
pub struct ReferenceBackend;

/// Per-edge endpoint arrays (indexed by edge id) derived from the dense
/// reverse CSR.
fn edge_endpoints(rev: &Csr) -> (Vec<u32>, Vec<u32>) {
    let m = rev.num_edges();
    let mut src = vec![0u32; m];
    let mut dst = vec![0u32; m];
    for d in 0..rev.num_nodes() {
        for (s, eid) in rev.iter_row(d) {
            src[eid as usize] = s;
            dst[eid as usize] = d as u32;
        }
    }
    (src, dst)
}

impl AggregationBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn execute(
        &self,
        prog: &Program,
        graph: &dyn STGraphBase,
        inputs: &[&Tensor],
        node_consts: &[&Tensor],
        edge_consts: &[&Tensor],
        mat_consts: &[&Tensor],
        save: &[Id],
    ) -> ExecOutput {
        let _sp = stgraph_telemetry::span_cat("kernel.unfused", "kernel");
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let (src, dst) = edge_endpoints(graph.reverse_csr());
        let mut values: Vec<Option<Tensor>> = vec![None; prog.len()];
        for (id, node) in prog.nodes.iter().enumerate() {
            let w = node.width;
            let val = match node.op {
                Op::NodeInput(slot) => inputs[slot].clone(),
                Op::NodeConst(slot) => node_consts[slot].clone(),
                Op::EdgeConst(slot) => edge_consts[slot].clone(),
                Op::GatherSrc(v) => values[v].as_ref().unwrap().gather_rows(&src),
                Op::GatherDst(v) => values[v].as_ref().unwrap().gather_rows(&dst),
                Op::AggSumDst(e) => values[e].as_ref().unwrap().scatter_add_rows(&dst, n),
                Op::AggSumSrc(e) => values[e].as_ref().unwrap().scatter_add_rows(&src, n),
                Op::AggMaxDst(e) => {
                    let ev = values[e].as_ref().unwrap();
                    let mut out = vec![0.0f32; n * w];
                    let mut seen = vec![false; n];
                    let ed = ev.data();
                    for eid in 0..m {
                        let d = dst[eid] as usize;
                        for j in 0..w {
                            let v = ed[eid * w + j];
                            let slot = &mut out[d * w + j];
                            if !seen[d] || v > *slot {
                                *slot = v;
                            }
                        }
                        seen[d] = true;
                    }
                    Tensor::from_vec(Shape::Mat(n, w), out)
                }
                Op::Add(a, b) => broadcast_bin(&values, a, b, w, |x, y| x + y),
                Op::Sub(a, b) => broadcast_bin(&values, a, b, w, |x, y| x - y),
                Op::Mul(a, b) => broadcast_bin(&values, a, b, w, |x, y| x * y),
                Op::Div(a, b) => broadcast_bin(&values, a, b, w, |x, y| x / y),
                Op::Scale(a, c) => values[a].as_ref().unwrap().mul_scalar(c),
                Op::LeakyRelu(a, s) => values[a].as_ref().unwrap().leaky_relu(s),
                Op::LeakyReluGrad(g, x, s) => broadcast_bin(&values, g, x, w, move |gv, xv| {
                    gv * if xv >= 0.0 { 1.0 } else { s }
                }),
                Op::Exp(a) => values[a].as_ref().unwrap().exp(),
                Op::Sigmoid(a) => values[a].as_ref().unwrap().sigmoid(),
                Op::Tanh(a) => values[a].as_ref().unwrap().tanh(),
                Op::ReduceFeat(a) => {
                    let t = values[a].as_ref().unwrap();
                    let rows = t.rows();
                    t.sum_axis1().reshape((rows, 1))
                }
                Op::BroadcastFeat(a, bw) => values[a].as_ref().unwrap().broadcast_col(bw),
                Op::MatmulConst(a, s) => values[a].as_ref().unwrap().matmul(mat_consts[s]),
                Op::MatmulConstT(a, s) => values[a]
                    .as_ref()
                    .unwrap()
                    .matmul(&mat_consts[s].transpose()),
                // Fully unfused oracle: materialise the aggregate, then GEMM.
                Op::AggMatmulDst(e, s) => values[e]
                    .as_ref()
                    .unwrap()
                    .scatter_add_rows(&dst, n)
                    .matmul(mat_consts[s]),
                Op::AggMatmulSrc(e, s) => values[e]
                    .as_ref()
                    .unwrap()
                    .scatter_add_rows(&src, n)
                    .matmul(mat_consts[s]),
            };
            debug_assert_eq!(
                val.rows(),
                if node.space == Space::Node { n } else { m },
                "space/row mismatch at IR node {id}"
            );
            values[id] = Some(val);
        }
        let saved = save
            .iter()
            .map(|&id| values[id].as_ref().unwrap().clone())
            .collect();
        let outputs = prog
            .outputs
            .iter()
            .map(|&o| values[o].as_ref().unwrap().clone())
            .collect();
        ExecOutput { outputs, saved }
    }
}

fn broadcast_bin(
    values: &[Option<Tensor>],
    a: Id,
    b: Id,
    w: usize,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    let (ta, tb) = (values[a].as_ref().unwrap(), values[b].as_ref().unwrap());
    let rows = ta.rows();
    let (wa, wb) = (ta.cols(), tb.cols());
    let (ad, bd) = (ta.data(), tb.data());
    let mut out = vec![0.0f32; rows * w];
    for i in 0..rows {
        for j in 0..w {
            let x = ad[i * wa + if wa == 1 { 0 } else { j }];
            let y = bd[i * wb + if wb == 1 { 0 } else { j }];
            out[i * w + j] = f(x, y);
        }
    }
    Tensor::from_vec(Shape::Mat(rows, w), out)
}

/// The factory (Factory Class Design Pattern, §VI.1): creates a backend by
/// name. Panics on unknown names, listing the known ones.
pub fn create_backend(name: &str) -> Box<dyn AggregationBackend> {
    match name {
        "seastar" => Box::new(SeastarBackend),
        "reference" => Box::new(ReferenceBackend),
        other => panic!("unknown backend '{other}'; known: seastar, reference"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::{gcn_norm, Snapshot};
    use stgraph_seastar::ir::{gat_aggregation, gcn_aggregation};

    fn snap() -> Snapshot {
        Snapshot::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (2, 5),
                (1, 4),
            ],
        )
    }

    #[test]
    fn factory_creates_by_name() {
        assert_eq!(create_backend("seastar").name(), "seastar");
        assert_eq!(create_backend("reference").name(), "reference");
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn factory_rejects_unknown() {
        create_backend("tensorflow");
    }

    #[test]
    fn backends_agree_on_gcn() {
        let g = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Tensor::rand_uniform((6, 5), -1.0, 1.0, &mut rng);
        let norm = Tensor::from_vec((6, 1), gcn_norm(&g.in_degrees));
        let prog = gcn_aggregation(5);
        let a = SeastarBackend.execute(&prog, &g, &[&x], &[&norm], &[], &[], &[]);
        let b = ReferenceBackend.execute(&prog, &g, &[&x], &[&norm], &[], &[], &[]);
        assert!(a.outputs[0].approx_eq(&b.outputs[0], 1e-4));
    }

    #[test]
    fn backends_agree_on_gat() {
        let g = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = Tensor::rand_uniform((6, 4), -1.0, 1.0, &mut rng);
        let el = Tensor::rand_uniform((6, 1), -1.0, 1.0, &mut rng);
        let er = Tensor::rand_uniform((6, 1), -1.0, 1.0, &mut rng);
        let prog = gat_aggregation(4, 0.2);
        let a = SeastarBackend.execute(&prog, &g, &[&h, &el, &er], &[], &[], &[], &[]);
        let b = ReferenceBackend.execute(&prog, &g, &[&h, &el, &er], &[], &[], &[], &[]);
        assert!(
            a.outputs[0].approx_eq(&b.outputs[0], 1e-4),
            "diff {}",
            a.outputs[0].max_abs_diff(&b.outputs[0])
        );
    }

    #[test]
    fn backends_agree_on_saved_values() {
        let g = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = Tensor::rand_uniform((6, 4), -1.0, 1.0, &mut rng);
        let el = Tensor::rand_uniform((6, 1), -1.0, 1.0, &mut rng);
        let er = Tensor::rand_uniform((6, 1), -1.0, 1.0, &mut rng);
        let prog = gat_aggregation(4, 0.2);
        let plan = stgraph_seastar::differentiate(&prog);
        let ids = plan.save_ids();
        let a = SeastarBackend.execute(&prog, &g, &[&h, &el, &er], &[], &[], &[], &ids);
        let b = ReferenceBackend.execute(&prog, &g, &[&h, &el, &er], &[], &[], &[], &ids);
        for (x, y) in a.saved.iter().zip(&b.saved) {
            assert!(x.approx_eq(y, 1e-4));
        }
    }

    #[test]
    fn backends_agree_on_fused_agg_matmul() {
        let g = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = Tensor::rand_uniform((6, 5), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng);
        let prog = stgraph_seastar::ir::gcn_linear_aggregation(5, 3);
        let (fused, _) = prog.fuse_agg_matmul(&[]);
        assert!(fused
            .nodes
            .iter()
            .any(|nd| matches!(nd.op, Op::AggMatmulDst(..))));
        let norm = Tensor::from_vec((6, 1), gcn_norm(&g.in_degrees));
        let a = SeastarBackend.execute(&fused, &g, &[&x], &[&norm], &[], &[&w], &[]);
        let b = ReferenceBackend.execute(&fused, &g, &[&x], &[&norm], &[], &[&w], &[]);
        assert!(
            a.outputs[0].approx_eq(&b.outputs[0], 1e-4),
            "diff {}",
            a.outputs[0].max_abs_diff(&b.outputs[0])
        );
    }
}
