//! The Temporally-aware Executor (§V, Figures 1–2).
//!
//! [`TemporalExecutor::apply`] runs one vertex-centric kernel application at
//! a timestamp and registers it on the autograd tape. Forward: it obtains
//! the snapshot (on demand for DTDGs — Algorithm 2), runs the fused
//! forward kernels, and pushes the saved values onto the **State Stack**
//! and the timestamp onto the **Graph Stack**. Backward (driven by the
//! tape's reverse-order traversal, which is exactly LIFO): it pops both
//! stacks, asks the graph source for the *backward* snapshot
//! (`Get-Backward-Graph`, which rewinds the GPMA), and runs the backward
//! kernels over the out-edge CSR.
//!
//! Snapshot construction within one timestamp is memoised (a TGCN applies
//! three convolutions per timestamp on the same snapshot); the memo is
//! flushed whenever the executor switches between forward and backward
//! phases so every cross-timestamp transition really exercises the
//! update/rewind path whose cost Figure 9 measures.

use crate::backend::AggregationBackend;
use crate::stacks::{GraphStack, StateFrame, StateStack};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;
use stgraph_dyngraph::source::DtdgGraph;
use stgraph_graph::base::Snapshot;
use stgraph_seastar::autodiff::{differentiate, BackwardPlan, NodeSave};
use stgraph_seastar::ir::{Id, Program};
use stgraph_telemetry::{span_timed, TimeAccumulator};
use stgraph_tensor::{Tape, Tensor, Var};

/// A forward program compiled together with its backward plan and save set.
pub struct CompiledProgram {
    /// The forward program.
    pub forward: Program,
    /// The derived backward plan (program + saved-set description).
    pub backward: BackwardPlan,
    save_ids: Vec<Id>,
    n_node_value_saves: usize,
    /// Input slots pushed onto the State Stack *beyond* what backward
    /// needs. Empty under the paper's §V.B memory optimisation; populated
    /// by [`compile_save_all_inputs`] — the ablation arm that stores every
    /// forward feature the way a framework without the forward/backward IR
    /// comparison would.
    extra_input_saves: Vec<usize>,
}

/// Traces, optimises (CSE), differentiates and packages a vertex-centric
/// program, with the minimal State-Stack saved set.
pub fn compile(forward: Program) -> Rc<CompiledProgram> {
    Rc::new(compile_impl(forward, false))
}

/// Like [`compile`], but disables the saved-set minimisation: every input
/// feature is pushed onto the State Stack each timestamp. Used by the
/// ablation measuring what the §V.B optimisation buys.
pub fn compile_save_all_inputs(forward: Program) -> Rc<CompiledProgram> {
    Rc::new(compile_impl(forward, true))
}

fn compile_impl(forward: Program, save_all: bool) -> CompiledProgram {
    assert_eq!(
        forward.outputs.len(),
        1,
        "layer programs have a single output"
    );
    let forward = forward.eliminate_common_subexpressions();
    let mut backward = differentiate(&forward);
    backward.program = backward.program.eliminate_common_subexpressions();
    // Aggregate-into-GEMM fusion: rewrite `matmul_const(agg_sum(e), W)`
    // into one adjacency pass. Values the backward plan saves must survive
    // as standalone tensors, so they protect their producers from fusion;
    // the returned remap rebases the plan's forward ids onto the fused
    // program. A no-op for programs without mat-consts.
    let save_ids_pre = backward.save_ids();
    let (forward, remap) = forward.fuse_agg_matmul(&save_ids_pre);
    for s in &mut backward.node_saves {
        if let NodeSave::Value(id) = s {
            *id = remap[*id];
        }
    }
    for id in &mut backward.edge_saves {
        *id = remap[*id];
    }
    let save_ids = backward.save_ids();
    let n_node_value_saves = backward
        .node_saves
        .iter()
        .filter(|s| matches!(s, NodeSave::Value(_)))
        .count();
    let extra_input_saves = if save_all {
        let needed = backward.saved_input_slots();
        (0..forward.input_widths.len())
            .filter(|slot| !needed.contains(slot))
            .collect()
    } else {
        Vec::new()
    };
    CompiledProgram {
        forward,
        backward,
        save_ids,
        n_node_value_saves,
        extra_input_saves,
    }
}

/// Where snapshots come from.
#[derive(Clone)]
pub enum GraphSource {
    /// A static graph: the same snapshot at every timestamp.
    Static(Snapshot),
    /// A DTDG handing out snapshots on demand (NaiveGraph / GPMAGraph).
    Dynamic(Rc<RefCell<dyn DtdgGraph>>),
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Forward,
    Backward,
}

struct ExecShared {
    backend: Box<dyn AggregationBackend>,
    source: GraphSource,
    state_stack: RefCell<StateStack>,
    graph_stack: RefCell<GraphStack>,
    snap_memo: RefCell<Option<(usize, Snapshot)>>,
    phase: Cell<Phase>,
    gnn_time: TimeAccumulator,
}

impl ExecShared {
    fn snapshot(&self, t: usize, phase: Phase) -> Snapshot {
        if self.phase.get() != phase {
            // Phase flip: flush the memo so the DTDG update path really runs.
            self.phase.set(phase);
            *self.snap_memo.borrow_mut() = None;
        }
        if let Some((mt, snap)) = &*self.snap_memo.borrow() {
            if *mt == t {
                return snap.clone();
            }
        }
        let snap = match &self.source {
            GraphSource::Static(s) => s.clone(),
            GraphSource::Dynamic(p) => match phase {
                Phase::Forward => p.borrow_mut().get_graph(t),
                Phase::Backward => p.borrow_mut().get_backward_graph(t),
            },
        };
        *self.snap_memo.borrow_mut() = Some((t, snap.clone()));
        snap
    }

    fn is_dynamic(&self) -> bool {
        matches!(self.source, GraphSource::Dynamic(_))
    }
}

/// The temporally-aware executor. Cheap to clone (shared state).
#[derive(Clone)]
pub struct TemporalExecutor {
    shared: Rc<ExecShared>,
}

impl TemporalExecutor {
    /// Creates an executor over a graph source using the given backend.
    pub fn new(backend: Box<dyn AggregationBackend>, source: GraphSource) -> TemporalExecutor {
        TemporalExecutor {
            shared: Rc::new(ExecShared {
                backend,
                source,
                state_stack: RefCell::new(StateStack::new()),
                graph_stack: RefCell::new(GraphStack::new()),
                snap_memo: RefCell::new(None),
                phase: Cell::new(Phase::Forward),
                gnn_time: TimeAccumulator::new(),
            }),
        }
    }

    /// The forward snapshot for timestamp `t` (memoised within the current
    /// forward phase). Layers use this to derive per-snapshot constants
    /// such as degree norms.
    pub fn snapshot_for(&self, t: usize) -> Snapshot {
        self.shared.snapshot(t, Phase::Forward)
    }

    /// State-Stack statistics `(pushes, pops, peak_depth, live_bytes)`.
    pub fn state_stack_stats(&self) -> (usize, usize, usize, usize) {
        let s = self.shared.state_stack.borrow();
        let (pushes, pops) = s.counts();
        (pushes, pops, s.peak_depth(), s.bytes())
    }

    /// Graph-Stack statistics `(pushes, peak_depth, current_depth)`.
    pub fn graph_stack_stats(&self) -> (usize, usize, usize) {
        let g = self.shared.graph_stack.borrow();
        (g.pushes(), g.peak_depth(), g.depth())
    }

    /// Drains the accumulated kernel (GNN compute) time — the complement of
    /// the graph-update time in Figure 9's breakdown.
    pub fn take_gnn_time(&self) -> Duration {
        self.shared.gnn_time.take()
    }

    /// Applies a compiled vertex-centric program at timestamp `t`,
    /// recording the custom forward/backward pair on `tape`.
    ///
    /// `node_consts`/`edge_consts` are the program's constant tensors (the
    /// same tables are reused for the backward program, extended with the
    /// popped State-Stack frame).
    pub fn apply<'t>(
        &self,
        tape: &'t Tape,
        prog: &Rc<CompiledProgram>,
        t: usize,
        inputs: &[&Var<'t>],
        node_consts: Vec<Tensor>,
        edge_consts: Vec<Tensor>,
    ) -> Var<'t> {
        self.apply_mats(tape, prog, t, inputs, node_consts, edge_consts, &[])
    }

    /// [`TemporalExecutor::apply`] for programs with mat-const slots:
    /// `mats[i]` fills slot `i` and is differentiated through — its
    /// gradient (`dW += operandᵀ · upstream`, accumulated over the
    /// program's matmul sites) flows back on the tape like any other input.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_mats<'t>(
        &self,
        tape: &'t Tape,
        prog: &Rc<CompiledProgram>,
        t: usize,
        inputs: &[&Var<'t>],
        node_consts: Vec<Tensor>,
        edge_consts: Vec<Tensor>,
        mats: &[&Var<'t>],
    ) -> Var<'t> {
        let shared = &self.shared;
        // Workspace buffers recycle within this timestamp's kernels; when an
        // epoch-level scope encloses this one (the train loops open one),
        // they recycle across timestamps too.
        let _pool = stgraph_tensor::PoolScope::new();
        let snap = shared.snapshot(t, Phase::Forward);

        // Forward kernels.
        let input_tensors: Vec<&Tensor> = inputs.iter().map(|v| v.value()).collect();
        let const_refs: Vec<&Tensor> = node_consts.iter().collect();
        let edge_refs: Vec<&Tensor> = edge_consts.iter().collect();
        let mat_refs: Vec<&Tensor> = mats.iter().map(|v| v.value()).collect();
        let mut exec = {
            let _sp = span_timed("kernel.forward", &shared.gnn_time);
            shared.backend.execute(
                &prog.forward,
                &snap,
                &input_tensors,
                &const_refs,
                &edge_refs,
                &mat_refs,
                &prog.save_ids,
            )
        };

        // Push the saved set (State Stack) and the timestamp (Graph Stack).
        // Extra saves (ablation: no saved-set minimisation) go after the
        // needed ones, so the backward pop consumes a prefix.
        let saved_inputs: Vec<Tensor> = prog
            .backward
            .saved_input_slots()
            .iter()
            .chain(prog.extra_input_saves.iter())
            .map(|&slot| inputs[slot].value().clone())
            .collect();
        let edge_values = exec.saved.split_off(prog.n_node_value_saves);
        let node_values = exec.saved;
        shared.state_stack.borrow_mut().push(StateFrame {
            t,
            inputs: saved_inputs,
            node_values,
            edge_values,
        });
        if shared.is_dynamic() {
            shared.graph_stack.borrow_mut().push(t);
        }
        stgraph_telemetry::counter("stack.pushes").inc();
        {
            let (pushes, pops) = shared.state_stack.borrow().counts();
            stgraph_telemetry::histogram("stack.depth").record((pushes - pops) as u64);
        }

        // Context captured for the backward closure.
        let input_shapes: Vec<_> = inputs.iter().map(|v| v.value().shape()).collect();
        let mat_values: Vec<Tensor> = mats.iter().map(|v| v.value().clone()).collect();
        let static_snap = match &shared.source {
            GraphSource::Static(_) => Some(snap),
            GraphSource::Dynamic(_) => None,
        };
        let shared_bw = Rc::clone(shared);
        let prog_bw = Rc::clone(prog);
        let output = exec.outputs.remove(0);

        // Mats are tape inputs too: their gradients come back from the same
        // closure, after the node-input gradients.
        let all_inputs: Vec<&Var<'t>> = inputs.iter().chain(mats.iter()).copied().collect();
        tape.custom(&all_inputs, output, move |grad_out| {
            let shared = &shared_bw;
            let prog = &prog_bw;
            let _pool = stgraph_tensor::PoolScope::new();
            // Graph Stack pop + backward snapshot (Get-Backward-Graph).
            let snap = match &static_snap {
                Some(s) => s.clone(),
                None => {
                    let tb = shared.graph_stack.borrow_mut().pop();
                    assert_eq!(tb, t, "Graph Stack LIFO violation");
                    shared.snapshot(tb, Phase::Backward)
                }
            };
            // State Stack pop.
            let frame = shared.state_stack.borrow_mut().pop(t);
            stgraph_telemetry::counter("stack.pops").inc();

            // Assemble the backward constant tables: forward consts, then
            // the frame's saves in plan slot order.
            let mut b_node_consts: Vec<&Tensor> = node_consts.iter().collect();
            let mut input_iter = frame.inputs.iter();
            let mut value_iter = frame.node_values.iter();
            for s in &prog.backward.node_saves {
                b_node_consts.push(match s {
                    NodeSave::Input(_) => input_iter.next().expect("missing saved input"),
                    NodeSave::Value(_) => value_iter.next().expect("missing saved value"),
                });
            }
            let mut b_edge_consts: Vec<&Tensor> = edge_consts.iter().collect();
            b_edge_consts.extend(frame.edge_values.iter());

            let b_mat_consts: Vec<&Tensor> = mat_values.iter().collect();
            let bexec = {
                let _sp = span_timed("kernel.backward", &shared.gnn_time);
                shared.backend.execute(
                    &prog.backward.program,
                    &snap,
                    &[grad_out],
                    &b_node_consts,
                    &b_edge_consts,
                    &b_mat_consts,
                    &[],
                )
            };

            let mut grads: Vec<Tensor> = prog
                .backward
                .input_grads
                .iter()
                .zip(&input_shapes)
                .map(|(ig, shape)| match ig {
                    Some(idx) => bexec.outputs[*idx].clone(),
                    None => Tensor::zeros(*shape),
                })
                .collect();
            // Mat gradients: dense `operandᵀ · upstream` per matmul site,
            // accumulated by slot.
            let mut mat_grads: Vec<Option<Tensor>> = vec![None; mat_values.len()];
            for mu in &prog.backward.mat_uses {
                let dw = bexec.outputs[mu.operand_output]
                    .transpose()
                    .matmul(&bexec.outputs[mu.grad_output]);
                mat_grads[mu.slot] = Some(match mat_grads[mu.slot].take() {
                    Some(acc) => acc.add(&dw),
                    None => dw,
                });
            }
            for (mg, mv) in mat_grads.into_iter().zip(&mat_values) {
                grads.push(mg.unwrap_or_else(|| Tensor::zeros(mv.shape())));
            }
            grads
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::create_backend;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_dyngraph::{DtdgSource, GpmaGraph, NaiveGraph};
    use stgraph_graph::base::gcn_norm;
    use stgraph_seastar::ir::gcn_aggregation;
    use stgraph_tensor::autograd::check::{assert_close, numeric_grad};
    use stgraph_tensor::Param;

    fn snap() -> Snapshot {
        Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 3), (2, 4)])
    }

    fn static_exec() -> TemporalExecutor {
        TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap()))
    }

    #[test]
    fn apply_runs_gcn_and_pushes_state() {
        let exec = static_exec();
        let prog = compile(gcn_aggregation(3));
        let s = exec.snapshot_for(0);
        let norm = Tensor::from_vec((5, 1), gcn_norm(&s.in_degrees));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let y = exec.apply(&tape, &prog, 0, &[&xv], vec![norm], vec![]);
        assert_eq!(y.value().shape(), stgraph_tensor::Shape::Mat(5, 3));
        let (pushes, pops, peak, _) = exec.state_stack_stats();
        assert_eq!((pushes, pops, peak), (1, 0, 1));
        let loss = y.square().sum();
        tape.backward(&loss);
        let (pushes, pops, _, bytes) = exec.state_stack_stats();
        assert_eq!((pushes, pops), (1, 1));
        assert_eq!(bytes, 0, "stack must drain after backward");
    }

    #[test]
    fn gradients_flow_through_apply() {
        // End-to-end gradcheck through apply + the tape, with a Param.
        let exec = static_exec();
        let prog = compile(gcn_aggregation(2));
        let s = exec.snapshot_for(0);
        let norm = Tensor::from_vec((5, 1), gcn_norm(&s.in_degrees));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x0 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let p = Param::new("x", x0.clone());
        {
            let tape = Tape::new();
            let xv = tape.param(&p);
            let y = exec.apply(&tape, &prog, 0, &[&xv], vec![norm.clone()], vec![]);
            let loss = y.square().sum();
            tape.backward(&loss);
        }
        let exec2 = static_exec();
        let mut f = |t: &Tensor| {
            let tape = Tape::new();
            let xv = tape.constant(t.clone());
            let y = exec2.apply(&tape, &prog, 0, &[&xv], vec![norm.clone()], vec![]);
            let out = y.square().sum();
            let v = out.value().item();
            // Drain the stacks: run backward so state frames don't pile up.
            tape.backward(&out);
            v
        };
        assert_close(&p.grad(), &numeric_grad(&mut f, &x0, 1e-2), 2e-2);
    }

    #[test]
    fn multi_timestamp_sequence_drains_in_lifo() {
        let exec = static_exec();
        let prog = compile(gcn_aggregation(2));
        let s = exec.snapshot_for(0);
        let norm = Tensor::from_vec((5, 1), gcn_norm(&s.in_degrees));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tape = Tape::new();
        let mut loss_acc: Option<Var> = None;
        for t in 0..4 {
            let x = tape.constant(Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng));
            let y = exec.apply(&tape, &prog, t, &[&x], vec![norm.clone()], vec![]);
            let l = y.square().sum();
            loss_acc = Some(match loss_acc {
                Some(a) => a.add(&l),
                None => l,
            });
        }
        let (pushes, _, peak, _) = exec.state_stack_stats();
        assert_eq!(pushes, 4);
        assert_eq!(peak, 4);
        tape.backward(&loss_acc.unwrap());
        let (_, pops, _, bytes) = exec.state_stack_stats();
        assert_eq!(pops, 4);
        assert_eq!(bytes, 0);
    }

    fn dyn_source() -> DtdgSource {
        DtdgSource::from_snapshot_edges(
            5,
            vec![
                vec![(0, 1), (1, 2), (2, 3), (3, 4)],
                vec![(0, 1), (2, 3), (3, 4), (4, 0)],
                vec![(0, 1), (3, 4), (4, 0), (1, 3)],
            ],
        )
    }

    fn dtdg_loss(exec: &TemporalExecutor, x0: &Tensor) -> f32 {
        let prog = compile(gcn_aggregation(2));
        let tape = Tape::new();
        let mut loss_acc: Option<Var> = None;
        let mut h = tape.constant(x0.clone());
        for t in 0..3 {
            let snap = exec.snapshot_for(t);
            let norm = Tensor::from_vec((5, 1), gcn_norm(&snap.in_degrees));
            h = exec.apply(&tape, &prog, t, &[&h], vec![norm], vec![]);
            let l = h.square().sum();
            loss_acc = Some(match loss_acc {
                Some(a) => a.add(&l),
                None => l,
            });
        }
        let loss = loss_acc.unwrap();
        let v = loss.value().item();
        tape.backward(&loss);
        v
    }

    #[test]
    fn naive_and_gpma_sources_agree_end_to_end() {
        // The same recurrent computation over a DTDG must produce identical
        // losses whether snapshots are precomputed (Naive) or built on
        // demand (GPMA) — the central correctness claim of §V.D.
        let src = dyn_source();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x0 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let naive = TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Dynamic(Rc::new(RefCell::new(NaiveGraph::new(&src)))),
        );
        let gpma = TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Dynamic(Rc::new(RefCell::new(GpmaGraph::new(&src)))),
        );
        let (a, b) = (dtdg_loss(&naive, &x0), dtdg_loss(&gpma, &x0));
        assert!((a - b).abs() < 1e-4, "naive {a} vs gpma {b}");
        // Graph stacks drained.
        assert_eq!(naive.graph_stack_stats().2, 0);
        assert_eq!(gpma.graph_stack_stats().2, 0);
    }

    #[test]
    fn gpma_survives_multiple_sequences_and_epochs() {
        let src = dyn_source();
        let provider = Rc::new(RefCell::new(GpmaGraph::new(&src)));
        let exec = TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Dynamic(provider.clone()),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x0 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let l1 = dtdg_loss(&exec, &x0);
        let l2 = dtdg_loss(&exec, &x0);
        assert!(
            (l1 - l2).abs() < 1e-5,
            "epochs must be deterministic: {l1} vs {l2}"
        );
        assert!(provider.borrow_mut().take_update_time() > Duration::ZERO);
    }

    #[test]
    fn reference_backend_matches_seastar_through_executor() {
        let src = dyn_source();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x0 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let a = TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Dynamic(Rc::new(RefCell::new(NaiveGraph::new(&src)))),
        );
        let b = TemporalExecutor::new(
            create_backend("reference"),
            GraphSource::Dynamic(Rc::new(RefCell::new(NaiveGraph::new(&src)))),
        );
        assert!((dtdg_loss(&a, &x0) - dtdg_loss(&b, &x0)).abs() < 1e-3);
    }

    #[test]
    fn save_all_ablation_retains_features_minimal_does_not() {
        // GCN's minimal saved set is empty; the save-all policy pushes the
        // full input features every timestamp. Same gradients either way.
        let run = |save_all: bool| -> (usize, Tensor) {
            let exec = static_exec();
            let prog = if save_all {
                crate::executor::compile_save_all_inputs(gcn_aggregation(4))
            } else {
                compile(gcn_aggregation(4))
            };
            let norm = Tensor::from_vec((5, 1), gcn_norm(&exec.snapshot_for(0).in_degrees));
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let p = Param::new("x", Tensor::rand_uniform((5, 4), -1.0, 1.0, &mut rng));
            let tape = Tape::new();
            let xv = tape.param(&p);
            let mut cur = xv;
            for t in 0..3 {
                cur = exec.apply(&tape, &prog, t, &[&cur], vec![norm.clone()], vec![]);
            }
            let (_, _, _, bytes_at_peak) = exec.state_stack_stats();
            let loss = cur.square().sum();
            tape.backward(&loss);
            (bytes_at_peak, p.grad())
        };
        let (minimal_bytes, g_min) = run(false);
        let (ablation_bytes, g_all) = run(true);
        assert_eq!(minimal_bytes, 0, "minimal saved set for GCN is empty");
        assert_eq!(
            ablation_bytes,
            3 * 5 * 4 * 4,
            "save-all keeps 3 x [5,4] f32 frames"
        );
        assert!(
            g_min.approx_eq(&g_all, 1e-5),
            "policies must not change gradients"
        );
    }

    #[test]
    fn compile_applies_cse_to_both_programs() {
        let prog = compile(stgraph_seastar::ir::gat_aggregation(4, 0.2));
        // CSE is idempotent: re-running changes nothing.
        assert_eq!(
            prog.forward.eliminate_common_subexpressions().len(),
            prog.forward.len()
        );
        assert_eq!(
            prog.backward
                .program
                .eliminate_common_subexpressions()
                .len(),
            prog.backward.program.len()
        );
    }

    #[test]
    fn gnn_time_accumulates() {
        let exec = static_exec();
        let prog = compile(gcn_aggregation(2));
        let norm = Tensor::from_vec((5, 1), gcn_norm(&exec.snapshot_for(0).in_degrees));
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones((5, 2)));
        let y = exec.apply(&tape, &prog, 0, &[&x], vec![norm], vec![]);
        let loss = y.sum();
        tape.backward(&loss);
        assert!(exec.take_gnn_time() > Duration::ZERO);
        assert_eq!(exec.take_gnn_time(), Duration::ZERO);
    }
}
