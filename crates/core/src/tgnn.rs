//! Temporal GNN layers, following the PyG-T design pattern the paper adopts
//! (§V.A.1): temporal models are assembled from GNN layers (spatial) and
//! backend recurrent gates (temporal); swapping either yields a new model.

use crate::executor::TemporalExecutor;
use crate::layers::{ChebConv, GcnConv};
use rand::Rng;
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::{Param, StateDict, Tape, Tensor, Var};

/// A recurrent graph cell: consumes `(x_t, h_{t-1})`, produces `h_t`.
pub trait RecurrentCell {
    /// Hidden width.
    fn hidden_size(&self) -> usize;

    /// One step at timestamp `t`. `h` is `None` at sequence start (treated
    /// as zeros).
    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t>;
}

impl RecurrentCell for Box<dyn RecurrentCell> {
    fn hidden_size(&self) -> usize {
        self.as_ref().hidden_size()
    }

    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t> {
        self.as_ref().step(tape, exec, t, x, h)
    }
}

fn hidden_or_zeros<'t>(tape: &'t Tape, h: Option<&Var<'t>>, rows: usize, width: usize) -> Var<'t> {
    match h {
        Some(v) => v.clone(),
        None => tape.constant(Tensor::zeros((rows, width))),
    }
}

/// T-GCN (Zhao et al.), in PyG-T's formulation: a GRU whose input transform
/// is a GCN —
/// `Z = σ(W_z [GCN_z(X) ‖ H])`, `R = σ(W_r [GCN_r(X) ‖ H])`,
/// `H̃ = tanh(W_h [GCN_h(X) ‖ R⊙H])`, `H' = Z⊙H + (1-Z)⊙H̃`.
pub struct Tgcn {
    conv_z: GcnConv,
    conv_r: GcnConv,
    conv_h: GcnConv,
    lin_z: Linear,
    lin_r: Linear,
    lin_h: Linear,
    hidden: usize,
}

impl Tgcn {
    /// A new TGCN cell.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Tgcn {
        Tgcn {
            conv_z: GcnConv::new(params, &format!("{name}.conv_z"), in_features, hidden, rng),
            conv_r: GcnConv::new(params, &format!("{name}.conv_r"), in_features, hidden, rng),
            conv_h: GcnConv::new(params, &format!("{name}.conv_h"), in_features, hidden, rng),
            lin_z: Linear::new(
                params,
                &format!("{name}.lin_z"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            lin_r: Linear::new(
                params,
                &format!("{name}.lin_r"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            lin_h: Linear::new(
                params,
                &format!("{name}.lin_h"),
                2 * hidden,
                hidden,
                true,
                rng,
            ),
            hidden,
        }
    }

    /// The update-gate GCN weight (tests, weight surgery).
    pub fn conv_z_weight(&self) -> &stgraph_tensor::Param {
        self.conv_z.weight_param()
    }

    /// The candidate-gate dense weight (tests, weight surgery).
    pub fn lin_h_weight(&self) -> &stgraph_tensor::Param {
        &self.lin_h.weight
    }
}

impl StateDict for Tgcn {
    fn parameters(&self) -> Vec<Param> {
        let mut out = Vec::new();
        out.extend(self.conv_z.parameters());
        out.extend(self.conv_r.parameters());
        out.extend(self.conv_h.parameters());
        out.extend(self.lin_z.parameters());
        out.extend(self.lin_r.parameters());
        out.extend(self.lin_h.parameters());
        out
    }
}

impl RecurrentCell for Tgcn {
    fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t> {
        let n = x.value().rows();
        let h = hidden_or_zeros(tape, h, n, self.hidden);
        let cz = self.conv_z.forward(tape, exec, t, x);
        let z = self
            .lin_z
            .forward(tape, &Var::concat_cols(&[&cz, &h]))
            .sigmoid();
        let cr = self.conv_r.forward(tape, exec, t, x);
        let r = self
            .lin_r
            .forward(tape, &Var::concat_cols(&[&cr, &h]))
            .sigmoid();
        let ch = self.conv_h.forward(tape, exec, t, x);
        let rh = r.mul(&h);
        let htilde = self
            .lin_h
            .forward(tape, &Var::concat_cols(&[&ch, &rh]))
            .tanh();
        z.mul(&h).add(&z.one_minus().mul(&htilde))
    }
}

/// GConvGRU (Seo et al.): a GRU whose gates are Chebyshev convolutions over
/// both input and hidden state.
pub struct GConvGru {
    xz: ChebConv,
    hz: ChebConv,
    xr: ChebConv,
    hr: ChebConv,
    xh: ChebConv,
    hh: ChebConv,
    hidden: usize,
}

impl GConvGru {
    /// A new GConvGRU cell of Chebyshev order `k`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> GConvGru {
        let mk = |params: &mut ParamSet, part: &str, fan_in: usize, rng: &mut _| {
            ChebConv::new(params, &format!("{name}.{part}"), fan_in, hidden, k, rng)
        };
        GConvGru {
            xz: mk(params, "xz", in_features, rng),
            hz: mk(params, "hz", hidden, rng),
            xr: mk(params, "xr", in_features, rng),
            hr: mk(params, "hr", hidden, rng),
            xh: mk(params, "xh", in_features, rng),
            hh: mk(params, "hh", hidden, rng),
            hidden,
        }
    }
}

impl StateDict for GConvGru {
    fn parameters(&self) -> Vec<Param> {
        [&self.xz, &self.hz, &self.xr, &self.hr, &self.xh, &self.hh]
            .iter()
            .flat_map(|c| c.parameters())
            .collect()
    }
}

impl RecurrentCell for GConvGru {
    fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t> {
        let n = x.value().rows();
        let h = hidden_or_zeros(tape, h, n, self.hidden);
        let z = self
            .xz
            .forward(tape, exec, t, x)
            .add(&self.hz.forward(tape, exec, t, &h))
            .sigmoid();
        let r = self
            .xr
            .forward(tape, exec, t, x)
            .add(&self.hr.forward(tape, exec, t, &h))
            .sigmoid();
        let rh = r.mul(&h);
        let htilde = self
            .xh
            .forward(tape, exec, t, x)
            .add(&self.hh.forward(tape, exec, t, &rh))
            .tanh();
        z.mul(&h).add(&z.one_minus().mul(&htilde))
    }
}

/// GConvLSTM (Seo et al.) with Chebyshev gates. Peephole connections are
/// omitted (see DESIGN.md); the cell state is carried inside the struct-
/// external state as the second half of a doubled hidden tensor.
pub struct GConvLstm {
    xi: ChebConv,
    hi: ChebConv,
    xf: ChebConv,
    hf: ChebConv,
    xc: ChebConv,
    hc: ChebConv,
    xo: ChebConv,
    ho: ChebConv,
    hidden: usize,
}

impl GConvLstm {
    /// A new GConvLSTM cell of Chebyshev order `k`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> GConvLstm {
        let mk = |params: &mut ParamSet, part: &str, fan_in: usize, rng: &mut _| {
            ChebConv::new(params, &format!("{name}.{part}"), fan_in, hidden, k, rng)
        };
        GConvLstm {
            xi: mk(params, "xi", in_features, rng),
            hi: mk(params, "hi", hidden, rng),
            xf: mk(params, "xf", in_features, rng),
            hf: mk(params, "hf", hidden, rng),
            xc: mk(params, "xc", in_features, rng),
            hc: mk(params, "hc", hidden, rng),
            xo: mk(params, "xo", in_features, rng),
            ho: mk(params, "ho", hidden, rng),
            hidden,
        }
    }
}

impl StateDict for GConvLstm {
    fn parameters(&self) -> Vec<Param> {
        [
            &self.xi, &self.hi, &self.xf, &self.hf, &self.xc, &self.hc, &self.xo, &self.ho,
        ]
        .iter()
        .flat_map(|c| c.parameters())
        .collect()
    }
}

impl RecurrentCell for GConvLstm {
    /// The externally-carried state is `[H ‖ C]`, width `2 * hidden`.
    fn hidden_size(&self) -> usize {
        2 * self.hidden
    }

    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        state: Option<&Var<'t>>,
    ) -> Var<'t> {
        let n = x.value().rows();
        let k = self.hidden;
        let state = hidden_or_zeros(tape, state, n, 2 * k);
        let h = state.slice_cols(0, k);
        let c = state.slice_cols(k, 2 * k);
        let i = self
            .xi
            .forward(tape, exec, t, x)
            .add(&self.hi.forward(tape, exec, t, &h))
            .sigmoid();
        let f = self
            .xf
            .forward(tape, exec, t, x)
            .add(&self.hf.forward(tape, exec, t, &h))
            .sigmoid();
        let g = self
            .xc
            .forward(tape, exec, t, x)
            .add(&self.hc.forward(tape, exec, t, &h))
            .tanh();
        let o = self
            .xo
            .forward(tape, exec, t, x)
            .add(&self.ho.forward(tape, exec, t, &h))
            .sigmoid();
        let c_new = f.mul(&c).add(&i.mul(&g));
        let h_new = o.mul(&c_new.tanh());
        Var::concat_cols(&[&h_new, &c_new])
    }
}

/// Multiplies every element of `x` by a scalar-valued Var (differentiable
/// through both operands) — the attention-weighting primitive of A3TGCN.
pub fn scale_by_scalar<'t>(x: &Var<'t>, s: &Var<'t>) -> Var<'t> {
    assert_eq!(s.value().numel(), 1, "scale_by_scalar takes a scalar Var");
    let sv = s.value().item();
    let s_shape = s.value().shape();
    let xv = x.value().clone();
    let out = xv.mul_scalar(sv);
    x.tape().custom(&[x, s], out, move |g| {
        let gx = g.mul_scalar(sv);
        let gs = Tensor::full(s_shape, g.mul(&xv).sum().item());
        vec![gx, gs]
    })
}

/// A3T-GCN (Bai et al.): runs a TGCN over a window of `periods` timestamps
/// and combines the hidden states with learned softmax attention over time.
pub struct A3Tgcn {
    cell: Tgcn,
    /// Learnable attention logits `[1, periods]` (softmaxed over time).
    pub attention: stgraph_tensor::Param,
    periods: usize,
}

impl A3Tgcn {
    /// A new A3TGCN over a window of `periods` input timestamps.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        periods: usize,
        rng: &mut impl Rng,
    ) -> A3Tgcn {
        let cell = Tgcn::new(params, &format!("{name}.tgcn"), in_features, hidden, rng);
        let attention = params.register(format!("{name}.attention"), Tensor::zeros((1, periods)));
        A3Tgcn {
            cell,
            attention,
            periods,
        }
    }

    /// Attention window length.
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.cell.hidden_size()
    }

    /// Forward over a window `xs` of feature tensors for timestamps
    /// `t0..t0+periods`, returning the attention-weighted hidden state.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t0: usize,
        xs: &[Var<'t>],
        h0: Option<&Var<'t>>,
    ) -> Var<'t> {
        assert_eq!(xs.len(), self.periods, "window length vs periods");
        // Softmax over the attention logits.
        let att = tape.param(&self.attention);
        let e = att.exp();
        let s = e.sum();
        let mut h = h0.cloned();
        let mut out: Option<Var<'t>> = None;
        for (p, x) in xs.iter().enumerate() {
            let hn = self.cell.step(tape, exec, t0 + p, x, h.as_ref());
            let alpha_p = e.slice_cols(p, p + 1).reshape_scalar();
            let weighted = scale_by_scalar(&hn, &alpha_p);
            out = Some(match out {
                Some(acc) => acc.add(&weighted),
                None => weighted,
            });
            h = Some(hn);
        }
        // Divide by the softmax normaliser: out / s.
        let inv = recip_scalar(&s);
        scale_by_scalar(&out.unwrap(), &inv)
    }
}

impl StateDict for A3Tgcn {
    fn parameters(&self) -> Vec<Param> {
        let mut out = self.cell.parameters();
        out.push(self.attention.clone());
        out
    }
}

/// Reciprocal of a scalar Var (differentiable).
pub fn recip_scalar<'t>(s: &Var<'t>) -> Var<'t> {
    assert_eq!(s.value().numel(), 1);
    let sv = s.value().item();
    let out = Tensor::scalar(1.0 / sv);
    let shape = s.value().shape();
    s.tape().custom(&[s], out, move |g| {
        vec![Tensor::full(shape, -g.item() / (sv * sv))]
    })
}

/// Extension trait: view a 1-element Var as a scalar.
pub trait ScalarExt<'t> {
    /// Reshape a single-element value to rank 0.
    fn reshape_scalar(&self) -> Var<'t>;
}

impl<'t> ScalarExt<'t> for Var<'t> {
    fn reshape_scalar(&self) -> Var<'t> {
        assert_eq!(self.value().numel(), 1);
        let v = self.value().reshape(stgraph_tensor::Shape::Scalar);
        let shape = self.value().shape();
        self.tape()
            .custom(&[self], v, move |g| vec![g.reshape(shape)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::create_backend;
    use crate::executor::{GraphSource, TemporalExecutor};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::Snapshot;
    use stgraph_tensor::autograd::check::{assert_close, numeric_grad};
    use stgraph_tensor::Tape;

    fn exec() -> TemporalExecutor {
        let snap = Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap))
    }

    #[test]
    fn tgcn_step_shapes_and_gate_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let cell = Tgcn::new(&mut ps, "t", 3, 4, &mut rng);
        assert_eq!(cell.hidden_size(), 4);
        let e = exec();
        let tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng));
        let h1 = cell.step(&tape, &e, 0, &x, None);
        assert_eq!(h1.value().shape(), stgraph_tensor::Shape::Mat(5, 4));
        // GRU output is a convex combination of tanh values: |h| <= 1.
        assert!(h1.value().data().iter().all(|v| v.abs() <= 1.0));
        let h2 = cell.step(&tape, &e, 1, &x, Some(&h1));
        assert!(h2.value().data().iter().all(|v| v.abs() <= 1.0));
        let loss = h2.square().sum();
        tape.backward(&loss);
        let (pushes, pops, _, _) = e.state_stack_stats();
        assert_eq!(pushes, pops);
    }

    #[test]
    fn tgcn_gradcheck_through_two_steps() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let cell = Tgcn::new(&mut ps, "t", 2, 3, &mut rng);
        let x0 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let x1 = Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng);
        let run = |e: &TemporalExecutor| -> f32 {
            let tape = Tape::new();
            let xv0 = tape.constant(x0.clone());
            let xv1 = tape.constant(x1.clone());
            let h1 = cell.step(&tape, e, 0, &xv0, None);
            let h2 = cell.step(&tape, e, 1, &xv1, Some(&h1));
            let loss = h2.mse_loss(&target);
            let v = loss.value().item();
            // Drain the stacks without polluting accumulated grads.
            tape.backward(&loss.mul_scalar(0.0));
            v
        };
        // Analytic grads.
        ps.zero_grad();
        run(&exec());
        // Check the GCN weight inside the update gate — the gradient flows
        // through BPTT across both steps.
        let p = cell.conv_z.weight_param();
        let p0 = p.value();
        let grad = p.grad();
        let mut f = |w: &Tensor| {
            p.set_value(w.clone());
            run(&exec())
        };
        let numeric = numeric_grad(&mut f, &p0, 1e-2);
        p.set_value(p0);
        assert_close(&grad, &numeric, 3e-2);
    }

    #[test]
    fn gconv_gru_step_and_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let cell = GConvGru::new(&mut ps, "g", 3, 4, 2, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng));
        let h1 = cell.step(&tape, &e, 0, &x, None);
        let h2 = cell.step(&tape, &e, 1, &x, Some(&h1));
        assert_eq!(h2.value().shape(), stgraph_tensor::Shape::Mat(5, 4));
        let loss = h2.square().sum();
        tape.backward(&loss);
        // Some gradient must reach the hidden-path ChebConv weights.
        let total_grad: f32 = ps
            .iter()
            .map(|p| p.grad().data().iter().map(|g| g.abs()).sum::<f32>())
            .sum();
        assert!(total_grad > 0.0);
    }

    #[test]
    fn gconv_lstm_state_splits_hidden_and_cell() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let cell = GConvLstm::new(&mut ps, "l", 3, 4, 2, &mut rng);
        assert_eq!(cell.hidden_size(), 8);
        let e = exec();
        let tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform((5, 3), -1.0, 1.0, &mut rng));
        let s1 = cell.step(&tape, &e, 0, &x, None);
        assert_eq!(s1.value().shape(), stgraph_tensor::Shape::Mat(5, 8));
        // H = o * tanh(C): |H| < 1 always; C unbounded in general.
        let h = s1.value().slice_cols(0, 4);
        assert!(h.data().iter().all(|v| v.abs() < 1.0));
        let s2 = cell.step(&tape, &e, 1, &x, Some(&s1));
        let loss = s2.slice_cols(0, 4).square().sum();
        tape.backward(&loss);
    }

    #[test]
    fn a3tgcn_attention_is_softmax_weighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = A3Tgcn::new(&mut ps, "a", 2, 3, 3, &mut rng);
        assert_eq!(model.periods(), 3);
        let e = exec();
        let tape = Tape::new();
        let xs: Vec<Var> = (0..3)
            .map(|_| tape.constant(Tensor::rand_uniform((5, 2), -1.0, 1.0, &mut rng)))
            .collect();
        let out = model.forward(&tape, &e, 0, &xs, None);
        assert_eq!(out.value().shape(), stgraph_tensor::Shape::Mat(5, 3));
        // With zero-initialised logits, attention is uniform: out equals the
        // mean of the three hidden states. Recompute them to verify.
        let tape2 = Tape::new();
        let xs2: Vec<Var> = xs
            .iter()
            .map(|x| tape2.constant(x.value().clone()))
            .collect();
        let mut h = None;
        let mut acc: Option<Tensor> = None;
        let e2 = exec();
        for (p, x) in xs2.iter().enumerate() {
            let hn = model.cell.step(&tape2, &e2, p, x, h.as_ref());
            acc = Some(match acc {
                Some(a) => a.add(hn.value()),
                None => hn.value().clone(),
            });
            h = Some(hn);
        }
        let want = acc.unwrap().mul_scalar(1.0 / 3.0);
        assert!(out.value().approx_eq(&want, 1e-4));
        let loss = out.square().sum();
        tape.backward(&loss);
        assert!(model.attention.grad().data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn scalar_helpers_gradcheck() {
        let tape = Tape::new();
        let (x, gx) = tape.input(Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]));
        let (s, gs) = tape.input(Tensor::scalar(2.0));
        let y = scale_by_scalar(&x, &s);
        let loss = y.square().sum();
        tape.backward(&loss);
        // d/dx = 2*y*s = 2*x*s^2; d/ds = sum(2*y*x) = 2*s*sum(x^2).
        let gxv = gx.get().unwrap();
        assert!((gxv.at(0, 0) - 2.0 * 1.0 * 4.0).abs() < 1e-5);
        let gsv = gs.get().unwrap().item();
        assert!((gsv - 2.0 * 2.0 * 30.0).abs() < 1e-3);
        // recip_scalar.
        let tape = Tape::new();
        let (s, gs) = tape.input(Tensor::scalar(4.0));
        let r = recip_scalar(&s);
        let loss = r.sum();
        tape.backward(&loss);
        assert!((gs.get().unwrap().item() + 1.0 / 16.0).abs() < 1e-6);
    }
}
