//! Extended TGNN layers beyond the paper's benchmark set — the kind of
//! zoo growth the conclusion lists as future work ("the system can be
//! extended to include new GNN/TGNN layer APIs").
//!
//! * [`DConv`]/[`Dcrnn`] — DCRNN's dual-direction diffusion convolution
//!   (Li et al., ICLR'18): random-walk powers over *both* out-neighbour
//!   and in-neighbour matrices, which exercises the executor's
//!   `AggSumSrc` kernels in the forward pass (normally backward-only).
//! * [`EvolveGcnO`] — EvolveGCN-O (Pareja et al., AAAI'20): the GCN weight
//!   matrix itself is the recurrent state, evolved per timestamp by an
//!   LSTM cell; gradients flow through the whole weight trajectory.

use crate::executor::{compile, CompiledProgram, TemporalExecutor};
use crate::tgnn::RecurrentCell;
use rand::Rng;
use std::rc::Rc;
use stgraph_graph::base::Snapshot;
use stgraph_seastar::ir::{Program, ProgramBuilder};
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::{Param, StateDict, Tape, Tensor, Var};

/// Vertex program for one *forward* random-walk step `D_O^{-1} A · X`:
/// `out_v = (1/out_deg(v)) Σ_{v→u} x_u` — an out-neighbour mean, executed
/// by the `AggSumSrc` kernel over the forward CSR.
pub fn walk_out_aggregation(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let inv_out = b.node_const(1);
    let gathered = b.gather_dst(h);
    let agg = b.agg_sum_src(gathered);
    let out = b.mul(agg, inv_out);
    b.finish(&[out])
}

/// Vertex program for one *reverse* random-walk step `D_I^{-1} Aᵀ · X`:
/// `out_v = (1/in_deg(v)) Σ_{u→v} x_u` — an in-neighbour mean.
pub fn walk_in_aggregation(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let inv_in = b.node_const(1);
    let gathered = b.gather_src(h);
    let agg = b.agg_sum_dst(gathered);
    let out = b.mul(agg, inv_in);
    b.finish(&[out])
}

fn inv_degree_tensor(deg: &[u32]) -> Tensor {
    Tensor::from_vec(
        (deg.len(), 1),
        deg.iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect(),
    )
}

/// Diffusion convolution: `Σ_{k=1..K} (D_O^{-1}A)^k X W_k^out +
/// (D_I^{-1}Aᵀ)^k X W_k^in`, plus the k = 0 term `X W_0`.
pub struct DConv {
    w0: Linear,
    w_out: Vec<Linear>,
    w_in: Vec<Linear>,
    prog_out: Rc<CompiledProgram>,
    prog_in: Rc<CompiledProgram>,
    k: usize,
}

impl DConv {
    /// A new diffusion convolution of `k` walk steps (`k >= 1`).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> DConv {
        assert!(k >= 1);
        DConv {
            w0: Linear::new(
                params,
                &format!("{name}.w0"),
                in_features,
                out_features,
                true,
                rng,
            ),
            w_out: (1..=k)
                .map(|i| {
                    Linear::new(
                        params,
                        &format!("{name}.wo{i}"),
                        in_features,
                        out_features,
                        false,
                        rng,
                    )
                })
                .collect(),
            w_in: (1..=k)
                .map(|i| {
                    Linear::new(
                        params,
                        &format!("{name}.wi{i}"),
                        in_features,
                        out_features,
                        false,
                        rng,
                    )
                })
                .collect(),
            prog_out: compile(walk_out_aggregation(in_features)),
            prog_in: compile(walk_in_aggregation(in_features)),
            k,
        }
    }

    /// Applies the layer at timestamp `t`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
    ) -> Var<'t> {
        let snap: Snapshot = exec.snapshot_for(t);
        let inv_out = inv_degree_tensor(&snap.out_degrees);
        let inv_in = inv_degree_tensor(&snap.in_degrees);
        let mut out = self.w0.forward(tape, x);
        let mut fwd_walk = x.clone();
        let mut bwd_walk = x.clone();
        for step in 0..self.k {
            fwd_walk = exec.apply(
                tape,
                &self.prog_out,
                t,
                &[&fwd_walk],
                vec![inv_out.clone()],
                vec![],
            );
            bwd_walk = exec.apply(
                tape,
                &self.prog_in,
                t,
                &[&bwd_walk],
                vec![inv_in.clone()],
                vec![],
            );
            out = out
                .add(&self.w_out[step].forward(tape, &fwd_walk))
                .add(&self.w_in[step].forward(tape, &bwd_walk));
        }
        out
    }
}

impl StateDict for DConv {
    fn parameters(&self) -> Vec<Param> {
        let mut out = self.w0.parameters();
        out.extend(self.w_out.iter().flat_map(|w| w.parameters()));
        out.extend(self.w_in.iter().flat_map(|w| w.parameters()));
        out
    }
}

/// DCRNN cell: a GRU whose gates are diffusion convolutions over `[X ‖ H]`.
pub struct Dcrnn {
    conv_z: DConv,
    conv_r: DConv,
    conv_h: DConv,
    hidden: usize,
    in_features: usize,
}

impl Dcrnn {
    /// A new DCRNN cell with `k`-step diffusion.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        hidden: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> Dcrnn {
        let width = in_features + hidden;
        Dcrnn {
            conv_z: DConv::new(params, &format!("{name}.z"), width, hidden, k, rng),
            conv_r: DConv::new(params, &format!("{name}.r"), width, hidden, k, rng),
            conv_h: DConv::new(params, &format!("{name}.h"), width, hidden, k, rng),
            hidden,
            in_features,
        }
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }
}

impl StateDict for Dcrnn {
    fn parameters(&self) -> Vec<Param> {
        let mut out = self.conv_z.parameters();
        out.extend(self.conv_r.parameters());
        out.extend(self.conv_h.parameters());
        out
    }
}

impl RecurrentCell for Dcrnn {
    fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn step<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> Var<'t> {
        let n = x.value().rows();
        let h = match h {
            Some(v) => v.clone(),
            None => tape.constant(Tensor::zeros((n, self.hidden))),
        };
        let xh = Var::concat_cols(&[x, &h]);
        let z = self.conv_z.forward(tape, exec, t, &xh).sigmoid();
        let r = self.conv_r.forward(tape, exec, t, &xh).sigmoid();
        let xrh = Var::concat_cols(&[x, &r.mul(&h)]);
        let htilde = self.conv_h.forward(tape, exec, t, &xrh).tanh();
        z.mul(&h).add(&z.one_minus().mul(&htilde))
    }
}

/// EvolveGCN-O: the GCN weight `W_t ∈ R^{f×f}` is recurrent state evolved
/// by an LSTM cell (`W` is both input and hidden), then used for the GCN
/// at each timestamp. Gradients flow through the weight trajectory.
pub struct EvolveGcnO {
    /// Initial weight `W_0` (trainable).
    pub w0: Param,
    // LSTM-over-weights parameters (input = hidden = a weight row).
    u_i: Param,
    v_i: Param,
    b_i: Param,
    u_f: Param,
    v_f: Param,
    b_f: Param,
    u_c: Param,
    v_c: Param,
    b_c: Param,
    u_o: Param,
    v_o: Param,
    b_o: Param,
    agg: Rc<CompiledProgram>,
    features: usize,
}

impl EvolveGcnO {
    /// A new EvolveGCN-O layer over `features`-wide embeddings.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        features: usize,
        rng: &mut impl Rng,
    ) -> EvolveGcnO {
        let f = features;
        let mat = |part: &str, params: &mut ParamSet, rng: &mut _| {
            params.register(format!("{name}.{part}"), Tensor::glorot(f, f, rng))
        };
        let w0 = params.register(format!("{name}.w0"), Tensor::glorot(f, f, rng));
        let u_i = mat("u_i", params, rng);
        let v_i = mat("v_i", params, rng);
        let b_i = params.register(format!("{name}.b_i"), Tensor::zeros(f));
        let u_f = mat("u_f", params, rng);
        let v_f = mat("v_f", params, rng);
        // Forget bias 1.0: standard LSTM initialisation.
        let b_f = params.register(format!("{name}.b_f"), Tensor::ones(f));
        let u_c = mat("u_c", params, rng);
        let v_c = mat("v_c", params, rng);
        let b_c = params.register(format!("{name}.b_c"), Tensor::zeros(f));
        let u_o = mat("u_o", params, rng);
        let v_o = mat("v_o", params, rng);
        let b_o = params.register(format!("{name}.b_o"), Tensor::zeros(f));
        EvolveGcnO {
            w0,
            u_i,
            v_i,
            b_i,
            u_f,
            v_f,
            b_f,
            u_c,
            v_c,
            b_c,
            u_o,
            v_o,
            b_o,
            agg: compile(stgraph_seastar::ir::gcn_aggregation(features)),
            features,
        }
    }

    /// Embedding width.
    pub fn features(&self) -> usize {
        self.features
    }

    /// One LSTM step evolving the weight: input = hidden = `w`.
    fn evolve<'t>(&self, tape: &'t Tape, w: &Var<'t>, c: &Var<'t>) -> (Var<'t>, Var<'t>) {
        let gate = |u: &Param, v: &Param, b: &Param| {
            let uu = tape.param(u);
            let vv = tape.param(v);
            let bb = tape.param(b);
            w.matmul(&uu).add(&w.matmul(&vv)).add_bias(&bb)
        };
        let i = gate(&self.u_i, &self.v_i, &self.b_i).sigmoid();
        let f = gate(&self.u_f, &self.v_f, &self.b_f).sigmoid();
        let g = gate(&self.u_c, &self.v_c, &self.b_c).tanh();
        let o = gate(&self.u_o, &self.v_o, &self.b_o).sigmoid();
        let c_new = f.mul(c).add(&i.mul(&g));
        let w_new = o.mul(&c_new.tanh());
        (w_new, c_new)
    }

    /// Forward over a window of feature tensors starting at timestamp
    /// `t0`, evolving the weight each step. Returns per-step embeddings.
    pub fn forward_sequence<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t0: usize,
        xs: &[Var<'t>],
    ) -> Vec<Var<'t>> {
        let mut w = tape.param(&self.w0);
        let mut c = tape.constant(Tensor::zeros((self.features, self.features)));
        let mut outs = Vec::with_capacity(xs.len());
        for (step, x) in xs.iter().enumerate() {
            let t = t0 + step;
            let (w_new, c_new) = self.evolve(tape, &w, &c);
            w = w_new;
            c = c_new;
            let h = x.matmul(&w);
            let snap = exec.snapshot_for(t);
            let norm = crate::layers::norm_tensor(&snap);
            outs.push(exec.apply(tape, &self.agg, t, &[&h], vec![norm], vec![]));
        }
        outs
    }
}

impl StateDict for EvolveGcnO {
    fn parameters(&self) -> Vec<Param> {
        vec![
            self.w0.clone(),
            self.u_i.clone(),
            self.v_i.clone(),
            self.b_i.clone(),
            self.u_f.clone(),
            self.v_f.clone(),
            self.b_f.clone(),
            self.u_c.clone(),
            self.v_c.clone(),
            self.b_c.clone(),
            self.u_o.clone(),
            self.v_o.clone(),
            self.b_o.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::create_backend;
    use crate::executor::GraphSource;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_tensor::optim::Adam;

    fn exec() -> TemporalExecutor {
        let snap = Snapshot::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 3),
                (2, 5),
            ],
        );
        TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap))
    }

    #[test]
    fn walk_out_is_out_neighbour_mean() {
        let prog = walk_out_aggregation(1);
        let compiled = compile(prog);
        let e = exec();
        let x = Tensor::from_vec((6, 1), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let snap = e.snapshot_for(0);
        let inv = inv_degree_tensor(&snap.out_degrees);
        let y = e.apply(&tape, &compiled, 0, &[&xv], vec![inv], vec![]);
        // node0 -> {1, 3}: mean(2, 4) = 3.
        assert!((y.value().at(0, 0) - 3.0).abs() < 1e-6);
        // node2 -> {3, 5}: mean(4, 6) = 5.
        assert!((y.value().at(2, 0) - 5.0).abs() < 1e-6);
        let loss = y.sum();
        tape.backward(&loss);
    }

    #[test]
    fn walk_in_is_in_neighbour_mean() {
        let compiled = compile(walk_in_aggregation(1));
        let e = exec();
        let x = Tensor::from_vec((6, 1), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let snap = e.snapshot_for(0);
        let inv = inv_degree_tensor(&snap.in_degrees);
        let y = e.apply(&tape, &compiled, 0, &[&xv], vec![inv], vec![]);
        // in(3) = {2, 0}: mean(3, 1) = 2.
        assert!((y.value().at(3, 0) - 2.0).abs() < 1e-6);
        let loss = y.sum();
        tape.backward(&loss);
    }

    #[test]
    fn dconv_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let conv = DConv::new(&mut ps, "d", 2, 2, 2, &mut rng);
        let x = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let e = exec();
        {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e, 0, &xv).mse_loss(&target);
            tape.backward(&loss);
        }
        let p = &conv.w_out[1].weight;
        let analytic = p.grad();
        let p0 = p.value();
        let e2 = exec();
        let mut f = |w: &Tensor| {
            p.set_value(w.clone());
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let loss = conv.forward(&tape, &e2, 0, &xv).mse_loss(&target);
            let v = loss.value().item();
            tape.backward(&loss.mul_scalar(0.0));
            v
        };
        let numeric = stgraph_tensor::autograd::check::numeric_grad(&mut f, &p0, 1e-2);
        p.set_value(p0);
        stgraph_tensor::autograd::check::assert_close(&analytic, &numeric, 2e-2);
    }

    #[test]
    fn dcrnn_learns_a_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let cell = Dcrnn::new(&mut ps, "d", 3, 8, 2, &mut rng);
        assert_eq!(cell.in_features(), 3);
        let e = exec();
        let model = crate::train::NodeRegressor::new(&mut ps, cell, 1, &mut rng);
        let mut opt = Adam::new(ps, 0.01);
        let feats: Vec<Tensor> = (0..8)
            .map(|_| Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Tensor> = feats
            .iter()
            .map(|x| x.sum_axis1().mul_scalar(1.0 / 3.0).reshape((6, 1)))
            .collect();
        let first =
            crate::train::train_epoch_node_regression(&model, &e, &mut opt, &feats, &targets, 4);
        let mut last = first;
        for _ in 0..25 {
            last = crate::train::train_epoch_node_regression(
                &model, &e, &mut opt, &feats, &targets, 4,
            );
        }
        assert!(last < first * 0.7, "{first} -> {last}");
    }

    #[test]
    fn evolve_gcn_weight_changes_over_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let layer = EvolveGcnO::new(&mut ps, "e", 4, &mut rng);
        let e = exec();
        let tape = Tape::new();
        let xs: Vec<Var> = (0..3)
            .map(|_| tape.constant(Tensor::rand_uniform((6, 4), -1.0, 1.0, &mut rng)))
            .collect();
        let outs = layer.forward_sequence(&tape, &e, 0, &xs);
        assert_eq!(outs.len(), 3);
        let loss = outs.last().unwrap().square().sum();
        tape.backward(&loss);
        // Gradient reaches both W0 and the evolution parameters.
        assert!(layer.w0.grad().data().iter().any(|&g| g != 0.0));
        assert!(layer.u_i.grad().data().iter().any(|&g| g != 0.0));

        // Same input at different timestamps maps through different weights
        // (fresh tape/executor so stack bookkeeping stays balanced).
        let e2 = exec();
        let tape2 = Tape::new();
        let same_x = tape2.constant(xs[0].value().clone());
        let xs2 = vec![same_x.clone(), same_x.clone()];
        let outs2 = layer.forward_sequence(&tape2, &e2, 0, &xs2);
        assert!(
            !outs2[0].value().approx_eq(outs2[1].value(), 1e-6),
            "evolved weights must differ between steps"
        );
        let drain = outs2[0].add(&outs2[1]).sum().mul_scalar(0.0);
        tape2.backward(&drain);
    }

    #[test]
    fn evolve_gcn_trains() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let layer = EvolveGcnO::new(&mut ps, "e", 3, &mut rng);
        let readout = Linear::new(&mut ps, "out", 3, 1, true, &mut rng);
        let e = exec();
        let mut opt = Adam::new(ps, 0.02);
        let feats: Vec<Tensor> = (0..4)
            .map(|_| Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<Tensor> = feats
            .iter()
            .map(|x| x.sum_axis1().mul_scalar(1.0 / 3.0).reshape((6, 1)))
            .collect();
        let run = |opt: &mut Adam| -> f32 {
            opt.zero_grad();
            let tape = Tape::new();
            let xs: Vec<Var> = feats.iter().map(|x| tape.constant(x.clone())).collect();
            let outs = layer.forward_sequence(&tape, &e, 0, &xs);
            let mut loss: Option<Var> = None;
            for (o, target) in outs.iter().zip(&targets) {
                let l = readout.forward(&tape, &o.relu()).mse_loss(target);
                loss = Some(match loss {
                    Some(a) => a.add(&l),
                    None => l,
                });
            }
            let loss = loss.unwrap().mul_scalar(0.25);
            let v = loss.value().item();
            tape.backward(&loss);
            opt.step();
            v
        };
        let first = run(&mut opt);
        let mut last = first;
        for _ in 0..40 {
            last = run(&mut opt);
        }
        assert!(last < first * 0.8, "{first} -> {last}");
    }
}
