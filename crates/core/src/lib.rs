//! # stgraph
//!
//! A framework for Temporal Graph Neural Networks — a Rust reproduction of
//! *STGraph* (Cherian et al., IPDPS 2024).
//!
//! STGraph extends Seastar's vertex-centric programming model to temporal
//! graphs. The pieces map to the paper as follows:
//!
//! * [`backend`] — the backend interface + factory (§VI.1): fused Seastar
//!   kernels or an unfused reference interpreter.
//! * [`stacks`] — the **State Stack** and **Graph Stack** (§V.A.2, §V.B).
//! * [`executor`] — the temporally-aware executor orchestrating snapshots,
//!   stacks and kernels across forward/backward passes (Algorithm 1).
//! * [`layers`] — vertex-centric GNN layers (GCN, GAT, ChebConv).
//! * [`tgnn`] — temporal models assembled from them (TGCN, GConvGRU,
//!   GConvLSTM, A3TGCN), following PyG-T's design pattern (§V.A.1).
//! * [`train`] — Algorithm-1 training loops for node regression
//!   (static-temporal graphs) and link prediction (DTDGs).
//!
//! ```
//! use stgraph::backend::create_backend;
//! use stgraph::executor::{GraphSource, TemporalExecutor};
//! use stgraph::tgnn::{RecurrentCell, Tgcn};
//! use stgraph_graph::base::Snapshot;
//! use stgraph_tensor::nn::ParamSet;
//! use stgraph_tensor::{Tape, Tensor};
//! use rand::SeedableRng;
//!
//! let snap = Snapshot::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let exec = TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut params = ParamSet::new();
//! let cell = Tgcn::new(&mut params, "tgcn", 4, 8, &mut rng);
//! let tape = Tape::new();
//! let x = tape.constant(Tensor::zeros((3, 4)));
//! let h = cell.step(&tape, &exec, 0, &x, None);
//! assert_eq!(h.value().shape(), stgraph_tensor::Shape::Mat(3, 8));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod executor;
pub mod hetero;
pub mod layers;
pub mod metrics;
pub mod stacks;
pub mod tgnn;
pub mod tgnn_ext;
pub mod train;

pub use backend::{create_backend, AggregationBackend};
pub use executor::{compile, CompiledProgram, GraphSource, TemporalExecutor};
pub use hetero::{HeteroExecutor, HeteroGraph, RgcnConv};
pub use layers::{ChebConv, GatConv, GcnConv, MultiHeadGatConv};
pub use stacks::{GraphStack, StateStack};
pub use tgnn::{A3Tgcn, GConvGru, GConvLstm, RecurrentCell, Tgcn};
pub use tgnn_ext::{DConv, Dcrnn, EvolveGcnO};
