//! Training per Algorithm 1 (§V.B): timestamps are partitioned into ordered
//! sequences; forward propagation walks a sequence accumulating the loss
//! (pushing State/Graph-Stack frames), then a single reverse pass pops every
//! frame in LIFO order (the tape's reverse traversal), after which the
//! optimizer steps. Hidden state is carried across sequences *detached*
//! (truncated BPTT), matching how PyG-T's reference training loops handle
//! sequence boundaries.

use crate::executor::TemporalExecutor;
use crate::tgnn::RecurrentCell;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::rc::Rc;
use stgraph_dyngraph::DtdgSource;
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::optim::Adam;
use stgraph_tensor::{Param, StateDict, Tape, Tensor, Var};

/// A recurrent cell plus a readout head for per-node regression — the
/// "RecurrentGCN" pattern of PyG-T's examples (`h = cell(x); relu; linear`).
pub struct NodeRegressor<C: RecurrentCell> {
    /// The temporal cell.
    pub cell: C,
    readout: Linear,
}

impl<C: RecurrentCell> NodeRegressor<C> {
    /// Wraps a cell with a readout producing `out_dim` values per node.
    pub fn new(
        params: &mut ParamSet,
        cell: C,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> NodeRegressor<C> {
        let readout = Linear::new(params, "readout", cell.hidden_size(), out_dim, true, rng);
        NodeRegressor { cell, readout }
    }

    /// One step: returns `(prediction, new_hidden)`.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        exec: &TemporalExecutor,
        t: usize,
        x: &Var<'t>,
        h: Option<&Var<'t>>,
    ) -> (Var<'t>, Var<'t>) {
        let h_new = self.cell.step(tape, exec, t, x, h);
        let pred = self.readout.forward(tape, &h_new.relu());
        (pred, h_new)
    }
}

impl<C: RecurrentCell + StateDict> StateDict for NodeRegressor<C> {
    fn parameters(&self) -> Vec<Param> {
        let mut out = self.cell.parameters();
        out.extend(self.readout.parameters());
        out
    }
}

/// Runs one Algorithm-1 epoch of node regression (MSE). Returns the mean
/// per-timestamp loss.
pub fn train_epoch_node_regression<C: RecurrentCell>(
    model: &NodeRegressor<C>,
    exec: &TemporalExecutor,
    opt: &mut Adam,
    features: &[Tensor],
    targets: &[Tensor],
    seq_len: usize,
) -> f32 {
    assert_eq!(features.len(), targets.len());
    assert!(seq_len >= 1);
    // Epoch-level buffer-pool scope: activations and scratch recycle across
    // every timestamp and sequence of this epoch, released on return.
    let _pool = stgraph_tensor::PoolScope::new();
    let total = features.len();
    let mut carried: Option<Tensor> = None;
    let mut epoch_loss = 0.0f64;
    let mut steps = 0usize;
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        opt.zero_grad();
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        {
            let _sp = stgraph_telemetry::span("train.forward");
            for t in start..end {
                let x = tape.constant(features[t].clone());
                let (pred, h_new) = model.forward(&tape, exec, t, &x, h.as_ref());
                let l = pred.mse_loss(&targets[t]);
                seq_loss = Some(match seq_loss {
                    Some(acc) => acc.add(&l),
                    None => l,
                });
                h = Some(h_new);
                steps += 1;
            }
        }
        let loss = seq_loss
            .expect("non-empty sequence")
            .mul_scalar(1.0 / (end - start) as f32);
        epoch_loss += loss.value().item() as f64 * (end - start) as f64;
        carried = h.map(|v| v.value().clone()); // detach across sequences
        {
            let _sp = stgraph_telemetry::span("train.backward");
            tape.backward(&loss);
        }
        {
            let _sp = stgraph_telemetry::span("train.optimizer");
            opt.step();
        }
        start = end;
    }
    (epoch_loss / steps as f64) as f32
}

/// Evaluation (no training): mean MSE of the model over all timestamps.
pub fn eval_node_regression<C: RecurrentCell>(
    model: &NodeRegressor<C>,
    exec: &TemporalExecutor,
    features: &[Tensor],
    targets: &[Tensor],
    seq_len: usize,
) -> f32 {
    let _pool = stgraph_tensor::PoolScope::new();
    let total = features.len();
    let mut carried: Option<Tensor> = None;
    let mut sum = 0.0f64;
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        for t in start..end {
            let x = tape.constant(features[t].clone());
            let (pred, h_new) = model.forward(&tape, exec, t, &x, h.as_ref());
            let l = pred.mse_loss(&targets[t]);
            seq_loss = Some(match seq_loss {
                Some(acc) => acc.add(&l),
                None => l,
            });
            h = Some(h_new);
        }
        sum += seq_loss.as_ref().unwrap().value().item() as f64;
        carried = h.map(|v| v.value().clone());
        // Drain the stacks even though we discard gradients.
        tape.backward(&seq_loss.unwrap().mul_scalar(0.0));
        start = end;
    }
    (sum / total as f64) as f32
}

/// One timestamp's link-prediction batch: candidate edges and 0/1 labels.
#[derive(Clone)]
pub struct LinkPredBatch {
    /// Source endpoint per candidate edge.
    pub src: Rc<Vec<u32>>,
    /// Destination endpoint per candidate edge.
    pub dst: Rc<Vec<u32>>,
    /// `[k, 1]` labels: 1 = edge present at this timestamp, 0 = negative.
    pub labels: Tensor,
}

/// Builds deterministic per-timestamp link-prediction batches from a DTDG:
/// up to `max_pos` positives sampled from the snapshot's edges plus an equal
/// number of uniformly-sampled negatives.
pub fn link_prediction_batches(
    source: &DtdgSource,
    max_pos: usize,
    seed: u64,
) -> Vec<LinkPredBatch> {
    let n = source.num_nodes as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    source
        .snapshots
        .iter()
        .map(|edges| {
            let present: HashSet<(u32, u32)> = edges.iter().copied().collect();
            let k = edges.len().min(max_pos);
            let stride = (edges.len() / k.max(1)).max(1);
            let mut src = Vec::with_capacity(2 * k);
            let mut dst = Vec::with_capacity(2 * k);
            let mut labels = Vec::with_capacity(2 * k);
            for e in edges.iter().step_by(stride).take(k) {
                src.push(e.0);
                dst.push(e.1);
                labels.push(1.0);
            }
            for _ in 0..k {
                let (mut u, mut v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                while present.contains(&(u, v)) {
                    u = rng.gen_range(0..n);
                    v = rng.gen_range(0..n);
                }
                src.push(u);
                dst.push(v);
                labels.push(0.0);
            }
            let len = labels.len();
            LinkPredBatch {
                src: Rc::new(src),
                dst: Rc::new(dst),
                labels: Tensor::from_vec((len, 1), labels),
            }
        })
        .collect()
}

/// Scores candidate edges from a hidden state: `logit(u,v) = h_u · h_v`.
pub fn edge_logits<'t>(h: &Var<'t>, batch: &LinkPredBatch) -> Var<'t> {
    let hu = h.gather_rows(Rc::clone(&batch.src));
    let hv = h.gather_rows(Rc::clone(&batch.dst));
    hu.mul(&hv).sum_cols()
}

/// Runs one Algorithm-1 epoch of link prediction (BCE-with-logits) over a
/// DTDG. `features` is the static per-node input used at every timestamp.
/// Returns the mean per-timestamp loss.
pub fn train_epoch_link_prediction<C: RecurrentCell>(
    cell: &C,
    exec: &TemporalExecutor,
    opt: &mut Adam,
    features: &Tensor,
    batches: &[LinkPredBatch],
    seq_len: usize,
) -> f32 {
    let total = batches.len();
    assert!(seq_len >= 1);
    let _pool = stgraph_tensor::PoolScope::new();
    let mut carried: Option<Tensor> = None;
    let mut epoch_loss = 0.0f64;
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        opt.zero_grad();
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        {
            let _sp = stgraph_telemetry::span("train.forward");
            #[allow(clippy::needless_range_loop)] // t is a timestamp, not just an index
            for t in start..end {
                let x = tape.constant(features.clone());
                let h_new = cell.step(&tape, exec, t, &x, h.as_ref());
                let logits = edge_logits(&h_new, &batches[t]);
                let l = logits.bce_with_logits_loss(&batches[t].labels);
                seq_loss = Some(match seq_loss {
                    Some(acc) => acc.add(&l),
                    None => l,
                });
                h = Some(h_new);
            }
        }
        let loss = seq_loss.unwrap().mul_scalar(1.0 / (end - start) as f32);
        epoch_loss += loss.value().item() as f64 * (end - start) as f64;
        carried = h.map(|v| v.value().clone());
        {
            let _sp = stgraph_telemetry::span("train.backward");
            tape.backward(&loss);
        }
        {
            let _sp = stgraph_telemetry::span("train.optimizer");
            opt.step();
        }
        start = end;
    }
    (epoch_loss / total as f64) as f32
}

/// Link-prediction evaluation: runs the model over all timestamps without
/// training and returns `(mean BCE loss, ROC-AUC, binary accuracy)` pooled
/// over every candidate edge.
pub fn eval_link_prediction<C: RecurrentCell>(
    cell: &C,
    exec: &TemporalExecutor,
    features: &Tensor,
    batches: &[LinkPredBatch],
    seq_len: usize,
) -> (f32, f32, f32) {
    let _pool = stgraph_tensor::PoolScope::new();
    let total = batches.len();
    let mut carried: Option<Tensor> = None;
    let mut loss_sum = 0.0f64;
    let mut all_logits: Vec<f32> = Vec::new();
    let mut all_labels: Vec<f32> = Vec::new();
    let mut start = 0usize;
    while start < total {
        let end = (start + seq_len).min(total);
        let tape = Tape::new();
        let mut h: Option<Var> = carried.take().map(|t| tape.constant(t));
        let mut seq_loss: Option<Var> = None;
        #[allow(clippy::needless_range_loop)] // t is a timestamp, not just an index
        for t in start..end {
            let x = tape.constant(features.clone());
            let h_new = cell.step(&tape, exec, t, &x, h.as_ref());
            let logits = edge_logits(&h_new, &batches[t]);
            all_logits.extend(logits.value().data());
            all_labels.extend(batches[t].labels.data());
            let l = logits.bce_with_logits_loss(&batches[t].labels);
            loss_sum += l.value().item() as f64;
            seq_loss = Some(match seq_loss {
                Some(acc) => acc.add(&l),
                None => l,
            });
            h = Some(h_new);
        }
        carried = h.map(|v| v.value().clone());
        // Drain the stacks without touching gradients.
        tape.backward(&seq_loss.unwrap().mul_scalar(0.0));
        start = end;
    }
    let n = all_logits.len();
    let logits_t = Tensor::from_vec(n, all_logits);
    let labels_t = Tensor::from_vec(n, all_labels);
    (
        (loss_sum / total as f64) as f32,
        crate::metrics::roc_auc(&logits_t, &labels_t),
        crate::metrics::binary_accuracy(&logits_t, &labels_t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::create_backend;
    use crate::executor::GraphSource;
    use crate::tgnn::Tgcn;
    use std::cell::RefCell;
    use stgraph_dyngraph::{GpmaGraph, NaiveGraph};
    use stgraph_graph::base::Snapshot;

    fn ring_snapshot(n: usize) -> Snapshot {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Snapshot::from_edges(n, &edges)
    }

    fn static_exec(n: usize) -> TemporalExecutor {
        TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Static(ring_snapshot(n)),
        )
    }

    fn synthetic_signal(n: usize, f: usize, t: usize, seed: u64) -> (Vec<Tensor>, Vec<Tensor>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let feats: Vec<Tensor> = (0..t)
            .map(|_| Tensor::rand_uniform((n, f), -1.0, 1.0, &mut rng))
            .collect();
        // Learnable target: mean of own features (per node) — solvable by a
        // TGCN with enough epochs.
        let targets: Vec<Tensor> = feats
            .iter()
            .map(|x| {
                let rows = x.rows();
                x.sum_axis1().mul_scalar(1.0 / f as f32).reshape((rows, 1))
            })
            .collect();
        (feats, targets)
    }

    #[test]
    fn node_regression_loss_decreases() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 12;
        let mut ps = ParamSet::new();
        let cell = Tgcn::new(&mut ps, "t", 4, 8, &mut rng);
        let model = NodeRegressor::new(&mut ps, cell, 1, &mut rng);
        let exec = static_exec(n);
        let mut opt = Adam::new(ps.clone(), 0.01);
        let (feats, targets) = synthetic_signal(n, 4, 10, 8);
        let first = train_epoch_node_regression(&model, &exec, &mut opt, &feats, &targets, 5);
        let mut last = first;
        for _ in 0..30 {
            last = train_epoch_node_regression(&model, &exec, &mut opt, &feats, &targets, 5);
        }
        assert!(last < first * 0.5, "loss should halve: {first} -> {last}");
        // Stacks balanced after the whole run.
        let (pushes, pops, _, bytes) = exec.state_stack_stats();
        assert_eq!(pushes, pops);
        assert_eq!(bytes, 0);
    }

    #[test]
    fn eval_matches_train_loss_on_frozen_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 8;
        let mut ps = ParamSet::new();
        let cell = Tgcn::new(&mut ps, "t", 3, 4, &mut rng);
        let model = NodeRegressor::new(&mut ps, cell, 1, &mut rng);
        let exec = static_exec(n);
        let (feats, targets) = synthetic_signal(n, 3, 6, 10);
        let e1 = eval_node_regression(&model, &exec, &feats, &targets, 3);
        let e2 = eval_node_regression(&model, &exec, &feats, &targets, 3);
        assert!((e1 - e2).abs() < 1e-6, "eval must be deterministic");
    }

    fn dtdg_source(n: u32, t: usize, seed: u64) -> DtdgSource {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cur: std::collections::BTreeSet<(u32, u32)> = (0..3 * n)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let mut snaps = vec![cur.iter().copied().collect::<Vec<_>>()];
        for _ in 1..t {
            let removals: Vec<(u32, u32)> =
                cur.iter().copied().filter(|_| rng.gen_bool(0.08)).collect();
            for r in &removals {
                cur.remove(r);
            }
            for _ in 0..removals.len() {
                cur.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            snaps.push(cur.iter().copied().collect());
        }
        DtdgSource::from_snapshot_edges(n as usize, snaps)
    }

    #[test]
    fn link_prediction_batches_are_balanced_and_deterministic() {
        let src = dtdg_source(20, 4, 11);
        let a = link_prediction_batches(&src, 16, 42);
        let b = link_prediction_batches(&src, 16, 42);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            let pos: f32 = x.labels.data().iter().sum();
            assert!((pos - x.labels.numel() as f32 / 2.0).abs() < 0.5);
        }
    }

    #[test]
    fn link_prediction_auc_improves_with_training() {
        let src = dtdg_source(20, 6, 21);
        let batches = link_prediction_batches(&src, 32, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut ps = ParamSet::new();
        let cell = Tgcn::new(&mut ps, "t", 4, 8, &mut rng);
        let exec = TemporalExecutor::new(
            create_backend("seastar"),
            GraphSource::Dynamic(Rc::new(RefCell::new(NaiveGraph::new(&src)))),
        );
        let feats = Tensor::rand_uniform((20, 4), -1.0, 1.0, &mut rng);
        let mut opt = Adam::new(ps, 0.02);
        let (loss0, auc0, _) = eval_link_prediction(&cell, &exec, &feats, &batches, 3);
        for _ in 0..15 {
            train_epoch_link_prediction(&cell, &exec, &mut opt, &feats, &batches, 3);
        }
        let (loss1, auc1, acc1) = eval_link_prediction(&cell, &exec, &feats, &batches, 3);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
        assert!(auc1 > auc0.max(0.6), "AUC {auc0} -> {auc1}");
        assert!(acc1 > 0.55, "accuracy {acc1}");
    }

    #[test]
    fn link_prediction_trains_on_naive_and_gpma_identically() {
        let src = dtdg_source(16, 5, 12);
        let batches = link_prediction_batches(&src, 24, 7);
        let feats = {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            Tensor::rand_uniform((16, 4), -1.0, 1.0, &mut rng)
        };
        let run = |source: GraphSource| -> Vec<f32> {
            let mut rng = ChaCha8Rng::seed_from_u64(14);
            let mut ps = ParamSet::new();
            let cell = Tgcn::new(&mut ps, "t", 4, 6, &mut rng);
            let exec = TemporalExecutor::new(create_backend("seastar"), source);
            let mut opt = Adam::new(ps, 0.01);
            (0..3)
                .map(|_| train_epoch_link_prediction(&cell, &exec, &mut opt, &feats, &batches, 3))
                .collect()
        };
        let naive = run(GraphSource::Dynamic(Rc::new(RefCell::new(
            NaiveGraph::new(&src),
        ))));
        let gpma = run(GraphSource::Dynamic(Rc::new(RefCell::new(GpmaGraph::new(
            &src,
        )))));
        for (a, b) in naive.iter().zip(&gpma) {
            assert!((a - b).abs() < 1e-3, "naive {a} vs gpma {b}");
        }
        // And the loss goes down.
        assert!(naive[2] < naive[0], "losses {naive:?}");
    }
}
