//! Heterogeneous-graph support — the first item on the paper's future-work
//! list ("STGraph can be extended to support Heterogeneous graphs").
//!
//! A heterogeneous graph holds one adjacency per *relation type*. The
//! vertex-centric machinery needs no changes: each relation gets its own
//! snapshot (and its own executor, so State/Graph-Stack bookkeeping stays
//! per-relation), and a relational layer aggregates per relation before
//! combining — the R-GCN formulation (Schlichtkrull et al.):
//! `h'_v = W_0 h_v + Σ_r Σ_{u ∈ N_r(v)} (1/|N_r(v)|) W_r h_u`.

use crate::backend::create_backend;
use crate::executor::{compile, CompiledProgram, GraphSource, TemporalExecutor};
use rand::Rng;
use std::rc::Rc;
use stgraph_graph::base::Snapshot;
use stgraph_seastar::ir::{Program, ProgramBuilder};
use stgraph_tensor::nn::{Linear, ParamSet};
use stgraph_tensor::{Tape, Tensor, Var};

/// A static heterogeneous graph: one edge set per relation over a shared
/// vertex set.
pub struct HeteroGraph {
    /// Number of vertices (shared across relations).
    pub num_nodes: usize,
    /// Relation names, aligned with [`HeteroGraph::snapshots`].
    pub relation_names: Vec<String>,
    /// One pre-processed snapshot per relation.
    pub snapshots: Vec<Snapshot>,
}

impl HeteroGraph {
    /// Builds a heterogeneous graph from `(relation name, edge list)` pairs.
    pub fn new(num_nodes: usize, relations: Vec<(String, Vec<(u32, u32)>)>) -> HeteroGraph {
        assert!(!relations.is_empty(), "need at least one relation");
        let mut names = Vec::with_capacity(relations.len());
        let mut snapshots = Vec::with_capacity(relations.len());
        for (name, edges) in relations {
            names.push(name);
            snapshots.push(Snapshot::from_edges(num_nodes, &edges));
        }
        HeteroGraph {
            num_nodes,
            relation_names: names,
            snapshots,
        }
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.snapshots.len()
    }
}

/// An executor per relation, sharing one backend kind. Static graphs only
/// for now (heterogeneous DTDGs stay future work, as in the paper).
pub struct HeteroExecutor {
    execs: Vec<TemporalExecutor>,
}

impl HeteroExecutor {
    /// Builds per-relation executors on the named backend.
    pub fn new(backend: &str, graph: &HeteroGraph) -> HeteroExecutor {
        HeteroExecutor {
            execs: graph
                .snapshots
                .iter()
                .map(|s| {
                    TemporalExecutor::new(create_backend(backend), GraphSource::Static(s.clone()))
                })
                .collect(),
        }
    }

    /// The executor for relation `r`.
    pub fn relation(&self, r: usize) -> &TemporalExecutor {
        &self.execs[r]
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.execs.len()
    }
}

/// Mean-aggregation vertex program used per relation by R-GCN.
fn mean_aggregation(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let inv_deg = b.node_const(1);
    let gathered = b.gather_src(h);
    let agg = b.agg_sum_dst(gathered);
    let out = b.mul(agg, inv_deg);
    b.finish(&[out])
}

/// Relational GCN layer over a [`HeteroGraph`].
pub struct RgcnConv {
    self_weight: Linear,
    rel_weights: Vec<Linear>,
    program: Rc<CompiledProgram>,
}

impl RgcnConv {
    /// A new R-GCN layer for `num_relations` relation types.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        num_relations: usize,
        rng: &mut impl Rng,
    ) -> RgcnConv {
        RgcnConv {
            self_weight: Linear::new(
                params,
                &format!("{name}.self"),
                in_features,
                out_features,
                true,
                rng,
            ),
            rel_weights: (0..num_relations)
                .map(|r| {
                    Linear::new(
                        params,
                        &format!("{name}.rel{r}"),
                        in_features,
                        out_features,
                        false,
                        rng,
                    )
                })
                .collect(),
            program: compile(mean_aggregation(out_features)),
        }
    }

    /// Applies the layer.
    pub fn forward<'t>(&self, tape: &'t Tape, exec: &HeteroExecutor, x: &Var<'t>) -> Var<'t> {
        assert_eq!(
            exec.num_relations(),
            self.rel_weights.len(),
            "relation count mismatch"
        );
        let mut out = self.self_weight.forward(tape, x);
        for (r, w_r) in self.rel_weights.iter().enumerate() {
            let rel_exec = exec.relation(r);
            let snap = rel_exec.snapshot_for(0);
            let inv_deg = Tensor::from_vec(
                (snap.in_degrees.len(), 1),
                snap.in_degrees
                    .iter()
                    .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
                    .collect(),
            );
            let h_r = w_r.forward(tape, x);
            let agg = rel_exec.apply(tape, &self.program, 0, &[&h_r], vec![inv_deg], vec![]);
            out = out.add(&agg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::STGraphBase;
    use stgraph_tensor::optim::Adam;

    fn two_relation_graph() -> HeteroGraph {
        HeteroGraph::new(
            6,
            vec![
                ("follows".to_string(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
                ("mentions".to_string(), vec![(4, 0), (5, 0), (5, 1), (2, 5)]),
            ],
        )
    }

    #[test]
    fn hetero_graph_structure() {
        let g = two_relation_graph();
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.relation_names, vec!["follows", "mentions"]);
        assert_eq!(g.snapshots[0].num_edges(), 4);
        assert_eq!(g.snapshots[1].num_edges(), 4);
    }

    #[test]
    fn rgcn_forward_matches_manual() {
        let g = two_relation_graph();
        let exec = HeteroExecutor::new("seastar", &g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let conv = RgcnConv::new(&mut ps, "r", 2, 3, 2, &mut rng);
        let x = Tensor::rand_uniform((6, 2), -1.0, 1.0, &mut rng);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = conv.forward(&tape, &exec, &xv);

        // Manual: self term + per-relation in-neighbour means of x W_r.
        let self_w = conv.self_weight.weight.value();
        let self_b = conv.self_weight.bias.as_ref().unwrap().value();
        let mut want = x.matmul(&self_w).add_bias(&self_b).to_vec();
        for (r, snap) in g.snapshots.iter().enumerate() {
            let h = x.matmul(&conv.rel_weights[r].weight.value());
            for v in 0..6 {
                let nbrs: Vec<u32> = snap.reverse_csr.iter_row(v).map(|(u, _)| u).collect();
                if nbrs.is_empty() {
                    continue;
                }
                for j in 0..3 {
                    let mean: f32 =
                        nbrs.iter().map(|&u| h.at(u as usize, j)).sum::<f32>() / nbrs.len() as f32;
                    want[v * 3 + j] += mean;
                }
            }
        }
        let want = Tensor::from_vec((6, 3), want);
        assert!(
            y.value().approx_eq(&want, 1e-4),
            "diff {}",
            y.value().max_abs_diff(&want)
        );
        let loss = y.sum();
        tape.backward(&loss);
    }

    #[test]
    fn rgcn_distinguishes_relations() {
        // Same topology in both relations but different weights: swapping
        // the relation assignment of edges must change the output.
        let g1 = HeteroGraph::new(
            4,
            vec![
                ("a".into(), vec![(0, 1), (1, 2)]),
                ("b".into(), vec![(2, 3)]),
            ],
        );
        let g2 = HeteroGraph::new(
            4,
            vec![
                ("a".into(), vec![(2, 3)]),
                ("b".into(), vec![(0, 1), (1, 2)]),
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let conv = RgcnConv::new(&mut ps, "r", 2, 2, 2, &mut rng);
        let x = Tensor::rand_uniform((4, 2), -1.0, 1.0, &mut rng);
        let run = |g: &HeteroGraph| {
            let exec = HeteroExecutor::new("seastar", g);
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = conv.forward(&tape, &exec, &xv);
            let out = y.value().clone();
            let l = y.sum();
            tape.backward(&l.mul_scalar(0.0));
            out
        };
        let y1 = run(&g1);
        let y2 = run(&g2);
        assert!(!y1.approx_eq(&y2, 1e-5), "relation weights must matter");
    }

    #[test]
    fn rgcn_trains_on_node_regression() {
        let g = two_relation_graph();
        let exec = HeteroExecutor::new("seastar", &g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let conv = RgcnConv::new(&mut ps, "r", 3, 8, 2, &mut rng);
        let readout = Linear::new(&mut ps, "out", 8, 1, true, &mut rng);
        let mut opt = Adam::new(ps, 0.02);
        let x = Tensor::rand_uniform((6, 3), -1.0, 1.0, &mut rng);
        let target = x.sum_axis1().mul_scalar(1.0 / 3.0).reshape((6, 1));
        let run = |opt: &mut Adam| -> f32 {
            opt.zero_grad();
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let h = conv.forward(&tape, &exec, &xv).relu();
            let loss = readout.forward(&tape, &h).mse_loss(&target);
            let v = loss.value().item();
            tape.backward(&loss);
            opt.step();
            v
        };
        let first = run(&mut opt);
        let mut last = first;
        for _ in 0..60 {
            last = run(&mut opt);
        }
        assert!(last < first * 0.5, "{first} -> {last}");
    }
}
