//! The State Stack and Graph Stack (§V.A.2, §V.B).
//!
//! During forward propagation over a sequence, the executor pushes one
//! frame per kernel application: the input features the backward pass will
//! need plus any saved intermediate values (the set computed by comparing
//! forward and backward IRs — the paper's memory optimisation). The Graph
//! Stack records which snapshot each application ran on. Backward
//! propagation pops both in strict LIFO order; any violation is a bug in
//! the training loop and panics loudly.

use stgraph_tensor::Tensor;

/// One State-Stack frame: the values saved for one kernel application.
pub struct StateFrame {
    /// Timestamp the frame belongs to (LIFO assertion aid).
    pub t: usize,
    /// Saved forward *input* tensors (State-Stack entries proper), in
    /// `BackwardPlan::node_saves` Input order.
    pub inputs: Vec<Tensor>,
    /// Saved computed node-space values, in `node_saves` Value order.
    pub node_values: Vec<Tensor>,
    /// Saved computed edge-space values, in `edge_saves` order.
    pub edge_values: Vec<Tensor>,
}

impl StateFrame {
    /// Total bytes of tensor payload in this frame.
    pub fn bytes(&self) -> usize {
        self.inputs
            .iter()
            .chain(&self.node_values)
            .chain(&self.edge_values)
            .map(|t| t.numel() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// The State Stack with push/pop accounting.
#[derive(Default)]
pub struct StateStack {
    frames: Vec<StateFrame>,
    pushes: usize,
    pops: usize,
    peak_depth: usize,
}

impl StateStack {
    /// An empty stack.
    pub fn new() -> StateStack {
        StateStack::default()
    }

    /// Pushes a frame (forward pass).
    pub fn push(&mut self, frame: StateFrame) {
        self.frames.push(frame);
        self.pushes += 1;
        self.peak_depth = self.peak_depth.max(self.frames.len());
    }

    /// Pops the top frame (backward pass), asserting it belongs to `t`.
    pub fn pop(&mut self, t: usize) -> StateFrame {
        let frame = self.frames.pop().unwrap_or_else(|| {
            panic!("State Stack underflow at timestamp {t}: backward without matching forward")
        });
        assert_eq!(
            frame.t, t,
            "State Stack LIFO violation: popped frame for t={} while backward is at t={t}",
            frame.t
        );
        self.pops += 1;
        frame
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Deepest the stack has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// `(pushes, pops)` so far — they must balance after every sequence.
    pub fn counts(&self) -> (usize, usize) {
        (self.pushes, self.pops)
    }

    /// Total saved-tensor bytes currently held.
    pub fn bytes(&self) -> usize {
        self.frames.iter().map(StateFrame::bytes).sum()
    }
}

/// The Graph Stack: timestamps of snapshots used by forward applications.
#[derive(Default)]
pub struct GraphStack {
    stack: Vec<usize>,
    pushes: usize,
    peak_depth: usize,
}

impl GraphStack {
    /// An empty stack.
    pub fn new() -> GraphStack {
        GraphStack::default()
    }

    /// Records that a forward application ran on snapshot `t`.
    pub fn push(&mut self, t: usize) {
        self.stack.push(t);
        self.pushes += 1;
        self.peak_depth = self.peak_depth.max(self.stack.len());
    }

    /// Pops the timestamp for the next backward application.
    pub fn pop(&mut self) -> usize {
        self.stack.pop().expect("Graph Stack underflow")
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Deepest the stack has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Total pushes so far.
    pub fn pushes(&self) -> usize {
        self.pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: usize) -> StateFrame {
        StateFrame {
            t,
            inputs: vec![Tensor::zeros((2, 3))],
            node_values: vec![],
            edge_values: vec![Tensor::zeros((4, 1))],
        }
    }

    #[test]
    fn lifo_roundtrip_and_stats() {
        let mut s = StateStack::new();
        s.push(frame(0));
        s.push(frame(1));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.bytes(), 2 * (6 + 4) * 4);
        let f = s.pop(1);
        assert_eq!(f.t, 1);
        s.pop(0);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.peak_depth(), 2);
        assert_eq!(s.counts(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "LIFO violation")]
    fn out_of_order_pop_panics() {
        let mut s = StateStack::new();
        s.push(frame(0));
        s.push(frame(1));
        s.pop(0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn empty_pop_panics() {
        StateStack::new().pop(0);
    }

    #[test]
    fn graph_stack_tracks_depth() {
        let mut g = GraphStack::new();
        g.push(3);
        g.push(4);
        assert_eq!(g.pop(), 4);
        assert_eq!(g.pop(), 3);
        assert_eq!(g.peak_depth(), 2);
        assert_eq!(g.pushes(), 2);
    }
}
