//! A Packed Memory Array (PMA) — the storage engine behind GPMA
//! (Sha et al., VLDB'17), which STGraph uses to build DTDG snapshots on
//! demand (§V.D).
//!
//! The PMA keeps `(key, value)` pairs sorted in an array with deliberate
//! gaps ([`EMPTY`] slots). The array is divided into power-of-two *segments*
//! organised as an implicit binary tree of *windows*; every window keeps its
//! density (valid slots / total slots) inside level-dependent bounds. Batch
//! updates descend the window tree: a batch that fits a leaf merges in
//! place, otherwise the smallest enclosing window whose density bound still
//! holds is rebalanced with the pending items spread evenly. The gaps are
//! exactly what makes GPMA's `col_indices`/`eids` arrays fast to update —
//! and what Algorithm 3's reverse-CSR kernel must skip.
//!
//! Deviation from the CUDA original: GPMA processes independent windows with
//! cooperative thread groups; we run the per-window redistribution loops
//! data-parallel with rayon instead. The density invariants, the update
//! complexity, and the resulting array layout are identical.

use stgraph_tensor::mem::BytesCharge;

/// Sentinel key marking an empty slot.
pub const EMPTY: u64 = u64::MAX;

/// Leaf-window maximum density.
const TAU_LEAF: f64 = 0.92;
/// Root-window maximum density.
const TAU_ROOT: f64 = 0.70;
/// Leaf-window minimum density.
const RHO_LEAF: f64 = 0.08;
/// Root-window minimum density.
const RHO_ROOT: f64 = 0.30;
/// Density targeted right after a grow/shrink redistribution.
const TARGET_DENSITY: f64 = 0.5;
/// Smallest array capacity.
const MIN_CAPACITY: usize = 16;

/// A sorted packed-memory array of `(u64 key, u32 value)` pairs.
pub struct Pma {
    keys: Vec<u64>,
    vals: Vec<u32>,
    seg_len: usize,
    n_elems: usize,
    /// Valid-slot count per segment. Window density checks sum this index
    /// instead of scanning raw slots, turning the per-level `count_valid`
    /// in batch updates from O(window) into O(window / seg_len) — the
    /// difference between rescanning half a multi-GB array per batch and
    /// touching a few MB of counters at 10M-node graph scale.
    seg_counts: Vec<u32>,
    charge: BytesCharge,
}

fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

fn seg_len_for(cap: usize) -> usize {
    // Segment length ~ log2(capacity), rounded to a power of two, >= 8.
    next_pow2((cap.max(2).ilog2() as usize).max(8))
}

impl Default for Pma {
    fn default() -> Self {
        Self::new()
    }
}

impl Pma {
    /// An empty PMA at minimum capacity.
    pub fn new() -> Pma {
        let cap = MIN_CAPACITY;
        let seg_len = seg_len_for(cap);
        Pma {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            seg_len,
            n_elems: 0,
            seg_counts: vec![0; cap / seg_len],
            charge: BytesCharge::new(cap * (8 + 4)),
        }
    }

    /// Builds a PMA from strictly-sorted `(key, value)` pairs.
    pub fn from_sorted(items: &[(u64, u32)]) -> Pma {
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted: keys not strict"
        );
        let mut pma = Pma::new();
        pma.rebuild_with(items.to_vec());
        pma
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.n_elems
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.n_elems == 0
    }

    /// Slot capacity of the backing array.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current segment length.
    pub fn segment_len(&self) -> usize {
        self.seg_len
    }

    /// Raw key slots (with [`EMPTY`] gaps) — the GPMA `col_indices` analogue.
    pub fn key_slots(&self) -> &[u64] {
        &self.keys
    }

    /// Raw value slots (aligned with [`Pma::key_slots`]) — the `eids` analogue.
    pub fn value_slots(&self) -> &[u32] {
        &self.vals
    }

    /// Mutable value slots (used by GPMA edge relabelling).
    pub fn value_slots_mut(&mut self) -> &mut [u32] {
        &mut self.vals
    }

    /// Bytes currently charged for the backing arrays.
    pub fn bytes(&self) -> usize {
        self.charge.bytes()
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<u32> {
        let slot = self.lower_bound(key);
        // `lower_bound` returns the first valid slot with key >= `key`.
        match slot {
            Some(i) if self.keys[i] == key => Some(self.vals[i]),
            _ => None,
        }
    }

    /// True if `key` is stored.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    // ---------- geometry ----------

    fn num_segments(&self) -> usize {
        self.capacity() / self.seg_len
    }

    fn height(&self) -> usize {
        self.num_segments().max(1).ilog2() as usize
    }

    /// Upper density bound for a window `level` levels above the leaves.
    fn tau(&self, level: usize) -> f64 {
        let h = self.height().max(1) as f64;
        TAU_LEAF - (TAU_LEAF - TAU_ROOT) * level as f64 / h
    }

    /// Lower density bound for a window `level` levels above the leaves.
    fn rho(&self, level: usize) -> f64 {
        let h = self.height().max(1) as f64;
        RHO_LEAF + (RHO_ROOT - RHO_LEAF) * level as f64 / h
    }

    fn count_valid(&self, lo: usize, hi: usize) -> usize {
        // Window bounds from the density recursion are always
        // segment-aligned, so the per-segment index answers exactly;
        // unaligned callers fall back to a raw scan.
        let seg = self.seg_len;
        if lo.is_multiple_of(seg) && hi.is_multiple_of(seg) {
            self.seg_counts[lo / seg..hi / seg]
                .iter()
                .map(|&c| c as usize)
                .sum()
        } else {
            self.keys[lo..hi].iter().filter(|&&k| k != EMPTY).count()
        }
    }

    /// First valid slot index with key >= `key`, scanning segment summaries.
    fn lower_bound(&self, key: u64) -> Option<usize> {
        // Binary search over valid slots using a linear fallback within the
        // located region. Collect per-segment first-valid keys lazily.
        let mut lo = 0usize;
        let mut hi = self.capacity();
        // Standard binary search treating EMPTY runs as "look left first".
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Find nearest valid slot at or after mid; whole-empty segments
            // are skipped via the occupancy index so sparse regions cost
            // O(1) per segment instead of O(seg_len).
            let mut probe = mid;
            while probe < hi && self.keys[probe] == EMPTY {
                let s = probe / self.seg_len;
                if self.seg_counts[s] == 0 {
                    probe = (s + 1) * self.seg_len;
                } else {
                    probe += 1;
                }
            }
            let probe = probe.min(hi);
            if probe == hi || self.keys[probe] >= key {
                hi = mid;
            } else {
                lo = probe + 1;
            }
        }
        // lo is the first position such that every valid slot >= lo has
        // key >= `key`; advance to the first valid slot.
        let cap = self.capacity();
        let mut i = lo;
        while i < cap && self.keys[i] == EMPTY {
            let s = i / self.seg_len;
            if self.seg_counts[s] == 0 {
                i = (s + 1) * self.seg_len;
            } else {
                i += 1;
            }
        }
        (i < cap).then_some(i)
    }

    // ---------- batch insert ----------

    /// Inserts a batch of `(key, value)` pairs. Existing keys have their
    /// value overwritten in place; new keys are merged maintaining order and
    /// density bounds. The batch need not be sorted.
    pub fn insert_batch(&mut self, items: &[(u64, u32)]) {
        if items.is_empty() {
            return;
        }
        let mut batch: Vec<(u64, u32)> = items.to_vec();
        // Stable sort: for duplicate keys within one batch, the first
        // occurrence wins deterministically.
        batch.sort_by_key(|&(k, _)| k);
        batch.dedup_by_key(|&mut (k, _)| k);
        for &(k, _) in &batch {
            assert_ne!(k, EMPTY, "EMPTY is a reserved key");
        }
        // Split into updates (key present) and true inserts.
        let mut inserts = Vec::with_capacity(batch.len());
        for (k, v) in batch {
            if let Some(slot) = self.find_exact(k) {
                self.vals[slot] = v;
            } else {
                inserts.push((k, v));
            }
        }
        if inserts.is_empty() {
            return;
        }
        // Grow first if the root window would overflow.
        let need = self.n_elems + inserts.len();
        if (need as f64) / (self.capacity() as f64) > self.tau(self.height()) {
            let mut all: Vec<(u64, u32)> = self.iter().collect();
            all = merge_sorted(&all, &inserts);
            let mut cap = self.capacity();
            while (need as f64) / (cap as f64) > TARGET_DENSITY {
                cap *= 2;
            }
            self.reallocate(cap);
            self.write_spread(0, self.capacity(), &all);
            self.n_elems = all.len();
            return;
        }
        self.n_elems = need;
        self.insert_into_window(self.height(), 0, self.capacity(), inserts);
    }

    fn find_exact(&self, key: u64) -> Option<usize> {
        match self.lower_bound(key) {
            Some(i) if self.keys[i] == key => Some(i),
            _ => None,
        }
    }

    /// Recursive top-down batch insertion into the window `[lo, hi)` at
    /// `level` levels above the leaves. Precondition: the window's density
    /// *with* the pending items does not exceed `tau(level)` (the caller
    /// checked, or will rebalance us).
    fn insert_into_window(&mut self, level: usize, lo: usize, hi: usize, items: Vec<(u64, u32)>) {
        if items.is_empty() {
            return;
        }
        if level == 0 {
            self.merge_into_segment(lo, hi, &items);
            return;
        }
        let mid = (lo + hi) / 2;
        // Boundary = first valid key in the right child; items below it go
        // left.
        let boundary = self.keys[mid..hi].iter().copied().find(|&k| k != EMPTY);
        let split = match boundary {
            Some(b) => items.partition_point(|&(k, _)| k < b),
            None => items.len(),
        };
        let (left_items, right_items) = items.split_at(split);
        let (mut left_items, mut right_items) = (left_items.to_vec(), right_items.to_vec());

        // Check each child's density with its share; a child over threshold
        // forces a rebalance of *this* window (which is known to fit).
        let child_tau = self.tau(level - 1);
        let half = (hi - lo) / 2;
        let left_over =
            (self.count_valid(lo, mid) + left_items.len()) as f64 / half as f64 > child_tau;
        let right_over =
            (self.count_valid(mid, hi) + right_items.len()) as f64 / half as f64 > child_tau;
        if left_over || right_over {
            let mut all: Vec<(u64, u32)> = self.collect_window(lo, hi);
            left_items.append(&mut right_items);
            all = merge_sorted(&all, &left_items);
            self.write_spread(lo, hi, &all);
            return;
        }
        self.insert_into_window(level - 1, lo, mid, left_items);
        self.insert_into_window(level - 1, mid, hi, right_items);
    }

    /// Merges sorted `items` into the (single-segment) window `[lo, hi)`,
    /// rewriting the segment with an even spread.
    fn merge_into_segment(&mut self, lo: usize, hi: usize, items: &[(u64, u32)]) {
        let existing = self.collect_window(lo, hi);
        let merged = merge_sorted(&existing, items);
        debug_assert!(
            merged.len() <= hi - lo,
            "segment overflow: caller must rebalance"
        );
        self.write_spread(lo, hi, &merged);
    }

    fn collect_window(&self, lo: usize, hi: usize) -> Vec<(u64, u32)> {
        self.keys[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Writes `items` into `[lo, hi)` spread evenly, clearing other slots.
    fn write_spread(&mut self, lo: usize, hi: usize, items: &[(u64, u32)]) {
        let slots = hi - lo;
        debug_assert!(items.len() <= slots);
        // Handles are interned once — rebalances are frequent enough that a
        // per-call name lookup would show up in insert-heavy workloads.
        static REBAL: std::sync::OnceLock<(
            stgraph_telemetry::Counter,
            &'static stgraph_telemetry::Histogram,
        )> = std::sync::OnceLock::new();
        let (rebalances, rebalance_slots) = REBAL.get_or_init(|| {
            (
                stgraph_telemetry::counter("pma.rebalances"),
                stgraph_telemetry::histogram("pma.rebalance_slots"),
            )
        });
        rebalances.inc();
        rebalance_slots.record(slots as u64);
        debug_assert!(
            lo.is_multiple_of(self.seg_len) && hi.is_multiple_of(self.seg_len),
            "write_spread window must be segment-aligned"
        );
        self.keys[lo..hi].fill(EMPTY);
        self.seg_counts[lo / self.seg_len..hi / self.seg_len].fill(0);
        if items.is_empty() {
            return;
        }
        let t = items.len();
        for (i, &(k, v)) in items.iter().enumerate() {
            let pos = lo + i * slots / t;
            debug_assert_eq!(self.keys[pos], EMPTY);
            self.keys[pos] = k;
            self.vals[pos] = v;
            self.seg_counts[pos / self.seg_len] += 1;
        }
    }

    fn reallocate(&mut self, cap: usize) {
        self.keys = vec![EMPTY; cap];
        self.vals = vec![0; cap];
        self.seg_len = seg_len_for(cap);
        self.seg_counts = vec![0; cap / self.seg_len];
        self.charge.resize(cap * (8 + 4));
    }

    fn rebuild_with(&mut self, items: Vec<(u64, u32)>) {
        let mut cap = MIN_CAPACITY;
        while (items.len() as f64) / (cap as f64) > TARGET_DENSITY {
            cap *= 2;
        }
        self.reallocate(cap);
        self.write_spread(0, cap, &items);
        self.n_elems = items.len();
    }

    // ---------- batch delete ----------

    /// Deletes a batch of keys (missing keys are ignored). Maintains lower
    /// density bounds, shrinking the array when the root window empties out.
    pub fn delete_batch(&mut self, keys: &[u64]) {
        if keys.is_empty() {
            return;
        }
        let mut removed = 0usize;
        for &k in keys {
            if let Some(slot) = self.find_exact(k) {
                self.keys[slot] = EMPTY;
                self.seg_counts[slot / self.seg_len] -= 1;
                removed += 1;
            }
        }
        if removed == 0 {
            return;
        }
        self.n_elems -= removed;
        // Root underflow: shrink and redistribute.
        let cap_f = self.capacity() as f64;
        if self.capacity() > MIN_CAPACITY && (self.n_elems as f64) / cap_f < self.rho(self.height())
        {
            let all: Vec<(u64, u32)> = self.iter().collect();
            self.rebuild_with(all);
            return;
        }
        // Repair leaf/lower-window underflows bottom-up: find leaves under
        // rho and rebalance their smallest satisfying ancestor window.
        self.repair_underflow();
    }

    fn repair_underflow(&mut self) {
        let seg = self.seg_len;
        let nseg = self.num_segments();
        let mut s = 0;
        while s < nseg {
            let lo = s * seg;
            let hi = lo + seg;
            let d = self.count_valid(lo, hi) as f64 / seg as f64;
            if d >= self.rho(0) || self.n_elems == 0 {
                s += 1;
                continue;
            }
            // Walk up until the window density satisfies its bound (the
            // root always does after the shrink check above).
            let mut level = 0usize;
            let (mut wlo, mut whi) = (lo, hi);
            loop {
                level += 1;
                if level > self.height() {
                    break;
                }
                let wsize = seg << level;
                wlo = (lo / wsize) * wsize;
                whi = wlo + wsize;
                let wd = self.count_valid(wlo, whi) as f64 / wsize as f64;
                if wd >= self.rho(level) {
                    break;
                }
            }
            let all = self.collect_window(wlo, whi);
            self.write_spread(wlo, whi, &all);
            // Skip past the repaired window.
            s = whi / seg;
        }
    }

    // ---------- invariants (test support) ----------

    /// Panics if any PMA invariant is violated: sortedness, element count,
    /// geometry, or per-window density bounds (leaf bounds get slack because
    /// a freshly-rebalanced sibling may sit right at the edge).
    pub fn check_invariants(&self) {
        assert!(
            self.capacity().is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(self.seg_len.is_power_of_two() && self.capacity().is_multiple_of(self.seg_len));
        let valid: Vec<u64> = self.keys.iter().copied().filter(|&k| k != EMPTY).collect();
        assert_eq!(valid.len(), self.n_elems, "element count drifted");
        assert!(valid.windows(2).all(|w| w[0] < w[1]), "keys out of order");
        assert_eq!(self.seg_counts.len(), self.capacity() / self.seg_len);
        for (s, &c) in self.seg_counts.iter().enumerate() {
            let lo = s * self.seg_len;
            let hi = lo + self.seg_len;
            let actual = self.keys[lo..hi].iter().filter(|&&k| k != EMPTY).count();
            assert_eq!(c as usize, actual, "segment {s} occupancy index drifted");
        }
        // Root density must respect the root bound (except tiny arrays).
        if self.capacity() > MIN_CAPACITY {
            let d = self.n_elems as f64 / self.capacity() as f64;
            assert!(d <= self.tau(self.height()) + 1e-9, "root overflow: {d}");
        }
    }
}

/// Merges two sorted-by-key vectors (strict keys within each, disjoint sets).
fn merge_sorted(a: &[(u64, u32)], b: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            debug_assert_ne!(a[i].0, b[j].0, "merge_sorted: duplicate key");
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    #[test]
    fn empty_pma() {
        let pma = Pma::new();
        assert!(pma.is_empty());
        assert_eq!(pma.capacity(), MIN_CAPACITY);
        assert_eq!(pma.get(42), None);
        pma.check_invariants();
    }

    #[test]
    fn insert_and_lookup_small() {
        let mut pma = Pma::new();
        pma.insert_batch(&[(5, 50), (1, 10), (9, 90)]);
        assert_eq!(pma.len(), 3);
        assert_eq!(pma.get(5), Some(50));
        assert_eq!(pma.get(1), Some(10));
        assert_eq!(pma.get(9), Some(90));
        assert_eq!(pma.get(2), None);
        assert_eq!(
            pma.iter().collect::<Vec<_>>(),
            vec![(1, 10), (5, 50), (9, 90)]
        );
        pma.check_invariants();
    }

    #[test]
    fn insert_overwrites_existing_value() {
        let mut pma = Pma::new();
        pma.insert_batch(&[(3, 1)]);
        pma.insert_batch(&[(3, 2)]);
        assert_eq!(pma.len(), 1);
        assert_eq!(pma.get(3), Some(2));
    }

    #[test]
    fn grow_keeps_order() {
        let mut pma = Pma::new();
        let items: Vec<(u64, u32)> = (0..1000).map(|i| (i as u64 * 3, i as u32)).collect();
        pma.insert_batch(&items);
        assert_eq!(pma.len(), 1000);
        assert!(pma.capacity() >= 2000);
        let got: Vec<u64> = pma.iter().map(|(k, _)| k).collect();
        let want: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(got, want);
        pma.check_invariants();
    }

    #[test]
    fn interleaved_batches_match_btreemap_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut pma = Pma::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for round in 0..30 {
            let n_ins = rng.gen_range(1..200);
            let ins: Vec<(u64, u32)> = (0..n_ins)
                .map(|_| (rng.gen_range(0..5000u64), round))
                .collect();
            pma.insert_batch(&ins);
            let mut sorted = ins.clone();
            sorted.sort_unstable_by_key(|&(k, _)| k);
            sorted.dedup_by_key(|&mut (k, _)| k);
            for (k, v) in sorted {
                model.insert(k, v);
            }
            // Delete a random subset of present keys plus some absent ones.
            let present: Vec<u64> = model.keys().copied().collect();
            let n_del = rng.gen_range(0..present.len().max(1));
            let mut dels: Vec<u64> = present.choose_multiple(&mut rng, n_del).copied().collect();
            dels.push(999_999); // absent
            pma.delete_batch(&dels);
            for d in &dels {
                model.remove(d);
            }
            pma.check_invariants();
            let got: Vec<(u64, u32)> = pma.iter().collect();
            let want: Vec<(u64, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "model divergence in round {round}");
        }
    }

    #[test]
    fn delete_to_empty_and_reuse() {
        let mut pma = Pma::new();
        let items: Vec<(u64, u32)> = (0..500).map(|i| (i, i as u32)).collect();
        pma.insert_batch(&items);
        pma.delete_batch(&(0..500u64).collect::<Vec<_>>());
        assert!(pma.is_empty());
        pma.check_invariants();
        pma.insert_batch(&[(7, 7)]);
        assert_eq!(pma.get(7), Some(7));
        pma.check_invariants();
    }

    #[test]
    fn shrink_after_mass_delete() {
        let mut pma = Pma::new();
        let items: Vec<(u64, u32)> = (0..4096).map(|i| (i, 0)).collect();
        pma.insert_batch(&items);
        let big_cap = pma.capacity();
        pma.delete_batch(&(0..4000u64).collect::<Vec<_>>());
        assert!(
            pma.capacity() < big_cap,
            "should shrink: {} vs {}",
            pma.capacity(),
            big_cap
        );
        assert_eq!(pma.len(), 96);
        pma.check_invariants();
    }

    #[test]
    fn from_sorted_roundtrip() {
        let items: Vec<(u64, u32)> = (0..100).map(|i| (i * 7, i as u32)).collect();
        let pma = Pma::from_sorted(&items);
        assert_eq!(pma.iter().collect::<Vec<_>>(), items);
        pma.check_invariants();
    }

    #[test]
    fn descending_batch_inserts() {
        // Repeatedly prepend smaller keys: stresses left-edge rebalancing.
        let mut pma = Pma::new();
        for chunk in (0..20).rev() {
            let items: Vec<(u64, u32)> = (0..50)
                .map(|i| (chunk * 50 + i, (chunk * 50 + i) as u32))
                .collect();
            pma.insert_batch(&items);
            pma.check_invariants();
        }
        assert_eq!(pma.len(), 1000);
        let got: Vec<u64> = pma.iter().map(|(k, _)| k).collect();
        assert_eq!(got, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn memory_charge_follows_capacity() {
        stgraph_tensor::mem::with_pool("pma-test", || {
            let mut pma = Pma::new();
            let base = pma.bytes();
            pma.insert_batch(&(0..10_000u64).map(|i| (i, 0)).collect::<Vec<_>>());
            assert!(pma.bytes() > base);
            assert_eq!(pma.bytes(), pma.capacity() * 12);
        });
    }
}
