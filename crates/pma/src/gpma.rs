//! GPMA: the PMA specialised to graph adjacency (§V.D).
//!
//! Edges `(src, dst)` are stored as `u64` keys `(src << 32) | dst`, so the
//! PMA's sorted order groups each vertex's out-neighbours contiguously. The
//! value slot carries the edge id, rewritten by [`Gpma::relabel_edges`]
//! after every update batch (Algorithm 2, line 8). [`Gpma::csr_view`]
//! materialises the gapped CSR arrays (`row_offset`, `col_indices` with
//! `SPACE` holes, `eids`) that the backward kernel consumes directly and
//! that Algorithm 3 turns into the dense reverse CSR for the forward pass.

use crate::pma::{Pma, EMPTY};
use stgraph_graph::csr::{Csr, SPACE};

/// Packs an edge into its PMA key.
#[inline]
pub fn edge_key(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Unpacks a PMA key into `(src, dst)`.
#[inline]
pub fn key_edge(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// A dynamic graph stored as a GPMA.
///
/// ```
/// use stgraph_pma::Gpma;
///
/// let mut g = Gpma::from_edges(4, &[(0, 1), (1, 2)]);
/// g.insert_edges(&[(2, 3)]);
/// g.delete_edges(&[(0, 1)]);
/// g.relabel_edges();
/// assert_eq!(g.edges(), vec![(1, 2), (2, 3)]);
/// let (csr, in_degrees) = g.csr_view();
/// assert_eq!(csr.num_edges(), 2);
/// assert_eq!(in_degrees, vec![0, 0, 1, 1]);
/// ```
pub struct Gpma {
    pma: Pma,
    num_nodes: usize,
}

impl Gpma {
    /// An empty graph over `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Gpma {
        Gpma {
            pma: Pma::new(),
            num_nodes,
        }
    }

    /// Builds a graph from an initial (base) edge list and labels its edges.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Gpma {
        let mut g = Gpma::new(num_nodes);
        g.insert_edges(edges);
        g.relabel_edges();
        g
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.pma.len()
    }

    /// Bytes charged for the PMA arrays.
    pub fn bytes(&self) -> usize {
        self.pma.bytes()
    }

    /// Access to the underlying PMA (tests, invariant checks).
    pub fn pma(&self) -> &Pma {
        &self.pma
    }

    /// Batch edge insertion (duplicates of existing edges are no-ops apart
    /// from the value overwrite; edge ids are stale until relabelled).
    pub fn insert_edges(&mut self, edges: &[(u32, u32)]) {
        let items: Vec<(u64, u32)> = edges
            .iter()
            .map(|&(s, d)| (edge_key(s, d), u32::MAX))
            .collect();
        self.pma.insert_batch(&items);
    }

    /// Batch edge deletion (absent edges are ignored).
    pub fn delete_edges(&mut self, edges: &[(u32, u32)]) {
        let keys: Vec<u64> = edges.iter().map(|&(s, d)| edge_key(s, d)).collect();
        self.pma.delete_batch(&keys);
    }

    /// [`Gpma::insert_edges`] behind the `gpma.update` fault point: an
    /// injected fault fails the call *before* any mutation, so the
    /// structure is untouched on `Err`. Recovery layers (serve ingest)
    /// build batch rollback on this guarantee.
    pub fn try_insert_edges(
        &mut self,
        edges: &[(u32, u32)],
    ) -> Result<(), stgraph_faultline::FaultError> {
        stgraph_faultline::fault_point!("gpma.update")?;
        self.insert_edges(edges);
        Ok(())
    }

    /// [`Gpma::delete_edges`] behind the `gpma.update` fault point; same
    /// untouched-on-`Err` contract as [`Gpma::try_insert_edges`].
    pub fn try_delete_edges(
        &mut self,
        edges: &[(u32, u32)],
    ) -> Result<(), stgraph_faultline::FaultError> {
        stgraph_faultline::fault_point!("gpma.update")?;
        self.delete_edges(edges);
        Ok(())
    }

    /// Reassigns edge ids `0..m` in sorted slot order — the relabelling step
    /// required after structural updates so forward and backward CSRs agree
    /// on labels (§V.B item 3, Algorithm 2 line 8). Returns the edge count.
    pub fn relabel_edges(&mut self) -> usize {
        let keys: Vec<u64> = self.pma.key_slots().to_vec();
        let vals = self.pma.value_slots_mut();
        let mut eid = 0u32;
        for (i, &k) in keys.iter().enumerate() {
            if k != EMPTY {
                vals[i] = eid;
                eid += 1;
            }
        }
        eid as usize
    }

    /// Lists edges in sorted order (tests / snapshot comparison).
    pub fn edges(&self) -> Vec<(u32, u32)> {
        self.pma.iter().map(|(k, _)| key_edge(k)).collect()
    }

    /// True if the edge is present.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.pma.contains(edge_key(src, dst))
    }

    /// A deep copy with its own memory charge (the Algorithm-2 cache).
    pub fn clone_state(&self) -> Gpma {
        let items: Vec<(u64, u32)> = self.pma.iter().collect();
        Gpma {
            pma: Pma::from_sorted(&items),
            num_nodes: self.num_nodes,
        }
    }

    /// Materialises the gapped out-CSR over the current PMA slots, plus the
    /// in-degree array needed by Algorithm 3.
    ///
    /// `row_offset[v]` is the first slot whose key has `src >= v`; slots in
    /// a row range that hold [`SPACE`] are the PMA's insertion gaps and are
    /// skipped by every kernel.
    pub fn csr_view(&self) -> (Csr, Vec<u32>) {
        let n = self.num_nodes;
        let cap = self.pma.capacity();
        let keys = self.pma.key_slots();
        let vals = self.pma.value_slots();

        let mut col_indices = vec![SPACE; cap];
        let mut eids = vec![0u32; cap];
        let mut row_offset = vec![cap; n + 1];
        let mut in_deg = vec![0u32; n];
        let mut next_row = 0usize; // first vertex whose offset is unassigned
        for i in 0..cap {
            let k = keys[i];
            if k == EMPTY {
                continue;
            }
            let (s, d) = key_edge(k);
            debug_assert!((s as usize) < n && (d as usize) < n, "edge out of range");
            while next_row <= s as usize {
                row_offset[next_row] = i;
                next_row += 1;
            }
            col_indices[i] = d;
            eids[i] = vals[i];
            in_deg[d as usize] += 1;
        }
        while next_row <= n {
            row_offset[next_row] = cap;
            next_row += 1;
        }
        row_offset[0] = 0;
        (Csr::from_parts(row_offset, col_indices, eids), in_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeSet;
    use stgraph_graph::base::{STGraphBase, Snapshot};
    use stgraph_graph::csr::{reverse_csr_sequential, same_rows};

    #[test]
    fn key_packing_roundtrip() {
        assert_eq!(key_edge(edge_key(3, 9)), (3, 9));
        assert_eq!(key_edge(edge_key(0, 0)), (0, 0));
        assert_eq!(key_edge(edge_key(u32::MAX - 1, 7)), (u32::MAX - 1, 7));
        // Keys order by src first, dst second.
        assert!(edge_key(1, 9) < edge_key(2, 0));
        assert!(edge_key(1, 3) < edge_key(1, 4));
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut g = Gpma::new(5);
        g.insert_edges(&[(0, 1), (2, 3), (1, 4)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 3));
        g.delete_edges(&[(2, 3), (4, 4)]);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.edges(), vec![(0, 1), (1, 4)]);
    }

    #[test]
    fn relabel_assigns_sequential_ids() {
        let mut g = Gpma::from_edges(4, &[(2, 1), (0, 3), (1, 0)]);
        let m = g.relabel_edges();
        assert_eq!(m, 3);
        let (csr, _) = g.csr_view();
        let mut labels: Vec<u32> = csr.triples().iter().map(|&(_, _, e)| e).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2]);
        // Sorted slot order means eid order follows (src, dst) order.
        let triples = csr.triples();
        assert_eq!(triples, vec![(0, 3, 0), (1, 0, 1), (2, 1, 2)]);
    }

    #[test]
    fn csr_view_matches_edge_list() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 60u32;
        let mut set = BTreeSet::new();
        while set.len() < 700 {
            set.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let edges: Vec<(u32, u32)> = set.iter().copied().collect();
        let g = Gpma::from_edges(n as usize, &edges);
        let (csr, in_deg) = g.csr_view();
        assert_eq!(csr.num_edges(), edges.len());
        let got: Vec<(u32, u32)> = csr.triples().iter().map(|&(s, d, _)| (s, d)).collect();
        assert_eq!(got, edges, "CSR triples must be the sorted edge list");
        // in-degrees agree with a manual count.
        let mut manual = vec![0u32; n as usize];
        for &(_, d) in &edges {
            manual[d as usize] += 1;
        }
        assert_eq!(in_deg, manual);
    }

    #[test]
    fn gapped_view_reverses_correctly() {
        // End-to-end: GPMA -> gapped CSR -> Algorithm-3 reverse == oracle.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 40u32;
        let mut g = Gpma::new(n as usize);
        let mut set = BTreeSet::new();
        for _ in 0..5 {
            let batch: Vec<(u32, u32)> = (0..300)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            g.insert_edges(&batch);
            set.extend(batch);
            g.pma().check_invariants();
        }
        g.relabel_edges();
        let (csr, in_deg) = g.csr_view();
        let snap = Snapshot::from_csr(csr);
        assert_eq!(snap.in_degrees.as_slice(), &in_deg[..]);
        let (csr2, _) = g.csr_view();
        let oracle = reverse_csr_sequential(&csr2, n as usize);
        assert!(same_rows(&snap.reverse_csr, &oracle));
        assert_eq!(snap.num_edges(), set.len());
    }

    #[test]
    fn clone_state_is_independent() {
        let mut g = Gpma::from_edges(4, &[(0, 1), (1, 2)]);
        let cache = g.clone_state();
        g.insert_edges(&[(2, 3)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(cache.num_edges(), 2);
        assert!(!cache.has_edge(2, 3));
    }

    #[test]
    fn empty_rows_get_consistent_offsets() {
        let g = Gpma::from_edges(6, &[(4, 0)]);
        let (csr, _) = g.csr_view();
        assert_eq!(csr.num_edges(), 1);
        for v in 0..6 {
            let row: Vec<_> = csr.iter_row(v).collect();
            if v == 4 {
                assert_eq!(row.len(), 1);
            } else {
                assert!(row.is_empty(), "vertex {v} should have no edges");
            }
        }
    }
}
