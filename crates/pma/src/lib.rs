//! # stgraph-pma
//!
//! The GPMA substrate (Sha et al., VLDB'17) STGraph builds DTDG snapshots
//! from: a density-bounded Packed Memory Array with batch insert/delete,
//! specialised to graph adjacency with gapped-CSR views and edge
//! relabelling.

#![warn(missing_docs)]

pub mod gpma;
pub mod pma;

pub use gpma::{edge_key, key_edge, Gpma};
pub use pma::{Pma, EMPTY};
