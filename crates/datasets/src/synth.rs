//! Streaming synthetic graphs at 10M+ nodes.
//!
//! The Table II generators materialise their edge lists — fine at SNAP
//! scale, hopeless for the shard benchmarks, which need graphs an order
//! of magnitude past anything in the paper. This module generates
//! **community-structured power-law** edge streams lazily: an
//! [`EdgeStream`] is a seeded iterator with O(1) state, so a 10M-node /
//! 30M-edge graph costs nothing until consumed and can be replayed by
//! constructing it again (same config ⇒ bitwise-identical stream — which
//! is exactly what [`stgraph_dyngraph::ShardedGraph::from_edge_stream`]'s
//! multi-pass build requires).
//!
//! Shape: vertices split into equal-size communities; each edge stays
//! inside its community with probability `intra_prob`, endpoints drawn
//! power-law over community-local ranks (every community has its own
//! hubs). Edges arrive in community-correlated *bursts* — runs of
//! `burst` edges biased toward one community — matching the temporal
//! locality of real interaction streams (conversations cluster) and
//! giving streaming partitioners something to exploit.
//!
//! [`UpdateStream`] extends the same distribution to churn: batches of
//! insertions from the generator plus deletions sampled from a bounded
//! reservoir of previously-inserted edges, so deletions always hit edges
//! that exist without remembering the full history.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`community_stream`] / [`UpdateStream`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total vertices.
    pub num_nodes: usize,
    /// Edges the base stream yields (events, not necessarily distinct).
    pub num_edges: usize,
    /// Number of equal-size communities.
    pub communities: usize,
    /// Probability an edge stays within its community.
    pub intra_prob: f64,
    /// Power-law exponent over community-local ranks (1.0 = uniform;
    /// higher = heavier hubs).
    pub exponent: f64,
    /// Length of community-correlated runs in the stream (1 = fully
    /// interleaved).
    pub burst: usize,
    /// RNG seed; equal configs yield bitwise-identical streams.
    pub seed: u64,
}

impl SynthConfig {
    /// A reasonable default shape: 64 communities, 90% intra-community
    /// edges, moderate hubs, bursts of 64.
    pub fn new(num_nodes: usize, num_edges: usize, seed: u64) -> SynthConfig {
        SynthConfig {
            num_nodes,
            num_edges,
            communities: 64,
            intra_prob: 0.9,
            exponent: 1.8,
            burst: 64,
            seed,
        }
    }
}

/// Power-law rank draw over `0..range` (rank 0 is the biggest hub).
#[inline]
fn powerlaw_rank(rng: &mut ChaCha8Rng, range: u32, exponent: f64) -> u32 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    ((range as f64 * u.powf(exponent)) as u32).min(range - 1)
}

/// Lazy community-structured edge stream (see module docs). O(1) state;
/// reconstruct with the same config to replay.
pub struct EdgeStream {
    cfg: SynthConfig,
    rng: ChaCha8Rng,
    /// Community the current burst is biased toward.
    burst_comm: u32,
    /// Edges left in the current burst.
    burst_left: usize,
    /// Edges left overall.
    remaining: usize,
}

impl EdgeStream {
    fn community_bounds(&self, c: u32) -> (u32, u32) {
        let n = self.cfg.num_nodes as u64;
        let k = self.cfg.communities as u64;
        let base = (c as u64 * n / k) as u32;
        let end = ((c as u64 + 1) * n / k) as u32;
        (base, end.max(base + 1))
    }
}

impl Iterator for EdgeStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.burst_left == 0 {
            self.burst_comm = self.rng.gen_range(0..self.cfg.communities as u32);
            self.burst_left = self.cfg.burst.max(1);
        }
        self.burst_left -= 1;
        let (base, end) = self.community_bounds(self.burst_comm);
        let size = end - base;
        let u = base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent);
        let mut v = if self.rng.gen_bool(self.cfg.intra_prob) {
            base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent)
        } else {
            self.rng.gen_range(0..self.cfg.num_nodes as u32)
        };
        if v == u {
            v = base + (u - base + 1 + self.rng.gen_range(0..size.max(2) - 1)) % size;
            if v == u {
                v = (u + 1) % self.cfg.num_nodes as u32;
            }
        }
        Some((u, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Builds the seeded lazy stream for `cfg`.
pub fn community_stream(cfg: &SynthConfig) -> EdgeStream {
    assert!(cfg.num_nodes >= 2, "need at least two vertices");
    assert!(cfg.communities >= 1 && cfg.communities <= cfg.num_nodes);
    EdgeStream {
        cfg: cfg.clone(),
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        burst_comm: 0,
        burst_left: 0,
        remaining: cfg.num_edges,
    }
}

/// One churn batch: `(additions, deletions)`.
pub type UpdateBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Churn generator: insertion batches from the same distribution as the
/// base stream, deletion batches sampled from a bounded reservoir of
/// previously-inserted edges. Deterministic given the config.
pub struct UpdateStream {
    gen: EdgeStream,
    rng: ChaCha8Rng,
    reservoir: Vec<(u32, u32)>,
    reservoir_cap: usize,
    /// Deletions per insertion (0.0 = insert-only).
    delete_frac: f64,
}

impl UpdateStream {
    /// `cfg.num_edges` bounds the total insertions the stream will yield.
    pub fn new(cfg: &SynthConfig, delete_frac: f64, reservoir_cap: usize) -> UpdateStream {
        UpdateStream {
            gen: community_stream(cfg),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5eed_cafe),
            reservoir: Vec::with_capacity(reservoir_cap.min(1 << 20)),
            reservoir_cap,
            delete_frac,
        }
    }

    /// Next batch of `(additions, deletions)`; `None` when the insertion
    /// budget is exhausted. Deletions are distinct edges previously
    /// handed out as additions (never more than `delete_frac × adds`).
    pub fn next_batch(&mut self, batch_edges: usize) -> Option<UpdateBatch> {
        let adds: Vec<(u32, u32)> = (&mut self.gen).take(batch_edges).collect();
        if adds.is_empty() {
            return None;
        }
        let want_dels = ((adds.len() as f64 * self.delete_frac) as usize).min(self.reservoir.len());
        let mut dels = Vec::with_capacity(want_dels);
        for _ in 0..want_dels {
            let i = self.rng.gen_range(0..self.reservoir.len());
            dels.push(self.reservoir.swap_remove(i));
        }
        for &e in &adds {
            if self.reservoir.len() < self.reservoir_cap {
                self.reservoir.push(e);
            } else {
                let i = self.rng.gen_range(0..self.reservoir.len());
                self.reservoir[i] = e;
            }
        }
        Some((adds, dels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            num_nodes: 1000,
            num_edges: 5000,
            communities: 8,
            intra_prob: 0.9,
            exponent: 1.8,
            burst: 16,
            seed: 42,
        }
    }

    #[test]
    fn stream_is_replayable_and_sized() {
        let cfg = small();
        let a: Vec<_> = community_stream(&cfg).collect();
        let b: Vec<_> = community_stream(&cfg).collect();
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b, "same config must replay bitwise-identically");
    }

    #[test]
    fn edges_are_in_range_without_self_loops() {
        let cfg = small();
        for (u, v) in community_stream(&cfg) {
            assert!((u as usize) < cfg.num_nodes && (v as usize) < cfg.num_nodes);
            assert_ne!(u, v, "no self-loops");
        }
    }

    #[test]
    fn streams_have_community_structure() {
        let cfg = small();
        let comm = |x: u32| x as usize * cfg.communities / cfg.num_nodes;
        let intra = community_stream(&cfg)
            .filter(|&(u, v)| comm(u) == comm(v))
            .count();
        // intra_prob 0.9 plus the 1/k of cross edges landing home.
        assert!(
            intra as f64 > 0.8 * cfg.num_edges as f64,
            "expected mostly intra-community edges, got {intra}/5000"
        );
    }

    #[test]
    fn huge_streams_are_lazy() {
        // 20M nodes / 50M edges: constructing and peeking must be instant
        // and allocation-free apart from the iterator itself.
        let cfg = SynthConfig::new(20_000_000, 50_000_000, 7);
        let mut s = community_stream(&cfg);
        let first = s.next().unwrap();
        assert!((first.0 as usize) < cfg.num_nodes);
        assert_eq!(s.size_hint().0, 49_999_999);
    }

    #[test]
    fn update_stream_deletes_only_prior_insertions() {
        let cfg = small();
        let mut inserted = std::collections::HashSet::new();
        let mut us = UpdateStream::new(&cfg, 0.3, 1024);
        let mut batches = 0;
        while let Some((adds, dels)) = us.next_batch(256) {
            for d in &dels {
                assert!(inserted.contains(d), "deletion {d:?} never inserted");
            }
            for a in adds {
                inserted.insert(a);
            }
            batches += 1;
        }
        assert_eq!(batches, 5000usize.div_ceil(256));
    }
}
