//! Streaming synthetic graphs at 10M+ nodes.
//!
//! The Table II generators materialise their edge lists — fine at SNAP
//! scale, hopeless for the shard benchmarks, which need graphs an order
//! of magnitude past anything in the paper. This module generates
//! **community-structured power-law** edge streams lazily: an
//! [`EdgeStream`] is a seeded iterator with O(1) state, so a 10M-node /
//! 30M-edge graph costs nothing until consumed and can be replayed by
//! constructing it again (same config ⇒ bitwise-identical stream — which
//! is exactly what [`stgraph_dyngraph::ShardedGraph::from_edge_stream`]'s
//! multi-pass build requires).
//!
//! Shape: vertices split into equal-size communities; each edge stays
//! inside its community with probability `intra_prob`, endpoints drawn
//! power-law over community-local ranks (every community has its own
//! hubs). Edges arrive in community-correlated *bursts* — runs of
//! `burst` edges biased toward one community — matching the temporal
//! locality of real interaction streams (conversations cluster) and
//! giving streaming partitioners something to exploit.
//!
//! [`UpdateStream`] extends the same distribution to churn: batches of
//! insertions from the generator plus deletions sampled from a bounded
//! reservoir of previously-inserted edges, so deletions always hit edges
//! that exist without remembering the full history.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One timestamped edge event — the unit both workload families consume.
/// DTDG callers that predate timestamps strip `t` (see
/// [`UpdateStream::next_batch`]); the CTDG stack keys everything off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEdge {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// Event timestamp; non-decreasing within a stream.
    pub t: u64,
}

/// Configuration for [`community_stream`] / [`UpdateStream`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total vertices.
    pub num_nodes: usize,
    /// Edges the base stream yields (events, not necessarily distinct).
    pub num_edges: usize,
    /// Number of equal-size communities.
    pub communities: usize,
    /// Probability an edge stays within its community.
    pub intra_prob: f64,
    /// Power-law exponent over community-local ranks (1.0 = uniform;
    /// higher = heavier hubs).
    pub exponent: f64,
    /// Length of community-correlated runs in the stream (1 = fully
    /// interleaved).
    pub burst: usize,
    /// RNG seed; equal configs yield bitwise-identical streams.
    pub seed: u64,
}

impl SynthConfig {
    /// A reasonable default shape: 64 communities, 90% intra-community
    /// edges, moderate hubs, bursts of 64.
    pub fn new(num_nodes: usize, num_edges: usize, seed: u64) -> SynthConfig {
        SynthConfig {
            num_nodes,
            num_edges,
            communities: 64,
            intra_prob: 0.9,
            exponent: 1.8,
            burst: 64,
            seed,
        }
    }
}

/// Power-law rank draw over `0..range` (rank 0 is the biggest hub).
#[inline]
fn powerlaw_rank(rng: &mut ChaCha8Rng, range: u32, exponent: f64) -> u32 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    ((range as f64 * u.powf(exponent)) as u32).min(range - 1)
}

/// Lazy community-structured edge stream (see module docs). O(1) state;
/// reconstruct with the same config to replay.
pub struct EdgeStream {
    cfg: SynthConfig,
    rng: ChaCha8Rng,
    /// Community the current burst is biased toward.
    burst_comm: u32,
    /// Edges left in the current burst.
    burst_left: usize,
    /// Edges left overall.
    remaining: usize,
    /// Monotonic event clock (one tick per edge), so the same stream can
    /// feed timestamp-aware consumers via [`EdgeStream::next_timed`]
    /// without perturbing the edge sequence DTDG callers replay.
    clock: u64,
}

impl EdgeStream {
    fn community_bounds(&self, c: u32) -> (u32, u32) {
        let n = self.cfg.num_nodes as u64;
        let k = self.cfg.communities as u64;
        let base = (c as u64 * n / k) as u32;
        let end = ((c as u64 + 1) * n / k) as u32;
        (base, end.max(base + 1))
    }

    /// Like `next`, but tags the edge with the stream's monotonic clock.
    /// The edge sequence is bitwise identical to the untimed iterator —
    /// timestamps are derived from event order, not extra RNG draws.
    pub fn next_timed(&mut self) -> Option<TimedEdge> {
        let (src, dst) = self.next()?;
        Some(TimedEdge {
            src,
            dst,
            t: self.clock,
        })
    }
}

impl Iterator for EdgeStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock += 1;
        if self.burst_left == 0 {
            self.burst_comm = self.rng.gen_range(0..self.cfg.communities as u32);
            self.burst_left = self.cfg.burst.max(1);
        }
        self.burst_left -= 1;
        let (base, end) = self.community_bounds(self.burst_comm);
        let size = end - base;
        let u = base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent);
        let mut v = if self.rng.gen_bool(self.cfg.intra_prob) {
            base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent)
        } else {
            self.rng.gen_range(0..self.cfg.num_nodes as u32)
        };
        if v == u {
            v = base + (u - base + 1 + self.rng.gen_range(0..size.max(2) - 1)) % size;
            if v == u {
                v = (u + 1) % self.cfg.num_nodes as u32;
            }
        }
        Some((u, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Builds the seeded lazy stream for `cfg`.
pub fn community_stream(cfg: &SynthConfig) -> EdgeStream {
    assert!(cfg.num_nodes >= 2, "need at least two vertices");
    assert!(cfg.communities >= 1 && cfg.communities <= cfg.num_nodes);
    EdgeStream {
        cfg: cfg.clone(),
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        burst_comm: 0,
        burst_left: 0,
        remaining: cfg.num_edges,
        clock: 0,
    }
}

/// One churn batch: `(additions, deletions)`.
pub type UpdateBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// One churn batch with timestamped additions — what the CTDG stack
/// ingests. Deletions carry no timestamp: the continuous-time event log is
/// append-only, so deletions only make sense to the DTDG snapshot stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedUpdateBatch {
    /// Timestamped insertions, in stream order (non-decreasing `t`).
    pub adds: Vec<TimedEdge>,
    /// Deletions of previously-inserted edges.
    pub dels: Vec<(u32, u32)>,
}

/// Churn generator: insertion batches from the same distribution as the
/// base stream, deletion batches sampled from a bounded reservoir of
/// previously-inserted edges. Deterministic given the config.
pub struct UpdateStream {
    gen: EdgeStream,
    rng: ChaCha8Rng,
    reservoir: Vec<(u32, u32)>,
    reservoir_cap: usize,
    /// Deletions per insertion (0.0 = insert-only).
    delete_frac: f64,
}

impl UpdateStream {
    /// `cfg.num_edges` bounds the total insertions the stream will yield.
    pub fn new(cfg: &SynthConfig, delete_frac: f64, reservoir_cap: usize) -> UpdateStream {
        UpdateStream {
            gen: community_stream(cfg),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5eed_cafe),
            reservoir: Vec::with_capacity(reservoir_cap.min(1 << 20)),
            reservoir_cap,
            delete_frac,
        }
    }

    /// Next batch of `(additions, deletions)`; `None` when the insertion
    /// budget is exhausted. Deletions are distinct edges previously
    /// handed out as additions (never more than `delete_frac × adds`).
    /// Timestamp-stripping wrapper over [`UpdateStream::next_timed_batch`]
    /// for the DTDG stores, which key snapshots on batch index, not time.
    pub fn next_batch(&mut self, batch_edges: usize) -> Option<UpdateBatch> {
        let b = self.next_timed_batch(batch_edges)?;
        Some((b.adds.iter().map(|e| (e.src, e.dst)).collect(), b.dels))
    }

    /// Next batch with timestamped additions (the stream's monotonic event
    /// clock); `None` when the insertion budget is exhausted.
    pub fn next_timed_batch(&mut self, batch_edges: usize) -> Option<TimedUpdateBatch> {
        let mut adds: Vec<TimedEdge> = Vec::with_capacity(batch_edges);
        while adds.len() < batch_edges {
            match self.gen.next_timed() {
                Some(e) => adds.push(e),
                None => break,
            }
        }
        if adds.is_empty() {
            return None;
        }
        let want_dels = ((adds.len() as f64 * self.delete_frac) as usize).min(self.reservoir.len());
        let mut dels = Vec::with_capacity(want_dels);
        for _ in 0..want_dels {
            let i = self.rng.gen_range(0..self.reservoir.len());
            dels.push(self.reservoir.swap_remove(i));
        }
        for e in &adds {
            let pair = (e.src, e.dst);
            if self.reservoir.len() < self.reservoir_cap {
                self.reservoir.push(pair);
            } else {
                let i = self.rng.gen_range(0..self.reservoir.len());
                self.reservoir[i] = pair;
            }
        }
        Some(TimedUpdateBatch { adds, dels })
    }
}

/// Configuration for [`fraud_stream`]: a continuous-time interaction
/// stream (e.g. payments) with injected fraud bursts.
#[derive(Debug, Clone)]
pub struct FraudConfig {
    /// Total vertices. The top [`FraudConfig::fraud_nodes`] ids form the
    /// fraud ring.
    pub num_nodes: usize,
    /// Total events the stream yields (background + burst).
    pub num_events: usize,
    /// Communities for the background traffic (as [`SynthConfig`]).
    pub communities: usize,
    /// Probability a background edge stays within its community.
    pub intra_prob: f64,
    /// Power-law exponent over community-local ranks.
    pub exponent: f64,
    /// Size of the fraud ring (node ids `num_nodes - fraud_nodes ..`).
    pub fraud_nodes: usize,
    /// Per-background-event probability of starting a fraud burst.
    pub burst_start_prob: f64,
    /// Events per fraud burst.
    pub burst_len: usize,
    /// Mean inter-arrival time of background events (ticks). Burst events
    /// arrive an order of magnitude faster — that velocity is the signal.
    pub mean_dt: u64,
    /// RNG seed; equal configs yield bitwise-identical streams.
    pub seed: u64,
}

impl FraudConfig {
    /// Default shape: 32 communities, 90% intra, a 1% fraud ring, ~3% of
    /// events inside bursts of 48, background inter-arrival mean 4 ticks.
    pub fn new(num_nodes: usize, num_events: usize, seed: u64) -> FraudConfig {
        FraudConfig {
            num_nodes,
            num_events,
            communities: 32,
            intra_prob: 0.9,
            exponent: 1.8,
            fraud_nodes: (num_nodes / 100).clamp(2, 1024),
            burst_start_prob: 0.0007,
            burst_len: 48,
            mean_dt: 4,
            seed,
        }
    }
}

/// One event of a [`FraudStream`]: a timestamped interaction plus its
/// ground-truth label (true = part of an injected fraud burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FraudEvent {
    /// The timestamped interaction.
    pub edge: TimedEdge,
    /// True when the event belongs to an injected fraud burst.
    pub fraud: bool,
}

/// Lazy seeded continuous-time event stream with injected fraud bursts —
/// the CTDG analogue of [`community_stream`]. Background interactions are
/// community-structured power-law edges whose clock advances by a random
/// inter-arrival around `mean_dt`; with probability `burst_start_prob` a
/// background event triggers a *burst*: `burst_len` rapid-fire (dt ∈
/// {0,1}) interactions between fraud-ring members and power-law-chosen
/// victims. O(1) state, replayable: same config ⇒ bitwise-identical
/// stream.
pub struct FraudStream {
    cfg: FraudConfig,
    rng: ChaCha8Rng,
    clock: u64,
    burst_left: usize,
    /// Victim the current burst drains (bursts fan in on one target).
    burst_victim: u32,
    remaining: usize,
}

impl Iterator for FraudStream {
    type Item = FraudEvent;

    fn next(&mut self) -> Option<FraudEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let n = self.cfg.num_nodes as u32;
        let ring = self.cfg.fraud_nodes as u32;
        let ring_base = n - ring;
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.clock += self.rng.gen_range(0u64..=1);
            let src = ring_base + self.rng.gen_range(0..ring);
            let mut dst = if self.rng.gen_bool(0.3) {
                ring_base + self.rng.gen_range(0..ring)
            } else {
                self.burst_victim
            };
            if dst == src {
                dst = if src == self.burst_victim {
                    (src + 1) % n
                } else {
                    self.burst_victim
                };
            }
            return Some(FraudEvent {
                edge: TimedEdge {
                    src,
                    dst,
                    t: self.clock,
                },
                fraud: true,
            });
        }
        // Background event: community power-law, normal velocity.
        self.clock += self.rng.gen_range(1..=2 * self.cfg.mean_dt.max(1) - 1);
        let comm = self.rng.gen_range(0..self.cfg.communities as u32);
        let k = self.cfg.communities as u64;
        let base = (comm as u64 * n as u64 / k) as u32;
        let end = (((comm as u64 + 1) * n as u64 / k) as u32).max(base + 1);
        let size = end - base;
        let src = base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent);
        let mut dst = if self.rng.gen_bool(self.cfg.intra_prob) {
            base + powerlaw_rank(&mut self.rng, size, self.cfg.exponent)
        } else {
            self.rng.gen_range(0..n)
        };
        if dst == src {
            dst = (src + 1) % n;
        }
        if self.rng.gen_bool(self.cfg.burst_start_prob) {
            self.burst_left = self.cfg.burst_len;
            self.burst_victim = powerlaw_rank(&mut self.rng, n, self.cfg.exponent);
        }
        Some(FraudEvent {
            edge: TimedEdge {
                src,
                dst,
                t: self.clock,
            },
            fraud: false,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Builds the seeded lazy fraud-burst stream for `cfg`.
pub fn fraud_stream(cfg: &FraudConfig) -> FraudStream {
    assert!(cfg.num_nodes >= 4, "need at least four vertices");
    assert!(cfg.fraud_nodes >= 2 && cfg.fraud_nodes < cfg.num_nodes);
    assert!(cfg.communities >= 1 && cfg.communities <= cfg.num_nodes);
    FraudStream {
        cfg: cfg.clone(),
        rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xf4a0_d5ee),
        clock: 0,
        burst_left: 0,
        burst_victim: 0,
        remaining: cfg.num_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            num_nodes: 1000,
            num_edges: 5000,
            communities: 8,
            intra_prob: 0.9,
            exponent: 1.8,
            burst: 16,
            seed: 42,
        }
    }

    #[test]
    fn stream_is_replayable_and_sized() {
        let cfg = small();
        let a: Vec<_> = community_stream(&cfg).collect();
        let b: Vec<_> = community_stream(&cfg).collect();
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b, "same config must replay bitwise-identically");
    }

    #[test]
    fn edges_are_in_range_without_self_loops() {
        let cfg = small();
        for (u, v) in community_stream(&cfg) {
            assert!((u as usize) < cfg.num_nodes && (v as usize) < cfg.num_nodes);
            assert_ne!(u, v, "no self-loops");
        }
    }

    #[test]
    fn streams_have_community_structure() {
        let cfg = small();
        let comm = |x: u32| x as usize * cfg.communities / cfg.num_nodes;
        let intra = community_stream(&cfg)
            .filter(|&(u, v)| comm(u) == comm(v))
            .count();
        // intra_prob 0.9 plus the 1/k of cross edges landing home.
        assert!(
            intra as f64 > 0.8 * cfg.num_edges as f64,
            "expected mostly intra-community edges, got {intra}/5000"
        );
    }

    #[test]
    fn huge_streams_are_lazy() {
        // 20M nodes / 50M edges: constructing and peeking must be instant
        // and allocation-free apart from the iterator itself.
        let cfg = SynthConfig::new(20_000_000, 50_000_000, 7);
        let mut s = community_stream(&cfg);
        let first = s.next().unwrap();
        assert!((first.0 as usize) < cfg.num_nodes);
        assert_eq!(s.size_hint().0, 49_999_999);
    }

    #[test]
    fn timed_stream_matches_untimed_with_monotonic_clock() {
        let cfg = small();
        let untimed: Vec<_> = community_stream(&cfg).collect();
        let mut s = community_stream(&cfg);
        let mut last_t = 0u64;
        for want in &untimed {
            let e = s.next_timed().unwrap();
            assert_eq!((e.src, e.dst), *want, "timestamping must not perturb edges");
            assert!(e.t > last_t, "clock must be strictly monotonic here");
            last_t = e.t;
        }
        assert!(s.next_timed().is_none());
    }

    #[test]
    fn timed_batches_strip_to_untimed_batches() {
        let cfg = small();
        let mut a = UpdateStream::new(&cfg, 0.3, 1024);
        let mut b = UpdateStream::new(&cfg, 0.3, 1024);
        let mut last_t = 0u64;
        loop {
            match (a.next_batch(256), b.next_timed_batch(256)) {
                (None, None) => break,
                (Some((adds, dels)), Some(timed)) => {
                    assert_eq!(
                        adds,
                        timed
                            .adds
                            .iter()
                            .map(|e| (e.src, e.dst))
                            .collect::<Vec<_>>()
                    );
                    assert_eq!(dels, timed.dels);
                    for e in &timed.adds {
                        assert!(e.t >= last_t);
                        last_t = e.t;
                    }
                }
                (x, y) => panic!("streams desynced: {x:?} vs {:?}", y.is_some()),
            }
        }
    }

    #[test]
    fn fraud_stream_is_replayable_with_bursts() {
        let cfg = FraudConfig::new(2000, 20_000, 9);
        let a: Vec<_> = fraud_stream(&cfg).collect();
        let b: Vec<_> = fraud_stream(&cfg).collect();
        assert_eq!(a, b, "same config must replay bitwise-identically");
        assert_eq!(a.len(), 20_000);
        let fraud = a.iter().filter(|e| e.fraud).count();
        assert!(
            fraud > 100 && fraud < a.len() / 2,
            "expected a minority of fraud events, got {fraud}/20000"
        );
        let mut last_t = 0u64;
        for e in &a {
            assert!(e.edge.t >= last_t, "timestamps must be non-decreasing");
            last_t = e.edge.t;
            assert_ne!(e.edge.src, e.edge.dst, "no self-loops");
            assert!((e.edge.src as usize) < cfg.num_nodes);
            assert!((e.edge.dst as usize) < cfg.num_nodes);
            if e.fraud {
                let ring_base = (cfg.num_nodes - cfg.fraud_nodes) as u32;
                assert!(e.edge.src >= ring_base, "burst src must be in the ring");
            }
        }
    }

    #[test]
    fn fraud_bursts_are_fast_and_background_is_slow() {
        let cfg = FraudConfig::new(2000, 50_000, 3);
        let events: Vec<_> = fraud_stream(&cfg).collect();
        let (mut fraud_dt, mut fraud_n, mut bg_dt, mut bg_n) = (0u64, 0u64, 0u64, 0u64);
        for w in events.windows(2) {
            let dt = w[1].edge.t - w[0].edge.t;
            if w[1].fraud {
                fraud_dt += dt;
                fraud_n += 1;
            } else {
                bg_dt += dt;
                bg_n += 1;
            }
        }
        assert!(fraud_n > 0 && bg_n > 0);
        let fraud_mean = fraud_dt as f64 / fraud_n as f64;
        let bg_mean = bg_dt as f64 / bg_n as f64;
        assert!(
            fraud_mean * 3.0 < bg_mean,
            "burst velocity must dominate: fraud {fraud_mean:.2} vs background {bg_mean:.2}"
        );
    }

    #[test]
    fn update_stream_deletes_only_prior_insertions() {
        let cfg = small();
        let mut inserted = std::collections::HashSet::new();
        let mut us = UpdateStream::new(&cfg, 0.3, 1024);
        let mut batches = 0;
        while let Some((adds, dels)) = us.next_batch(256) {
            for d in &dels {
                assert!(inserted.contains(d), "deletion {d:?} never inserted");
            }
            for a in adds {
                inserted.insert(a);
            }
            batches += 1;
        }
        assert_eq!(batches, 5000usize.div_ceil(256));
    }
}
