//! Dynamic (temporal-network) dataset generators.
//!
//! The paper's five dynamic datasets are SNAP-style temporal edge lists
//! (who-talks-to-whom with timestamps). The evaluation pipeline turns them
//! into DTDGs with the sliding-window snapshot builder
//! (`DtdgSource::from_temporal_edges`). Our generators emit time-ordered
//! edge streams with the right node/edge counts and the heavy-tailed
//! degree distribution of interaction networks: endpoints are drawn from a
//! power-law over node ranks, and the active node set grows over "time"
//! like a real community does.
//!
//! Every generator takes a `scale` divisor so tests and quick benchmarks
//! can run the same dataset at 1/100th size without changing its shape.

use crate::info;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A time-ordered temporal edge list.
pub struct TemporalEdgeList {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub num_nodes: usize,
    /// Edges in (simulated) time order.
    pub edges: Vec<(u32, u32)>,
}

/// Draws a node id with a power-law rank distribution over `0..active`
/// (low ids are "old, popular" nodes — the SNAP networks' hubs).
fn powerlaw_node(rng: &mut ChaCha8Rng, active: u32, exponent: f64) -> u32 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let r = (active as f64 * u.powf(exponent)) as u32;
    r.min(active - 1)
}

/// Loads (generates) a dynamic dataset at `1/scale` of its Table II size.
pub fn load_dynamic(name: &str, scale: usize) -> TemporalEdgeList {
    assert!(scale >= 1);
    let meta = info(name);
    let n = (meta.num_nodes / scale).max(16);
    let m = (meta.num_edges / scale).max(64);
    let mut rng = ChaCha8Rng::seed_from_u64(name.bytes().fold(0xdd11_u64, |a, b| {
        a.wrapping_mul(167).wrapping_add(b as u64)
    }));
    // Heavier tail for the Q&A networks (few very active answerers);
    // flatter for wiki-talk / reddit.
    let exponent = match meta.code {
        "MO" | "SO" | "SU" => 2.5,
        _ => 1.8,
    };
    let mut edges = Vec::with_capacity(m);
    for i in 0..m {
        // Active community grows from 25% to 100% over the stream.
        let frac = 0.25 + 0.75 * (i as f64 / m as f64);
        let active = ((n as f64 * frac) as u32).max(2);
        let mut u = powerlaw_node(&mut rng, active, exponent);
        let mut v = powerlaw_node(&mut rng, active, exponent);
        if u == v {
            v = (v + 1 + rng.gen_range(0..active - 1)) % active;
        }
        // Interaction direction: newer nodes tend to address older hubs.
        if rng.gen_bool(0.6) && v > u {
            std::mem::swap(&mut u, &mut v);
        }
        edges.push((u, v));
    }
    TemporalEdgeList {
        name: name.to_string(),
        num_nodes: n,
        edges,
    }
}

impl TemporalEdgeList {
    /// Number of temporal edge events.
    pub fn num_events(&self) -> usize {
        self.edges.len()
    }

    /// Distinct edges (the structural edge count of the union graph).
    pub fn distinct_edges(&self) -> usize {
        let set: std::collections::HashSet<(u32, u32)> = self.edges.iter().copied().collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_dyngraph::DtdgSource;

    #[test]
    fn scaled_sizes_match_table2() {
        let d = load_dynamic("sx-mathoverflow", 100);
        assert_eq!(d.num_nodes, 240);
        assert_eq!(d.num_events(), 5060);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load_dynamic("reddit-title", 200);
        let b = load_dynamic("reddit-title", 200);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let d = load_dynamic("sx-superuser", 100);
        let mut deg = vec![0usize; d.num_nodes];
        for &(u, v) in &d.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = deg.iter().sum();
        let top10: usize = deg.iter().take(d.num_nodes / 10).sum();
        assert!(
            top10 as f64 > 0.5 * total as f64,
            "top 10% of nodes should carry most interactions ({top10}/{total})"
        );
    }

    #[test]
    fn edges_stay_in_range_and_have_no_self_loops() {
        let d = load_dynamic("wiki-talk-temporal", 500);
        for &(u, v) in &d.edges {
            assert!((u as usize) < d.num_nodes && (v as usize) < d.num_nodes);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn windowed_snapshots_have_bounded_churn() {
        // End-to-end with the paper's preprocessing: consecutive snapshots
        // differ by less than the requested percentage.
        let d = load_dynamic("sx-mathoverflow", 200);
        let src = DtdgSource::from_temporal_edges(d.num_nodes, &d.edges, 10.0);
        assert!(src.num_timestamps() >= 3);
        for (diff, snap) in src.diffs().iter().zip(&src.snapshots) {
            let pct = 100.0 * diff.len() as f64 / snap.len().max(1) as f64;
            assert!(pct < 25.0, "churn {pct}% too high");
        }
    }

    #[test]
    fn activity_grows_over_time() {
        let d = load_dynamic("sx-stackoverflow", 500);
        let m = d.edges.len();
        let early_max = d.edges[..m / 10]
            .iter()
            .map(|&(u, v)| u.max(v))
            .max()
            .unwrap();
        let late_max = d.edges[m - m / 10..]
            .iter()
            .map(|&(u, v)| u.max(v))
            .max()
            .unwrap();
        assert!(
            late_max > early_max,
            "node set should grow: {early_max} vs {late_max}"
        );
    }
}
