//! # stgraph-datasets
//!
//! Seeded synthetic generators reproducing the *shape* of the ten
//! benchmark datasets in the paper's Table II — five static-temporal
//! signal datasets (PyG-T's WikiMath, Windmill, Chickenpox, Montevideo,
//! PedalMe) and five dynamic (SNAP temporal networks). We have no network
//! access; what drives every figure is the datasets' node/edge counts,
//! density, temporal length and churn, all of which the generators match
//! (see DESIGN.md for the substitution argument).

#![warn(missing_docs)]

pub mod dynamic;
pub mod io;
pub mod static_temporal;
pub mod synth;

pub use dynamic::{load_dynamic, TemporalEdgeList};
pub use io::{read_signal_csv, read_snap_temporal, write_snap_temporal};
pub use static_temporal::{load_static, StaticTemporalDataset};
pub use synth::{
    community_stream, fraud_stream, EdgeStream, FraudConfig, FraudEvent, FraudStream, SynthConfig,
    TimedEdge, TimedUpdateBatch, UpdateBatch, UpdateStream,
};

/// The one seeding convention every binary shares: an explicit `--seed`
/// flag wins, else the `STGRAPH_SEED` environment variable, else 42 — so a
/// CTDG run and a DTDG run are made reproducible the same way. Malformed
/// `STGRAPH_SEED` values are rejected loudly rather than silently ignored:
/// a typo'd seed that falls back to the default would *look* reproducible
/// while reproducing the wrong run.
pub fn resolve_seed(cli: Option<u64>) -> u64 {
    if let Some(s) = cli {
        return s;
    }
    match std::env::var("STGRAPH_SEED") {
        Ok(v) if !v.is_empty() => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid STGRAPH_SEED '{v}' (expected u64)");
            std::process::exit(2);
        }),
        _ => 42,
    }
}

/// Whether a dataset is static-temporal or a DTDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Fixed structure, time-varying signals (Definition II.1).
    StaticTemporal,
    /// Discrete-time dynamic graph (Definition II.2).
    Dynamic,
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name (also the loader key).
    pub name: &'static str,
    /// Short code used in the paper's plots (WVM, WO, ...).
    pub code: &'static str,
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of edges (static) or temporal edge events (dynamic).
    pub num_edges: usize,
    /// Static-temporal or dynamic.
    pub kind: GraphKind,
}

/// The Table II inventory (paper §VII). Edge counts are the paper's, with
/// the same "pruned to the first 2 million edges" treatment for
/// wiki-talk-temporal and sx-stackoverflow.
pub fn table2() -> Vec<DatasetInfo> {
    use GraphKind::*;
    vec![
        DatasetInfo {
            name: "wikivital-mathematics",
            code: "WVM",
            num_nodes: 1068,
            num_edges: 27_079,
            kind: StaticTemporal,
        },
        DatasetInfo {
            name: "windmill-output",
            code: "WO",
            num_nodes: 319,
            num_edges: 101_761,
            kind: StaticTemporal,
        },
        DatasetInfo {
            name: "hungary-chickenpox",
            code: "HC",
            num_nodes: 20,
            num_edges: 102,
            kind: StaticTemporal,
        },
        DatasetInfo {
            name: "montevideo-bus",
            code: "MB",
            num_nodes: 675,
            num_edges: 690,
            kind: StaticTemporal,
        },
        DatasetInfo {
            name: "pedal-me",
            code: "PM",
            num_nodes: 15,
            num_edges: 225,
            kind: StaticTemporal,
        },
        DatasetInfo {
            name: "wiki-talk-temporal",
            code: "WT",
            num_nodes: 120_000,
            num_edges: 2_000_000,
            kind: Dynamic,
        },
        DatasetInfo {
            name: "sx-superuser",
            code: "SU",
            num_nodes: 194_000,
            num_edges: 1_443_000,
            kind: Dynamic,
        },
        DatasetInfo {
            name: "sx-stackoverflow",
            code: "SO",
            num_nodes: 194_000,
            num_edges: 2_000_000,
            kind: Dynamic,
        },
        DatasetInfo {
            name: "sx-mathoverflow",
            code: "MO",
            num_nodes: 24_000,
            num_edges: 506_000,
            kind: Dynamic,
        },
        DatasetInfo {
            name: "reddit-title",
            code: "RT",
            num_nodes: 55_000,
            num_edges: 858_000,
            kind: Dynamic,
        },
    ]
}

/// Looks up a Table II entry by name or code.
pub fn info(name: &str) -> DatasetInfo {
    table2()
        .into_iter()
        .find(|d| d.name == name || d.code == name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_ten_rows_split_five_five() {
        let t = table2();
        assert_eq!(t.len(), 10);
        assert_eq!(
            t.iter()
                .filter(|d| d.kind == GraphKind::StaticTemporal)
                .count(),
            5
        );
        assert_eq!(t.iter().filter(|d| d.kind == GraphKind::Dynamic).count(), 5);
    }

    #[test]
    fn lookup_by_name_and_code() {
        assert_eq!(info("hungary-chickenpox").code, "HC");
        assert_eq!(info("WO").num_nodes, 319);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn lookup_unknown_panics() {
        info("imaginary");
    }
}
