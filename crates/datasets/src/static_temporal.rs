//! Static-temporal dataset generators.
//!
//! The PyG-T datasets the paper benchmarks are graphs with a scalar signal
//! per node per timestamp (page visits, energy output, case counts, ...);
//! the learning task is node regression with the last `lags` values as the
//! feature vector — the formulation PyG-T's `StaticGraphTemporalSignal`
//! uses and the paper's Figures 5–6 sweep (`feature size` = `lags`).
//!
//! Structure generation matches each dataset's Table II shape:
//! * WO and PM are (nearly) complete graphs — `m ≈ n²`, the "dense" cases
//!   whose memory gap Figure 6 highlights;
//! * WVM, HC are sparse random graphs at the reported density;
//! * MB is an ultra-sparse transit network (`m ≈ n`).
//!
//! Signals are seasonal AR processes diffused over the graph so the
//! regression task is genuinely learnable by a TGCN.

use crate::info;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph_graph::base::StaticGraph;
use stgraph_tensor::Tensor;

/// A loaded static-temporal dataset.
pub struct StaticTemporalDataset {
    /// Dataset name.
    pub name: String,
    /// The fixed graph.
    pub graph: StaticGraph,
    /// `T` feature tensors `[n, lags]`.
    pub features: Vec<Tensor>,
    /// `T` target tensors `[n, 1]`.
    pub targets: Vec<Tensor>,
    /// Number of feature lags (the paper's "feature size").
    pub lags: usize,
}

impl StaticTemporalDataset {
    /// Number of supervised timestamps.
    pub fn num_timestamps(&self) -> usize {
        self.features.len()
    }
}

/// Deterministic seed per dataset name.
fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0x5742_9af1_u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(b as u64)
    })
}

/// Generates the fixed edge structure for a static dataset.
fn structure(name: &str, rng: &mut ChaCha8Rng) -> (usize, Vec<(u32, u32)>) {
    let meta = info(name);
    let n = meta.num_nodes;
    let m = meta.num_edges;
    let mut edges = Vec::with_capacity(m);
    if m + n >= n * n {
        // Complete graph with self-loops (WO, PM).
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                edges.push((u, v));
            }
        }
        edges.truncate(m);
    } else {
        // Random sparse graph at the reported edge count, connected-ish via
        // a backbone ring so the diffusion signal spans the graph.
        let mut seen = std::collections::HashSet::with_capacity(m);
        for u in 0..n as u32 {
            let v = (u + 1) % n as u32;
            if seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        while edges.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
    }
    (n, edges)
}

/// Loads (generates) a static-temporal dataset.
///
/// * `lags` — feature-vector width (the paper sweeps 8..256);
/// * `num_timestamps` — supervised steps to emit (the real datasets have
///   77..17k; benchmarks pick what fits their budget).
pub fn load_static(name: &str, lags: usize, num_timestamps: usize) -> StaticTemporalDataset {
    assert!(lags >= 1 && num_timestamps >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed_for(name));
    let (n, edges) = structure(name, &mut rng);
    let graph = StaticGraph::new(n, edges);

    // Per-node seasonal parameters.
    let period: Vec<f32> = (0..n).map(|_| rng.gen_range(6.0..48.0)).collect();
    let phase: Vec<f32> = (0..n)
        .map(|_| rng.gen_range(0.0..std::f32::consts::TAU))
        .collect();
    let amp: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();

    // Raw signal: seasonal + AR(1) noise, then one diffusion step over the
    // graph (mean of in-neighbour signals) to couple nodes spatially.
    let total = num_timestamps + lags;
    let mut raw = vec![vec![0.0f32; n]; total];
    let mut ar = vec![0.0f32; n];
    for (t, row) in raw.iter_mut().enumerate() {
        for v in 0..n {
            ar[v] = 0.8 * ar[v] + 0.2 * rng.gen_range(-1.0..1.0f32);
            row[v] = amp[v] * (std::f32::consts::TAU * (t as f32 + phase[v]) / period[v]).sin()
                + 0.3 * ar[v];
        }
    }
    let snap = graph.snapshot().clone();
    for row in raw.iter_mut() {
        let before = row.clone();
        for v in 0..n {
            let mut acc = before[v];
            let mut cnt = 1.0f32;
            for (u, _) in snap.reverse_csr.iter_row(v) {
                acc += before[u as usize];
                cnt += 1.0;
            }
            row[v] = 0.5 * before[v] + 0.5 * acc / cnt;
        }
    }

    // Lagged features + next-step target.
    let mut features = Vec::with_capacity(num_timestamps);
    let mut targets = Vec::with_capacity(num_timestamps);
    for t in 0..num_timestamps {
        let mut x = vec![0.0f32; n * lags];
        for v in 0..n {
            for l in 0..lags {
                x[v * lags + l] = raw[t + l][v];
            }
        }
        features.push(Tensor::from_vec((n, lags), x));
        targets.push(Tensor::from_vec((n, 1), raw[t + lags].clone()));
    }

    StaticTemporalDataset {
        name: name.to_string(),
        graph,
        features,
        targets,
        lags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_graph::base::STGraphBase;

    #[test]
    fn chickenpox_matches_table2_shape() {
        let d = load_static("hungary-chickenpox", 4, 10);
        assert_eq!(d.graph.num_nodes(), 20);
        assert_eq!(d.graph.num_edges(), 102);
        assert_eq!(d.num_timestamps(), 10);
        assert_eq!(d.features[0].shape(), stgraph_tensor::Shape::Mat(20, 4));
        assert_eq!(d.targets[0].shape(), stgraph_tensor::Shape::Mat(20, 1));
    }

    #[test]
    fn windmill_is_complete_with_self_loops() {
        let d = load_static("windmill-output", 2, 2);
        assert_eq!(d.graph.num_nodes(), 319);
        assert_eq!(d.graph.num_edges(), 319 * 319);
        // Density ~1 — the "dense" end of Figure 6.
        assert!(d.graph.density() > 0.99);
    }

    #[test]
    fn montevideo_is_ultra_sparse() {
        let d = load_static("montevideo-bus", 2, 2);
        assert_eq!(d.graph.num_edges(), 690);
        assert!(d.graph.density() < 0.01);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load_static("pedal-me", 3, 5);
        let b = load_static("pedal-me", 3, 5);
        assert_eq!(a.graph.edges, b.graph.edges);
        for (x, y) in a.features.iter().zip(&b.features) {
            assert!(x.approx_eq(y, 0.0));
        }
    }

    #[test]
    fn lag_window_slides_by_one() {
        // Feature lag l at time t equals feature lag l-1 at time t+1.
        let d = load_static("hungary-chickenpox", 3, 6);
        for t in 0..5 {
            for v in 0..20 {
                assert_eq!(d.features[t].at(v, 1), d.features[t + 1].at(v, 0));
            }
        }
        // Target at t is the next raw value: equals feature lag `lags-1`
        // at t+1.
        for t in 0..5 {
            for v in 0..20 {
                assert_eq!(d.targets[t].at(v, 0), d.features[t + 1].at(v, 2));
            }
        }
    }

    #[test]
    fn signal_is_bounded() {
        let d = load_static("wikivital-mathematics", 2, 4);
        for x in &d.features {
            assert!(x.data().iter().all(|v| v.abs() < 3.0));
        }
    }
}
