//! File loaders for *real* datasets, for users who have them on disk:
//!
//! * [`read_snap_temporal`] — SNAP-format temporal edge lists
//!   (`src dst timestamp` per line, `#` comments), the format of
//!   wiki-talk-temporal / sx-* used by the paper; nodes are re-labelled
//!   densely and edges sorted by timestamp, and the same
//!   "prune to the first N edges" treatment as Table II is available.
//! * [`read_signal_csv`] — node-signal CSV (rows = timestamps, columns =
//!   nodes), the layout PyG-T's chickenpox/windmill datasets ship in;
//!   combined with an edge list it yields a [`StaticTemporalDataset`].
//! * [`write_snap_temporal`] — the inverse, so generated datasets can be
//!   exported for other tools.

use crate::dynamic::TemporalEdgeList;
use crate::static_temporal::StaticTemporalDataset;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use stgraph_graph::base::StaticGraph;
use stgraph_tensor::Tensor;

/// Reads a SNAP temporal edge list. Lines are `src dst timestamp`
/// (whitespace-separated); `#` lines are comments. Node ids are relabelled
/// to `0..n` densely; edges are sorted by timestamp (stable) and truncated
/// to `max_edges` if given.
pub fn read_snap_temporal(
    path: &Path,
    max_edges: Option<usize>,
) -> std::io::Result<TemporalEdgeList> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut events: Vec<(i64, u64, u64)> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(s), Some(d), Some(t)) = (it.next(), it.next(), it.next()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed line: '{line}'"),
            ));
        };
        let parse = |x: &str| {
            x.parse::<u64>().map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{x}: {e}"))
            })
        };
        let ts = t.parse::<i64>().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{t}: {e}"))
        })?;
        events.push((ts, parse(s)?, parse(d)?));
    }
    events.sort_by_key(|&(t, _, _)| t);
    if let Some(m) = max_edges {
        events.truncate(m);
    }
    let mut relabel: HashMap<u64, u32> = HashMap::new();
    let mut edges = Vec::with_capacity(events.len());
    for (_, s, d) in events {
        let n = relabel.len() as u32;
        let si = *relabel.entry(s).or_insert(n);
        let n = relabel.len() as u32;
        let di = *relabel.entry(d).or_insert(n);
        edges.push((si, di));
    }
    Ok(TemporalEdgeList {
        name: path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
        num_nodes: relabel.len(),
        edges,
    })
}

/// Writes a temporal edge list in SNAP format (timestamps are the event
/// indices).
pub fn write_snap_temporal(path: &Path, list: &TemporalEdgeList) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "# {} nodes={} events={}",
        list.name,
        list.num_nodes,
        list.edges.len()
    )?;
    for (i, &(s, d)) in list.edges.iter().enumerate() {
        writeln!(f, "{s} {d} {i}")?;
    }
    Ok(())
}

/// Reads a node-signal CSV (header optional; rows = timestamps, columns =
/// nodes) plus an edge list, producing a static-temporal dataset with
/// `lags` lagged features per node, exactly like the synthetic loader.
pub fn read_signal_csv(
    csv_path: &Path,
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
    lags: usize,
) -> std::io::Result<StaticTemporalDataset> {
    let file = std::fs::File::open(csv_path)?;
    let reader = BufReader::new(file);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let values: Result<Vec<f32>, _> = line.split(',').map(|v| v.trim().parse()).collect();
        match values {
            Ok(v) => {
                if v.len() != num_nodes {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "line {}: {} columns, expected {num_nodes}",
                            lineno + 1,
                            v.len()
                        ),
                    ));
                }
                rows.push(v);
            }
            Err(_) if lineno == 0 => continue, // header
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                ))
            }
        }
    }
    if rows.len() <= lags {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} timestamps <= {lags} lags", rows.len()),
        ));
    }
    let t_total = rows.len() - lags;
    let mut features = Vec::with_capacity(t_total);
    let mut targets = Vec::with_capacity(t_total);
    for t in 0..t_total {
        let mut x = vec![0.0f32; num_nodes * lags];
        for v in 0..num_nodes {
            for l in 0..lags {
                x[v * lags + l] = rows[t + l][v];
            }
        }
        features.push(Tensor::from_vec((num_nodes, lags), x));
        targets.push(Tensor::from_vec((num_nodes, 1), rows[t + lags].clone()));
    }
    Ok(StaticTemporalDataset {
        name: csv_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
        graph: StaticGraph::new(num_nodes, edges),
        features,
        targets,
        lags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::load_dynamic;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("stgraph-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn snap_roundtrip() {
        let list = load_dynamic("sx-mathoverflow", 500);
        let path = tmp("roundtrip.txt");
        write_snap_temporal(&path, &list).unwrap();
        let back = read_snap_temporal(&path, None).unwrap();
        // Relabelling is order-of-appearance so structure is isomorphic;
        // event count and node count must match exactly.
        assert_eq!(back.edges.len(), list.edges.len());
        assert!(back.num_nodes <= list.num_nodes);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn snap_parses_comments_sorts_and_prunes() {
        let path = tmp("snap.txt");
        std::fs::write(&path, "# comment\n10 20 300\n30 10 100\n20 30 200\n").unwrap();
        let list = read_snap_temporal(&path, Some(2)).unwrap();
        // Sorted by timestamp: (30,10), (20,30); pruned to 2; relabelled
        // densely in order of appearance: 30->0, 10->1, 20->2, 30->... so
        // edges are (0,1), (2,0).
        assert_eq!(list.edges, vec![(0, 1), (2, 0)]);
        assert_eq!(list.num_nodes, 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn snap_rejects_malformed_lines() {
        let path = tmp("bad.txt");
        std::fs::write(&path, "1 2\n").unwrap();
        assert!(read_snap_temporal(&path, None).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_loader_builds_lagged_dataset() {
        let path = tmp("signal.csv");
        std::fs::write(&path, "a,b,c\n1,2,3\n4,5,6\n7,8,9\n10,11,12\n").unwrap();
        let ds = read_signal_csv(&path, 3, vec![(0, 1), (1, 2)], 2).unwrap();
        assert_eq!(ds.num_timestamps(), 2);
        assert_eq!(ds.lags, 2);
        // t=0 features: node0 lags [1, 4]; target = 7.
        assert_eq!(ds.features[0].at(0, 0), 1.0);
        assert_eq!(ds.features[0].at(0, 1), 4.0);
        assert_eq!(ds.targets[0].at(0, 0), 7.0);
        // Slide property.
        assert_eq!(ds.features[1].at(2, 0), 6.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_bad_column_count() {
        let path = tmp("badcsv.csv");
        std::fs::write(&path, "1,2\n3,4,5\n").unwrap();
        assert!(read_signal_csv(&path, 2, vec![], 1).is_err());
        std::fs::remove_file(path).ok();
    }
}
