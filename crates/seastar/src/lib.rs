//! # stgraph-seastar
//!
//! The vertex-centric programming model STGraph extends (§IV): programs are
//! traced into an IR DAG ([`ir::ProgramBuilder`]), optimised (dead-code
//! elimination; edge-space fusion is structural — edge values never
//! materialise), auto-differentiated ([`autodiff::differentiate`], which
//! also derives the State-Stack saved set), and executed as fused
//! vertex-parallel kernels over degree-sorted CSRs ([`exec::execute`]).

#![warn(missing_docs)]

pub mod autodiff;
pub mod exec;
pub mod ir;

pub use autodiff::{differentiate, BackwardPlan, NodeSave};
pub use exec::{execute, ExecOutput};
pub use ir::{gat_aggregation, gcn_aggregation, Program, ProgramBuilder, Val};
