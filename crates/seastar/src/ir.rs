//! The vertex-centric intermediate representation (IR).
//!
//! Seastar traces a user's vertex-centric function into a DAG, optimises
//! it, auto-differentiates it, and generates forward/backward CUDA kernels
//! (§IV). We reproduce that pipeline: [`ProgramBuilder`] is the tracing
//! API, [`Program`] the DAG, `autodiff` derives the backward program, and
//! `exec` plays the role of kernel generation — edge-space values are
//! *never materialised* as tensors; they live in per-thread registers
//! inside the fused vertex-parallel aggregation loops.
//!
//! Values live in one of two [`Space`]s:
//! * **Node** values are `[num_nodes, width]` tensors;
//! * **Edge** values are virtual `[num_edges, width]` quantities produced
//!   by `gather_*` and consumed by `agg_*` (or explicitly materialised when
//!   the backward program needs them saved).

/// Which space a value lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// One row per vertex.
    Node,
    /// One (virtual) row per edge.
    Edge,
}

/// Node id within a [`Program`].
pub type Id = usize;

/// IR operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Differentiable per-node input tensor (slot index).
    NodeInput(usize),
    /// Non-differentiable per-node constant tensor (slot index) — degree
    /// norms, saved activations in backward programs, upstream gradients.
    NodeConst(usize),
    /// Non-differentiable per-edge constant tensor (slot index) — edge
    /// weights or saved edge activations in backward programs.
    EdgeConst(usize),
    /// Edge value: the source endpoint's node value.
    GatherSrc(Id),
    /// Edge value: the destination endpoint's node value.
    GatherDst(Id),
    /// Node value: sum of an edge value over each vertex's in-edges
    /// (executed vertex-parallel over the reverse CSR — the forward pass).
    AggSumDst(Id),
    /// Node value: sum of an edge value over each vertex's out-edges
    /// (executed over the forward CSR — the backward pass direction).
    AggSumSrc(Id),
    /// Node value: max of an edge value over in-edges (0 for isolated
    /// vertices). Gradient is *stopped* here: the only sanctioned use is
    /// the shift inside edge-softmax, where the shift provably cancels.
    AggMaxDst(Id),
    /// Elementwise sum.
    Add(Id, Id),
    /// Elementwise difference.
    Sub(Id, Id),
    /// Elementwise product (width-1 operands broadcast).
    Mul(Id, Id),
    /// Elementwise quotient (width-1 operands broadcast).
    Div(Id, Id),
    /// Multiply by a compile-time scalar.
    Scale(Id, f32),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Id, f32),
    /// `grad * leaky_relu'(x)` — emitted by autodiff.
    LeakyReluGrad(Id, Id, f32),
    /// Elementwise exponential.
    Exp(Id),
    /// Logistic sigmoid.
    Sigmoid(Id),
    /// Hyperbolic tangent.
    Tanh(Id),
    /// Sum across the feature dimension: `[*, w] -> [*, 1]`.
    ReduceFeat(Id),
    /// Repeat a width-1 value across `w` features.
    BroadcastFeat(Id, usize),
    /// Node value: dense matmul by the constant matrix in the given
    /// mat-const slot (`[n, k] @ [k, m] -> [n, m]`). The matrix is a
    /// *program* constant (a layer weight), not a per-node tensor.
    MatmulConst(Id, usize),
    /// Node value: dense matmul by the *transpose* of the mat-const slot
    /// (`[n, m] @ [k, m]ᵀ -> [n, k]`) — emitted by autodiff as the operand
    /// gradient of [`Op::MatmulConst`].
    MatmulConstT(Id, usize),
    /// Fused aggregate-into-GEMM over in-edges: semantically
    /// `MatmulConst(AggSumDst(e), slot)`, executed as one pass over the
    /// adjacency that accumulates each edge value into a per-vertex scratch
    /// row and runs the GEMM row kernel straight into the output — the
    /// `[n, k]` aggregate tensor is never materialised. Produced only by
    /// [`Program::fuse_agg_matmul`].
    AggMatmulDst(Id, usize),
    /// Fused aggregate-into-GEMM over out-edges (the `AggSumSrc` form).
    AggMatmulSrc(Id, usize),
}

impl Op {
    /// Ids of this op's operands.
    pub fn operands(&self) -> Vec<Id> {
        match *self {
            Op::NodeInput(_) | Op::NodeConst(_) | Op::EdgeConst(_) => vec![],
            Op::GatherSrc(a)
            | Op::GatherDst(a)
            | Op::AggSumDst(a)
            | Op::AggSumSrc(a)
            | Op::AggMaxDst(a)
            | Op::Scale(a, _)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::ReduceFeat(a)
            | Op::BroadcastFeat(a, _)
            | Op::MatmulConst(a, _)
            | Op::MatmulConstT(a, _)
            | Op::AggMatmulDst(a, _)
            | Op::AggMatmulSrc(a, _) => vec![a],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::LeakyReluGrad(a, b, _) => vec![a, b],
        }
    }
}

/// One IR node: an op plus its inferred space and feature width.
#[derive(Debug, Clone)]
pub struct IrNode {
    /// The operation.
    pub op: Op,
    /// Node or edge space.
    pub space: Space,
    /// Feature width of the produced value.
    pub width: usize,
}

/// A traced vertex-centric program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Nodes in topological (creation) order.
    pub nodes: Vec<IrNode>,
    /// Output node ids (must be node-space).
    pub outputs: Vec<Id>,
    /// Feature width of each differentiable input slot.
    pub input_widths: Vec<usize>,
    /// Feature width of each node-constant slot.
    pub node_const_widths: Vec<usize>,
    /// Feature width of each edge-constant slot.
    pub edge_const_widths: Vec<usize>,
    /// `(rows, cols)` of each mat-const slot — the dense weight matrices
    /// referenced by [`Op::MatmulConst`] and the fused aggregation ops.
    pub mat_const_dims: Vec<(usize, usize)>,
}

impl Program {
    /// The node for `id`.
    pub fn node(&self, id: Id) -> &IrNode {
        &self.nodes[id]
    }

    /// Number of IR nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the program has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Dead-code elimination: drops nodes unreachable from the outputs and
    /// remaps ids. Input/const slot indices are preserved (slots may become
    /// unused but keep their position so callers' argument lists still
    /// line up).
    pub fn eliminate_dead_code(&self) -> Program {
        self.dce_with_remap().0
    }

    /// [`Program::eliminate_dead_code`] returning also the old-id → new-id
    /// table (`usize::MAX` for removed nodes), so passes that hold external
    /// id references (the backward plan's saved set) can fix them up.
    fn dce_with_remap(&self) -> (Program, Vec<Id>) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<Id> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if live[id] {
                continue;
            }
            live[id] = true;
            stack.extend(self.nodes[id].op.operands());
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut nodes = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if !live[id] {
                continue;
            }
            let mut op = node.op.clone();
            for operand in op_operands_mut(&mut op) {
                *operand = remap[*operand];
            }
            remap[id] = nodes.len();
            nodes.push(IrNode {
                op,
                space: node.space,
                width: node.width,
            });
        }
        let prog = Program {
            nodes,
            outputs: self.outputs.iter().map(|&o| remap[o]).collect(),
            input_widths: self.input_widths.clone(),
            node_const_widths: self.node_const_widths.clone(),
            edge_const_widths: self.edge_const_widths.clone(),
            mat_const_dims: self.mat_const_dims.clone(),
        };
        (prog, remap)
    }

    /// Aggregation-into-GEMM fusion: rewrites `MatmulConst(a, s)` into the
    /// fused `AggMatmul{Dst,Src}(e, s)` whenever `a` is an `AggSum{Dst,Src}(e)`
    /// whose *only* consumer is that matmul and whose id is not `protected`
    /// (the backward plan's saved set — a protected aggregate must still
    /// materialise). The elided aggregate node is then dead-code-eliminated,
    /// so the `[n, k]` tensor between the adjacency pass and the GEMM is
    /// never allocated. Run after [`differentiate`](crate::differentiate) —
    /// the backward program recomputes matmul operands instead of loading
    /// them, so fusion never changes gradients.
    ///
    /// Returns the fused program and the old-id → new-id remap (apply it to
    /// any retained save-id references).
    pub fn fuse_agg_matmul(&self, protected: &[Id]) -> (Program, Vec<Id>) {
        let mut uses = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for o in node.op.operands() {
                uses[o] += 1;
            }
        }
        for &o in &self.outputs {
            uses[o] += 1;
        }
        let mut out = self.clone();
        for id in 0..out.nodes.len() {
            let Op::MatmulConst(a, s) = out.nodes[id].op else {
                continue;
            };
            if uses[a] != 1 || protected.contains(&a) {
                continue;
            }
            match self.nodes[a].op {
                Op::AggSumDst(e) => out.nodes[id].op = Op::AggMatmulDst(e, s),
                Op::AggSumSrc(e) => out.nodes[id].op = Op::AggMatmulSrc(e, s),
                _ => {}
            }
        }
        out.dce_with_remap()
    }

    /// Common-subexpression elimination: structurally identical nodes are
    /// merged (autodiff's value-recomputation rules routinely emit
    /// duplicate gathers). Scalar constants are compared bitwise. Returns
    /// the deduplicated program; run DCE afterwards to drop the husks.
    pub fn eliminate_common_subexpressions(&self) -> Program {
        use std::collections::HashMap;
        // Key: op discriminant + remapped operands + scalar bits.
        fn key(op: &Op) -> (u8, Vec<usize>, u32) {
            match *op {
                Op::NodeInput(s) => (0, vec![s], 0),
                Op::NodeConst(s) => (1, vec![s], 0),
                Op::EdgeConst(s) => (2, vec![s], 0),
                Op::GatherSrc(a) => (3, vec![a], 0),
                Op::GatherDst(a) => (4, vec![a], 0),
                Op::AggSumDst(a) => (5, vec![a], 0),
                Op::AggSumSrc(a) => (6, vec![a], 0),
                Op::AggMaxDst(a) => (7, vec![a], 0),
                Op::Add(a, b) => (8, vec![a, b], 0),
                Op::Sub(a, b) => (9, vec![a, b], 0),
                Op::Mul(a, b) => (10, vec![a, b], 0),
                Op::Div(a, b) => (11, vec![a, b], 0),
                Op::Scale(a, c) => (12, vec![a], c.to_bits()),
                Op::LeakyRelu(a, c) => (13, vec![a], c.to_bits()),
                Op::LeakyReluGrad(a, b, c) => (14, vec![a, b], c.to_bits()),
                Op::Exp(a) => (15, vec![a], 0),
                Op::ReduceFeat(a) => (16, vec![a], 0),
                Op::BroadcastFeat(a, w) => (17, vec![a, w], 0),
                Op::Sigmoid(a) => (18, vec![a], 0),
                Op::Tanh(a) => (19, vec![a], 0),
                Op::MatmulConst(a, s) => (20, vec![a, s], 0),
                Op::MatmulConstT(a, s) => (21, vec![a, s], 0),
                Op::AggMatmulDst(a, s) => (22, vec![a, s], 0),
                Op::AggMatmulSrc(a, s) => (23, vec![a, s], 0),
            }
        }
        let mut canon: HashMap<(u8, Vec<usize>, u32), Id> = HashMap::new();
        let mut remap: Vec<Id> = Vec::with_capacity(self.nodes.len());
        let mut out = self.clone();
        for (id, node) in self.nodes.iter().enumerate() {
            let mut op = node.op.clone();
            for operand in op_operands_mut(&mut op) {
                *operand = remap[*operand];
            }
            let k = key(&op);
            let canon_id = *canon.entry(k).or_insert(id);
            out.nodes[id].op = op;
            remap.push(canon_id);
        }
        for o in &mut out.outputs {
            *o = remap[*o];
        }
        out.eliminate_dead_code()
    }

    /// Ids of aggregation nodes (the kernel launch points), in order.
    /// Includes the fused aggregation-matmul nodes.
    pub fn aggregations(&self) -> Vec<Id> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                matches!(
                    n.op,
                    Op::AggSumDst(_)
                        | Op::AggSumSrc(_)
                        | Op::AggMaxDst(_)
                        | Op::AggMatmulDst(_, _)
                        | Op::AggMatmulSrc(_, _)
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

impl std::fmt::Display for Program {
    /// Pretty-prints the IR, one node per line, e.g.
    /// `%3: Edge[16] = GatherSrc(%2)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (id, node) in self.nodes.iter().enumerate() {
            let space = match node.space {
                Space::Node => "Node",
                Space::Edge => "Edge",
            };
            write!(f, "%{id}: {space}[{}] = ", node.width)?;
            match &node.op {
                Op::NodeInput(s) => writeln!(f, "NodeInput(slot {s})")?,
                Op::NodeConst(s) => writeln!(f, "NodeConst(slot {s})")?,
                Op::EdgeConst(s) => writeln!(f, "EdgeConst(slot {s})")?,
                Op::GatherSrc(a) => writeln!(f, "GatherSrc(%{a})")?,
                Op::GatherDst(a) => writeln!(f, "GatherDst(%{a})")?,
                Op::AggSumDst(a) => writeln!(f, "AggSumDst(%{a})")?,
                Op::AggSumSrc(a) => writeln!(f, "AggSumSrc(%{a})")?,
                Op::AggMaxDst(a) => writeln!(f, "AggMaxDst(%{a})")?,
                Op::Add(a, b) => writeln!(f, "Add(%{a}, %{b})")?,
                Op::Sub(a, b) => writeln!(f, "Sub(%{a}, %{b})")?,
                Op::Mul(a, b) => writeln!(f, "Mul(%{a}, %{b})")?,
                Op::Div(a, b) => writeln!(f, "Div(%{a}, %{b})")?,
                Op::Scale(a, c) => writeln!(f, "Scale(%{a}, {c})")?,
                Op::LeakyRelu(a, s) => writeln!(f, "LeakyRelu(%{a}, {s})")?,
                Op::LeakyReluGrad(g, x, s) => writeln!(f, "LeakyReluGrad(%{g}, %{x}, {s})")?,
                Op::Exp(a) => writeln!(f, "Exp(%{a})")?,
                Op::Sigmoid(a) => writeln!(f, "Sigmoid(%{a})")?,
                Op::Tanh(a) => writeln!(f, "Tanh(%{a})")?,
                Op::ReduceFeat(a) => writeln!(f, "ReduceFeat(%{a})")?,
                Op::BroadcastFeat(a, w) => writeln!(f, "BroadcastFeat(%{a}, {w})")?,
                Op::MatmulConst(a, s) => writeln!(f, "MatmulConst(%{a}, mat {s})")?,
                Op::MatmulConstT(a, s) => writeln!(f, "MatmulConstT(%{a}, mat {s})")?,
                Op::AggMatmulDst(a, s) => writeln!(f, "AggMatmulDst(%{a}, mat {s})")?,
                Op::AggMatmulSrc(a, s) => writeln!(f, "AggMatmulSrc(%{a}, mat {s})")?,
            }
        }
        let outs: Vec<String> = self.outputs.iter().map(|o| format!("%{o}")).collect();
        writeln!(f, "outputs: [{}]", outs.join(", "))
    }
}

pub(crate) fn op_operands_mut(op: &mut Op) -> Vec<&mut Id> {
    match op {
        Op::NodeInput(_) | Op::NodeConst(_) | Op::EdgeConst(_) => vec![],
        Op::GatherSrc(a)
        | Op::GatherDst(a)
        | Op::AggSumDst(a)
        | Op::AggSumSrc(a)
        | Op::AggMaxDst(a)
        | Op::Scale(a, _)
        | Op::LeakyRelu(a, _)
        | Op::Exp(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::ReduceFeat(a)
        | Op::BroadcastFeat(a, _)
        | Op::MatmulConst(a, _)
        | Op::MatmulConstT(a, _)
        | Op::AggMatmulDst(a, _)
        | Op::AggMatmulSrc(a, _) => vec![a],
        Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::Mul(a, b)
        | Op::Div(a, b)
        | Op::LeakyReluGrad(a, b, _) => {
            vec![a, b]
        }
    }
}

/// A handle to an IR value during tracing.
#[derive(Debug, Clone, Copy)]
pub struct Val {
    /// The node id.
    pub id: Id,
}

/// Builder for tracing vertex-centric programs.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            prog: Program::default(),
        }
    }

    fn push(&mut self, op: Op, space: Space, width: usize) -> Val {
        self.prog.nodes.push(IrNode { op, space, width });
        Val {
            id: self.prog.nodes.len() - 1,
        }
    }

    /// Emits a pre-formed node whose operand ids are already builder-local.
    /// Used by autodiff's operand-recomputation path, which re-plays
    /// forward subtrees into the backward program op by op.
    pub(crate) fn emit(&mut self, op: Op, space: Space, width: usize) -> Val {
        self.push(op, space, width)
    }

    fn node(&self, v: Val) -> &IrNode {
        &self.prog.nodes[v.id]
    }

    /// Declares a differentiable per-node input of the given width.
    pub fn input(&mut self, width: usize) -> Val {
        let slot = self.prog.input_widths.len();
        self.prog.input_widths.push(width);
        self.push(Op::NodeInput(slot), Space::Node, width)
    }

    /// Declares a non-differentiable per-node constant (e.g. degree norms).
    pub fn node_const(&mut self, width: usize) -> Val {
        let slot = self.prog.node_const_widths.len();
        self.prog.node_const_widths.push(width);
        self.push(Op::NodeConst(slot), Space::Node, width)
    }

    /// Declares a non-differentiable per-edge constant (e.g. edge weights).
    pub fn edge_const(&mut self, width: usize) -> Val {
        let slot = self.prog.edge_const_widths.len();
        self.prog.edge_const_widths.push(width);
        self.push(Op::EdgeConst(slot), Space::Edge, width)
    }

    /// Declares a `[rows, cols]` constant matrix slot (a layer weight).
    /// Unlike input/const declarations this returns the slot index, not a
    /// [`Val`]: the matrix is not a per-node value, it only appears as the
    /// second argument of [`ProgramBuilder::matmul_const`].
    pub fn mat_const(&mut self, rows: usize, cols: usize) -> usize {
        self.prog.mat_const_dims.push((rows, cols));
        self.prog.mat_const_dims.len() - 1
    }

    /// Node value: dense matmul by mat-const `slot` (`[n, k] @ [k, m]`).
    pub fn matmul_const(&mut self, a: Val, slot: usize) -> Val {
        let (rows, cols) = self.prog.mat_const_dims[slot];
        let n = self.node(a);
        assert_eq!(n.space, Space::Node, "matmul_const takes a node value");
        assert_eq!(n.width, rows, "matmul_const: operand width vs matrix rows");
        self.push(Op::MatmulConst(a.id, slot), Space::Node, cols)
    }

    /// Node value: dense matmul by the transpose of mat-const `slot`
    /// (`[n, m] @ [k, m]ᵀ` — the adjoint of [`ProgramBuilder::matmul_const`]).
    pub fn matmul_const_t(&mut self, a: Val, slot: usize) -> Val {
        let (rows, cols) = self.prog.mat_const_dims[slot];
        let n = self.node(a);
        assert_eq!(n.space, Space::Node, "matmul_const_t takes a node value");
        assert_eq!(
            n.width, cols,
            "matmul_const_t: operand width vs matrix cols"
        );
        self.push(Op::MatmulConstT(a.id, slot), Space::Node, rows)
    }

    /// Edge value: source endpoint's copy of a node value.
    pub fn gather_src(&mut self, v: Val) -> Val {
        assert_eq!(
            self.node(v).space,
            Space::Node,
            "gather_src takes a node value"
        );
        let w = self.node(v).width;
        self.push(Op::GatherSrc(v.id), Space::Edge, w)
    }

    /// Edge value: destination endpoint's copy of a node value.
    pub fn gather_dst(&mut self, v: Val) -> Val {
        assert_eq!(
            self.node(v).space,
            Space::Node,
            "gather_dst takes a node value"
        );
        let w = self.node(v).width;
        self.push(Op::GatherDst(v.id), Space::Edge, w)
    }

    /// Node value: per-vertex sum of an edge value over in-edges.
    pub fn agg_sum_dst(&mut self, e: Val) -> Val {
        assert_eq!(
            self.node(e).space,
            Space::Edge,
            "agg_sum_dst takes an edge value"
        );
        let w = self.node(e).width;
        self.push(Op::AggSumDst(e.id), Space::Node, w)
    }

    /// Node value: per-vertex sum of an edge value over out-edges.
    pub fn agg_sum_src(&mut self, e: Val) -> Val {
        assert_eq!(
            self.node(e).space,
            Space::Edge,
            "agg_sum_src takes an edge value"
        );
        let w = self.node(e).width;
        self.push(Op::AggSumSrc(e.id), Space::Node, w)
    }

    /// Node value: per-vertex max of an edge value over in-edges
    /// (gradient-stopped; see [`Op::AggMaxDst`]).
    pub fn agg_max_dst(&mut self, e: Val) -> Val {
        assert_eq!(
            self.node(e).space,
            Space::Edge,
            "agg_max_dst takes an edge value"
        );
        let w = self.node(e).width;
        self.push(Op::AggMaxDst(e.id), Space::Node, w)
    }

    fn binary_width(&self, a: Val, b: Val, what: &str) -> (Space, usize) {
        let (na, nb) = (self.node(a), self.node(b));
        assert_eq!(na.space, nb.space, "{what}: operand spaces differ");
        let w = match (na.width, nb.width) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            (x, y) => panic!("{what}: incompatible widths {x} vs {y}"),
        };
        (na.space, w)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Val, b: Val) -> Val {
        let (s, w) = self.binary_width(a, b, "add");
        self.push(Op::Add(a.id, b.id), s, w)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Val, b: Val) -> Val {
        let (s, w) = self.binary_width(a, b, "sub");
        self.push(Op::Sub(a.id, b.id), s, w)
    }

    /// Elementwise product (broadcasting width-1 operands).
    pub fn mul(&mut self, a: Val, b: Val) -> Val {
        let (s, w) = self.binary_width(a, b, "mul");
        self.push(Op::Mul(a.id, b.id), s, w)
    }

    /// Elementwise quotient (broadcasting width-1 operands).
    pub fn div(&mut self, a: Val, b: Val) -> Val {
        let (s, w) = self.binary_width(a, b, "div");
        self.push(Op::Div(a.id, b.id), s, w)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: Val, c: f32) -> Val {
        let n = self.node(a);
        let (s, w) = (n.space, n.width);
        self.push(Op::Scale(a.id, c), s, w)
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, a: Val, slope: f32) -> Val {
        let n = self.node(a);
        let (s, w) = (n.space, n.width);
        self.push(Op::LeakyRelu(a.id, slope), s, w)
    }

    /// `grad * leaky_relu'(x)` (autodiff helper).
    pub fn leaky_relu_grad(&mut self, g: Val, x: Val, slope: f32) -> Val {
        let (s, w) = self.binary_width(g, x, "leaky_relu_grad");
        self.push(Op::LeakyReluGrad(g.id, x.id, slope), s, w)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Val) -> Val {
        let n = self.node(a);
        let (s, w) = (n.space, n.width);
        self.push(Op::Exp(a.id), s, w)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Val) -> Val {
        let n = self.node(a);
        let (s, w) = (n.space, n.width);
        self.push(Op::Sigmoid(a.id), s, w)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Val) -> Val {
        let n = self.node(a);
        let (s, w) = (n.space, n.width);
        self.push(Op::Tanh(a.id), s, w)
    }

    /// Sum across features to width 1.
    pub fn reduce_feat(&mut self, a: Val) -> Val {
        let n = self.node(a);
        let s = n.space;
        self.push(Op::ReduceFeat(a.id), s, 1)
    }

    /// Broadcast a width-1 value to width `w`.
    pub fn broadcast_feat(&mut self, a: Val, w: usize) -> Val {
        let n = self.node(a);
        assert_eq!(n.width, 1, "broadcast_feat takes a width-1 value");
        let s = n.space;
        self.push(Op::BroadcastFeat(a.id, w), s, w)
    }

    /// Finalises the program with the given node-space outputs and runs DCE.
    pub fn finish(mut self, outputs: &[Val]) -> Program {
        for &o in outputs {
            assert_eq!(
                self.node(o).space,
                Space::Node,
                "program outputs must be node-space values"
            );
        }
        self.prog.outputs = outputs.iter().map(|v| v.id).collect();
        self.prog.eliminate_dead_code()
    }
}

/// Traces the GCN aggregation: `out = norm ⊙ Σ_{u∈in(v)} (norm_u ⊙ h_u)`
/// plus the self-loop contribution `norm_v² ⊙ h_v` (so the program computes
/// `D̂^{-1/2} Â D̂^{-1/2} H` with `Â = A + I`).
pub fn gcn_aggregation(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let norm = b.node_const(1);
    let scaled = b.mul(h, norm);
    let gathered = b.gather_src(scaled);
    let agg = b.agg_sum_dst(gathered);
    // Self-loop: adding `scaled` here and multiplying the combined value by
    // `norm` yields the `norm_v² ⊙ h_v` diagonal term of D̂^{-1/2} Â D̂^{-1/2}.
    let combined = b.add(agg, scaled);
    let out = b.mul(combined, norm);
    b.finish(&[out])
}

/// Traces the GCN layer *including* its dense transform, with the weight as
/// a mat-const so the aggregate-then-matmul pattern is visible to
/// [`Program::fuse_agg_matmul`]:
///
/// `out = (Σ_{u∈in(v)} norm_v norm_u ⊙ h_u) W  +  (norm_v² ⊙ h_v) W`
///
/// This is `D̂^{-1/2} Â D̂^{-1/2} H W` with the destination norm pushed into
/// edge space (`norm_v` applied per edge rather than after the aggregate),
/// which is what leaves the aggregation directly under the matmul. It is
/// linearly identical to `gcn_aggregation(k)` followed by `@ W` — float
/// reassociation aside — but note the bias (if any) must be added *after*
/// this program, whereas layers that run their dense transform before the
/// aggregation apply it before.
pub fn gcn_linear_aggregation(in_features: usize, out_features: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(in_features);
    let norm = b.node_const(1);
    let w = b.mat_const(in_features, out_features);
    let scaled = b.mul(h, norm); // norm_u ⊙ h_u
    let gathered = b.gather_src(scaled);
    let norm_dst = b.gather_dst(norm);
    let e = b.mul(gathered, norm_dst); // norm_v norm_u ⊙ h_u per edge
    let agg = b.agg_sum_dst(e);
    let agg_w = b.matmul_const(agg, w); // the fusable pattern
    let self_term = b.mul(scaled, norm); // norm_v² ⊙ h_v
    let self_w = b.matmul_const(self_term, w);
    let out = b.add(agg_w, self_w);
    b.finish(&[out])
}

/// Traces the GAT attention aggregation for a single head:
/// given transformed features `h = XW` and per-node attention halves
/// `el = (h·a_l)`, `er = (h·a_r)`, computes
/// `out_v = Σ_{u∈in(v)} softmax_v(leaky_relu(el_u + er_v)) ⊙ h_u`.
pub fn gat_aggregation(width: usize, slope: f32) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(width);
    let el = b.input(1);
    let er = b.input(1);
    let e_src = b.gather_src(el);
    let e_dst = b.gather_dst(er);
    let score = b.add(e_src, e_dst);
    let score = b.leaky_relu(score, slope);
    let shift = b.agg_max_dst(score);
    let shift_e = b.gather_dst(shift);
    let shifted = b.sub(score, shift_e);
    let unnorm = b.exp(shifted);
    let denom = b.agg_sum_dst(unnorm);
    let denom_e = b.gather_dst(denom);
    let alpha = b.div(unnorm, denom_e);
    let hg = b.gather_src(h);
    let weighted = b.mul(alpha, hg);
    let out = b.agg_sum_dst(weighted);
    b.finish(&[out])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_spaces_and_widths() {
        let mut b = ProgramBuilder::new();
        let h = b.input(8);
        let norm = b.node_const(1);
        let s = b.mul(h, norm);
        let g = b.gather_src(s);
        let a = b.agg_sum_dst(g);
        let p = b.finish(&[a]);
        assert_eq!(p.node(p.outputs[0]).space, Space::Node);
        assert_eq!(p.node(p.outputs[0]).width, 8);
        assert_eq!(p.input_widths, vec![8]);
        assert_eq!(p.node_const_widths, vec![1]);
    }

    #[test]
    #[should_panic(expected = "agg_sum_dst takes an edge value")]
    fn agg_of_node_value_panics() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        b.agg_sum_dst(h);
    }

    #[test]
    #[should_panic(expected = "gather_src takes a node value")]
    fn gather_of_edge_value_panics() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let e = b.gather_src(h);
        b.gather_src(e);
    }

    #[test]
    #[should_panic(expected = "incompatible widths")]
    fn width_mismatch_panics() {
        let mut b = ProgramBuilder::new();
        let a = b.input(4);
        let c = b.input(3);
        b.add(a, c);
    }

    #[test]
    #[should_panic(expected = "outputs must be node-space")]
    fn edge_output_panics() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let e = b.gather_src(h);
        b.finish(&[e]);
    }

    #[test]
    fn dce_removes_unreachable_nodes() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let dead = b.scale(h, 2.0);
        let _deader = b.exp(dead);
        let g = b.gather_src(h);
        let out = b.agg_sum_dst(g);
        let p = b.finish(&[out]);
        // input + gather + agg survive; scale & exp are gone.
        assert_eq!(p.len(), 3);
        assert_eq!(p.aggregations().len(), 1);
    }

    #[test]
    fn gcn_program_shape() {
        let p = gcn_aggregation(16);
        assert_eq!(p.outputs.len(), 1);
        assert_eq!(p.node(p.outputs[0]).width, 16);
        assert_eq!(p.aggregations().len(), 1);
        assert_eq!(p.input_widths, vec![16]);
    }

    #[test]
    fn gat_program_shape() {
        let p = gat_aggregation(8, 0.2);
        assert_eq!(p.input_widths, vec![8, 1, 1]);
        // max, denom-sum, weighted-sum.
        assert_eq!(p.aggregations().len(), 3);
        assert_eq!(p.node(p.outputs[0]).width, 8);
    }

    #[test]
    fn display_prints_every_node_and_outputs() {
        let p = gcn_aggregation(4);
        let text = p.to_string();
        assert!(text.contains("NodeInput(slot 0)"), "{text}");
        assert!(text.contains("AggSumDst"));
        assert!(text.contains("outputs: ["));
        assert_eq!(text.lines().count(), p.len() + 1);
    }

    #[test]
    fn cse_merges_duplicate_gathers() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let g1 = b.gather_src(h);
        let g2 = b.gather_src(h); // duplicate
        let sum = b.add(g1, g2);
        let out = b.agg_sum_dst(sum);
        let p = b.finish(&[out]);
        let before = p.len();
        let after = p.eliminate_common_subexpressions();
        assert_eq!(after.len(), before - 1, "one duplicate gather must merge");
        // Same aggregation count, same output width.
        assert_eq!(after.aggregations().len(), 1);
        assert_eq!(after.node(after.outputs[0]).width, 4);
    }

    #[test]
    fn cse_respects_scalar_constants() {
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let s1 = b.scale(h, 2.0);
        let s2 = b.scale(h, 3.0); // different constant: must NOT merge
        let g1 = b.gather_src(s1);
        let g2 = b.gather_src(s2);
        let sum = b.add(g1, g2);
        let out = b.agg_sum_dst(sum);
        let p = b.finish(&[out]).eliminate_common_subexpressions();
        let scales = p
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Scale(_, _)))
            .count();
        assert_eq!(scales, 2);
    }

    #[test]
    fn cse_is_idempotent_and_preserves_gcn() {
        let p = gcn_aggregation(8);
        let once = p.eliminate_common_subexpressions();
        let twice = once.eliminate_common_subexpressions();
        assert_eq!(once.len(), twice.len());
        assert_eq!(once.input_widths, p.input_widths);
    }

    #[test]
    fn gcn_linear_program_shape() {
        let p = gcn_linear_aggregation(5, 3);
        assert_eq!(p.input_widths, vec![5]);
        assert_eq!(p.mat_const_dims, vec![(5, 3)]);
        assert_eq!(p.node(p.outputs[0]).width, 3);
        // Unfused: one AggSumDst, two MatmulConsts.
        assert_eq!(p.aggregations().len(), 1);
        let matmuls = p
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::MatmulConst(_, _)))
            .count();
        assert_eq!(matmuls, 2);
    }

    #[test]
    fn fusion_rewrites_agg_then_matmul() {
        let p = gcn_linear_aggregation(5, 3);
        let before = p.len();
        let (fused, remap) = p.fuse_agg_matmul(&[]);
        // The aggregate node is elided: one fewer node.
        assert_eq!(fused.len(), before - 1);
        assert!(fused
            .nodes
            .iter()
            .any(|n| matches!(n.op, Op::AggMatmulDst(_, _))));
        assert!(!fused.nodes.iter().any(|n| matches!(n.op, Op::AggSumDst(_))));
        // The self-term matmul has a non-aggregate operand: left alone.
        let plain = fused
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::MatmulConst(_, _)))
            .count();
        assert_eq!(plain, 1);
        // Remap covers every surviving node and the output.
        assert_eq!(remap.len(), before);
        assert!(fused.outputs.iter().all(|&o| o < fused.len()));
        assert_eq!(fused.mat_const_dims, vec![(5, 3)]);
    }

    #[test]
    fn fusion_respects_protected_and_shared_aggregates() {
        // Protected aggregate: must stay materialised.
        let p = gcn_linear_aggregation(4, 2);
        let agg_id = p
            .nodes
            .iter()
            .position(|n| matches!(n.op, Op::AggSumDst(_)))
            .unwrap();
        let (kept, _) = p.fuse_agg_matmul(&[agg_id]);
        assert!(kept.nodes.iter().any(|n| matches!(n.op, Op::AggSumDst(_))));
        assert!(!kept
            .nodes
            .iter()
            .any(|n| matches!(n.op, Op::AggMatmulDst(_, _))));

        // Shared aggregate (two consumers): must not fuse either.
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let w = b.mat_const(4, 2);
        let g = b.gather_src(h);
        let agg = b.agg_sum_dst(g);
        let mm = b.matmul_const(agg, w);
        let other = b.scale(agg, 2.0);
        let r = b.reduce_feat(other);
        let rb = b.broadcast_feat(r, 2);
        let out = b.add(mm, rb);
        let p = b.finish(&[out]);
        let (kept, _) = p.fuse_agg_matmul(&[]);
        assert!(kept.nodes.iter().any(|n| matches!(n.op, Op::AggSumDst(_))));
    }

    #[test]
    fn cse_distinguishes_mat_slots() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let w0 = b.mat_const(4, 4);
        let w1 = b.mat_const(4, 4);
        let m0 = b.matmul_const(h, w0);
        let m1 = b.matmul_const(h, w1); // different slot: must NOT merge
        let m2 = b.matmul_const(h, w0); // same slot: must merge with m0
        let s = b.add(m0, m1);
        let out = b.add(s, m2);
        let p = b.finish(&[out]).eliminate_common_subexpressions();
        let matmuls = p
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::MatmulConst(_, _)))
            .count();
        assert_eq!(matmuls, 2);
    }

    #[test]
    fn broadcast_mul_width_inference() {
        let mut b = ProgramBuilder::new();
        let wide = b.input(8);
        let narrow = b.input(1);
        let m = b.mul(wide, narrow);
        let r = b.reduce_feat(m);
        let bc = b.broadcast_feat(r, 8);
        let g = b.gather_src(bc);
        let out = b.agg_sum_dst(g);
        let p = b.finish(&[out]);
        assert_eq!(p.node(p.outputs[0]).width, 8);
    }
}
