//! Auto-differentiation of vertex-centric programs.
//!
//! Given a forward [`Program`], [`differentiate`] produces the backward
//! program plus the *saved set*: exactly which forward values the backward
//! program needs. This is the paper's State-Stack memory optimisation
//! (§V.B): "STGraph compares the backward and forward intermediate
//! representations to determine which features need to be stored in the
//! state-stack". Three classes of forward values can be referenced:
//!
//! * **inputs** — stored on the executor's State Stack (cheap: the feature
//!   tensors already exist);
//! * **computed node-space values** — kept as backward node-constants;
//! * **computed edge-space values** — the only ones that cost extra memory;
//!   `Gather*` values are *recomputed* from their node-space source inside
//!   the backward kernels instead of being saved (the reason STGraph never
//!   retains the `[num_edges, F]` tensors PyG-style frameworks keep alive).
//!
//! Gradient aggregations flip direction: the adjoint of `GatherSrc` is
//! `AggSumSrc` — a sum over *out*-edges, which is why the backward pass
//! runs over the forward CSR while the forward pass runs over the reverse
//! CSR (§V.B, Figure 2).

use crate::ir::{op_operands_mut, Id, Op, Program, ProgramBuilder, Space, Val};
use std::collections::HashMap;

/// A forward value the backward program needs, stored as a backward
/// node-constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSave {
    /// The forward program's differentiable input in this slot (a
    /// State-Stack entry — the feature tensor already exists).
    Input(usize),
    /// A computed node-space forward value (by forward IR id).
    Value(Id),
}

/// One `MatmulConst` use in the forward program. The executor computes the
/// matrix gradient `dW[slot] += operandᵀ · grad` as a dense tensor op from
/// two extra backward-program outputs: the (recomputed) matmul operand and
/// the upstream gradient flowing into that matmul. Several uses of the same
/// slot accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatUse {
    /// Mat-const slot the gradient belongs to.
    pub slot: usize,
    /// Backward output index holding the recomputed matmul operand.
    pub operand_output: usize,
    /// Backward output index holding the upstream gradient.
    pub grad_output: usize,
}

/// The backward program and its saved-value requirements.
pub struct BackwardPlan {
    /// The backward program. Its differentiable-input slots are the
    /// upstream gradients (one per forward output, same order). Its
    /// node-constant slots are the forward node-constants followed by
    /// [`BackwardPlan::node_saves`] in order; its edge-constant slots are
    /// the forward edge-constants followed by [`BackwardPlan::edge_saves`].
    pub program: Program,
    /// Saved node-space values, in backward node-constant slot order.
    pub node_saves: Vec<NodeSave>,
    /// Saved edge-space forward values (by forward IR id), in backward
    /// edge-constant slot order. These are the tensors the forward executor
    /// must materialise.
    pub edge_saves: Vec<Id>,
    /// For each forward input slot: the index of its gradient among the
    /// backward program's outputs, or `None` if the gradient is zero.
    pub input_grads: Vec<Option<usize>>,
    /// Matrix-gradient bridges, one per forward `MatmulConst` use (see
    /// [`MatUse`]). Empty for programs without mat-consts.
    pub mat_uses: Vec<MatUse>,
}

impl BackwardPlan {
    /// Forward IR ids the forward executor must save, in the order the
    /// caller should pass to `execute(..., save)`: node-space values first
    /// (those of `node_saves`), then `edge_saves`.
    pub fn save_ids(&self) -> Vec<Id> {
        let mut ids: Vec<Id> = self
            .node_saves
            .iter()
            .filter_map(|s| match s {
                NodeSave::Value(id) => Some(*id),
                NodeSave::Input(_) => None,
            })
            .collect();
        ids.extend(&self.edge_saves);
        ids
    }

    /// Forward input slots the State Stack must retain.
    pub fn saved_input_slots(&self) -> Vec<usize> {
        self.node_saves
            .iter()
            .filter_map(|s| match s {
                NodeSave::Input(i) => Some(*i),
                NodeSave::Value(_) => None,
            })
            .collect()
    }
}

struct Diff<'f> {
    fwd: &'f Program,
    b: ProgramBuilder,
    /// Memoised backward-program references to forward values.
    vals: HashMap<Id, Val>,
    /// Memoised backward-program *recomputations* of forward values (see
    /// [`Diff::reval`]) — kept separate from `vals` because a recomputation
    /// never forces a save.
    revals: HashMap<Id, Val>,
    node_saves: Vec<NodeSave>,
    edge_saves: Vec<Id>,
    /// `(slot, operand value, upstream grad)` per forward `MatmulConst`,
    /// turned into extra backward outputs + [`MatUse`] entries at the end.
    pending_mat: Vec<(usize, Val, Val)>,
}

impl<'f> Diff<'f> {
    /// A backward-program value equal to the *forward value* of `fid`,
    /// recomputing gathers and saving everything else that was computed.
    fn val(&mut self, fid: Id) -> Val {
        if let Some(&v) = self.vals.get(&fid) {
            return v;
        }
        let node = self.fwd.node(fid).clone();
        let v = match node.op {
            Op::NodeInput(slot) => {
                self.node_saves.push(NodeSave::Input(slot));
                self.b.node_const(node.width)
            }
            Op::NodeConst(_) | Op::EdgeConst(_) => {
                unreachable!("constants are pre-seeded in vals")
            }
            Op::GatherSrc(x) => {
                let xv = self.val(x);
                self.b.gather_src(xv)
            }
            Op::GatherDst(x) => {
                let xv = self.val(x);
                self.b.gather_dst(xv)
            }
            _ => match node.space {
                Space::Node => {
                    self.node_saves.push(NodeSave::Value(fid));
                    self.b.node_const(node.width)
                }
                Space::Edge => {
                    self.edge_saves.push(fid);
                    self.b.edge_const(node.width)
                }
            },
        };
        self.vals.insert(fid, v);
        v
    }

    /// A backward-program value that *recomputes* the forward value of
    /// `fid` from inputs and constants instead of loading a saved tensor.
    ///
    /// Used for the `MatmulConst` matrix gradient: saving the matmul
    /// operand via [`Diff::val`] would put it in the saved set, which would
    /// protect it from [`Program::fuse_agg_matmul`] and stop the fusion
    /// from ever firing. Recomputing trades one extra aggregation pass in
    /// the backward program for not materialising an `[n, k]` tensor per
    /// timestamp on the State Stack.
    fn reval(&mut self, fid: Id) -> Val {
        if let Some(&v) = self.revals.get(&fid) {
            return v;
        }
        let node = self.fwd.node(fid).clone();
        let v = match node.op {
            // Inputs and constants are already backward-visible — share the
            // `val` path (memoised there, so no duplicate saves).
            Op::NodeInput(_) | Op::NodeConst(_) | Op::EdgeConst(_) => self.val(fid),
            _ => {
                let mut op = node.op.clone();
                let new: Vec<Val> = op.operands().iter().map(|&o| self.reval(o)).collect();
                for (slot, nv) in op_operands_mut(&mut op).into_iter().zip(&new) {
                    *slot = nv.id;
                }
                self.b.emit(op, node.space, node.width)
            }
        };
        self.revals.insert(fid, v);
        v
    }

    /// Adapts a gradient of width `gw` to an operand of width `ow`
    /// (broadcast adjoint = feature reduction).
    fn adapt(&mut self, g: Val, gw: usize, ow: usize) -> Val {
        if gw == ow {
            g
        } else {
            debug_assert_eq!(ow, 1, "grad adapt only reduces to width 1");
            self.b.reduce_feat(g)
        }
    }

    fn add_grad(&mut self, grads: &mut HashMap<Id, Val>, id: Id, g: Val) {
        match grads.get(&id) {
            Some(&prev) => {
                let sum = self.b.add(prev, g);
                grads.insert(id, sum);
            }
            None => {
                grads.insert(id, g);
            }
        }
    }
}

/// Differentiates a forward program. See [`BackwardPlan`].
pub fn differentiate(fwd: &Program) -> BackwardPlan {
    let mut d = Diff {
        fwd,
        b: ProgramBuilder::new(),
        vals: HashMap::new(),
        revals: HashMap::new(),
        node_saves: Vec::new(),
        edge_saves: Vec::new(),
        pending_mat: Vec::new(),
    };

    // Seed output gradients as backward inputs FIRST so backward input slot
    // k always corresponds to forward output k.
    let mut grads: HashMap<Id, Val> = HashMap::new();
    for &out in &fwd.outputs {
        let g = d.b.input(fwd.node(out).width);
        match grads.get(&out) {
            Some(&prev) => {
                let sum = d.b.add(prev, g);
                grads.insert(out, sum);
            }
            None => {
                grads.insert(out, g);
            }
        }
    }

    // Mirror the forward constant slots so slot numbering lines up: backward
    // node-const slot i == forward node-const slot i, etc.
    for (fid, node) in fwd.nodes.iter().enumerate() {
        match node.op {
            Op::NodeConst(_) => {
                let v = d.b.node_const(node.width);
                d.vals.insert(fid, v);
            }
            Op::EdgeConst(_) => {
                let v = d.b.edge_const(node.width);
                d.vals.insert(fid, v);
            }
            _ => {}
        }
    }
    // Mirror the forward mat-const slots likewise: backward mat slot i ==
    // forward mat slot i (the `matmul_const_t` adjoints reference them).
    for &(rows, cols) in &fwd.mat_const_dims {
        d.b.mat_const(rows, cols);
    }

    let mut input_grads: Vec<Option<Val>> = vec![None; fwd.input_widths.len()];

    for fid in (0..fwd.len()).rev() {
        let Some(&g) = grads.get(&fid) else { continue };
        let node = fwd.node(fid).clone();
        let gw = node.width;
        match node.op {
            Op::NodeInput(slot) => {
                input_grads[slot] = Some(match input_grads[slot] {
                    Some(prev) => d.b.add(prev, g),
                    None => g,
                });
            }
            Op::NodeConst(_) | Op::EdgeConst(_) => {}
            Op::GatherSrc(x) => {
                let gx = d.b.agg_sum_src(g);
                d.add_grad(&mut grads, x, gx);
            }
            Op::GatherDst(x) => {
                let gx = d.b.agg_sum_dst(g);
                d.add_grad(&mut grads, x, gx);
            }
            Op::AggSumDst(e) => {
                let ge = d.b.gather_dst(g);
                d.add_grad(&mut grads, e, ge);
            }
            Op::AggSumSrc(e) => {
                let ge = d.b.gather_src(g);
                d.add_grad(&mut grads, e, ge);
            }
            Op::AggMaxDst(_) => {
                // Gradient stop: sanctioned only for the softmax shift,
                // where the shift's gradient provably cancels.
            }
            Op::Add(a, bb) => {
                let wa = fwd.node(a).width;
                let wb = fwd.node(bb).width;
                let ga = d.adapt(g, gw, wa);
                d.add_grad(&mut grads, a, ga);
                let gb = d.adapt(g, gw, wb);
                d.add_grad(&mut grads, bb, gb);
            }
            Op::Sub(a, bb) => {
                let wa = fwd.node(a).width;
                let wb = fwd.node(bb).width;
                let ga = d.adapt(g, gw, wa);
                d.add_grad(&mut grads, a, ga);
                let neg = d.b.scale(g, -1.0);
                let gb = d.adapt(neg, gw, wb);
                d.add_grad(&mut grads, bb, gb);
            }
            Op::Mul(a, bb) => {
                let wa = fwd.node(a).width;
                let wb = fwd.node(bb).width;
                if needs_grad(fwd, a) {
                    let bv = d.val(bb);
                    let prod = d.b.mul(g, bv);
                    let pw = gw.max(wb);
                    let ga = d.adapt(prod, pw, wa);
                    d.add_grad(&mut grads, a, ga);
                }
                if needs_grad(fwd, bb) {
                    let av = d.val(a);
                    let prod = d.b.mul(g, av);
                    let pw = gw.max(wa);
                    let gb = d.adapt(prod, pw, wb);
                    d.add_grad(&mut grads, bb, gb);
                }
            }
            Op::Div(a, bb) => {
                let wa = fwd.node(a).width;
                let wb = fwd.node(bb).width;
                if needs_grad(fwd, a) {
                    let bv = d.val(bb);
                    let q = d.b.div(g, bv);
                    let pw = gw.max(wb);
                    let ga = d.adapt(q, pw, wa);
                    d.add_grad(&mut grads, a, ga);
                }
                if needs_grad(fwd, bb) {
                    let av = d.val(a);
                    let bv = d.val(bb);
                    let b2 = d.b.mul(bv, bv);
                    let t = d.b.div(av, b2);
                    let prod = d.b.mul(g, t);
                    let neg = d.b.scale(prod, -1.0);
                    let pw = gw.max(wa).max(wb);
                    let gb = d.adapt(neg, pw, wb);
                    d.add_grad(&mut grads, bb, gb);
                }
            }
            Op::Scale(a, c) => {
                let ga = d.b.scale(g, c);
                d.add_grad(&mut grads, a, ga);
            }
            Op::LeakyRelu(a, s) => {
                let xv = d.val(a);
                let ga = d.b.leaky_relu_grad(g, xv, s);
                d.add_grad(&mut grads, a, ga);
            }
            Op::LeakyReluGrad(..) => {
                unreachable!("LeakyReluGrad only appears in backward programs")
            }
            Op::Exp(a) => {
                // d exp(x) = exp(x) dx — reuse the forward output value.
                let yv = d.val(fid);
                let ga = d.b.mul(g, yv);
                d.add_grad(&mut grads, a, ga);
            }
            Op::Sigmoid(a) => {
                // d σ(x) = σ(x)(1 - σ(x)) dx = (gy) - (gy)y with y saved.
                let yv = d.val(fid);
                let gy = d.b.mul(g, yv);
                let gyy = d.b.mul(gy, yv);
                let ga = d.b.sub(gy, gyy);
                d.add_grad(&mut grads, a, ga);
            }
            Op::Tanh(a) => {
                // d tanh(x) = (1 - y²) dx = g - g*y*y with y saved.
                let yv = d.val(fid);
                let gy = d.b.mul(g, yv);
                let gyy = d.b.mul(gy, yv);
                let ga = d.b.sub(g, gyy);
                d.add_grad(&mut grads, a, ga);
            }
            Op::ReduceFeat(a) => {
                let wa = fwd.node(a).width;
                let ga = d.b.broadcast_feat(g, wa);
                d.add_grad(&mut grads, a, ga);
            }
            Op::BroadcastFeat(a, _) => {
                let ga = d.b.reduce_feat(g);
                d.add_grad(&mut grads, a, ga);
            }
            Op::MatmulConst(a, slot) => {
                // Operand gradient: da = g · Wᵀ.
                if needs_grad(fwd, a) {
                    let ga = d.b.matmul_const_t(g, slot);
                    d.add_grad(&mut grads, a, ga);
                }
                // Matrix gradient: dW[slot] += aᵀ · g, assembled tensor-side
                // by the executor from two extra backward outputs. The
                // operand is recomputed (reval) rather than saved so the
                // aggregate-into-GEMM fusion can still elide it.
                let av = d.reval(a);
                d.pending_mat.push((slot, av, g));
            }
            Op::MatmulConstT(..) | Op::AggMatmulDst(..) | Op::AggMatmulSrc(..) => {
                unreachable!("only appears in backward or fused programs")
            }
        }
    }

    let mut outputs = Vec::new();
    let mut input_grad_slots = Vec::with_capacity(input_grads.len());
    for ig in &input_grads {
        match ig {
            Some(v) => {
                input_grad_slots.push(Some(outputs.len()));
                outputs.push(*v);
            }
            None => input_grad_slots.push(None),
        }
    }
    let mut mat_uses = Vec::with_capacity(d.pending_mat.len());
    for &(slot, operand, grad) in &d.pending_mat {
        mat_uses.push(MatUse {
            slot,
            operand_output: outputs.len(),
            grad_output: outputs.len() + 1,
        });
        outputs.push(operand);
        outputs.push(grad);
    }
    let program = d.b.finish(&outputs);
    BackwardPlan {
        program,
        node_saves: d.node_saves,
        edge_saves: d.edge_saves,
        input_grads: input_grad_slots,
        mat_uses,
    }
}

/// True if any differentiable input is reachable from `id` through
/// gradient-carrying ops (constants and AggMax cut the path). Used to skip
/// emitting dead gradient expressions (and their saved values).
fn needs_grad(prog: &Program, id: Id) -> bool {
    match &prog.node(id).op {
        Op::NodeInput(_) => true,
        Op::NodeConst(_) | Op::EdgeConst(_) | Op::AggMaxDst(_) => false,
        op => op.operands().iter().any(|&o| needs_grad(prog, o)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::ir::{gat_aggregation, gcn_aggregation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::{gcn_norm, Snapshot};
    use stgraph_tensor::Tensor;

    fn snap() -> Snapshot {
        Snapshot::from_edges(
            5,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (0, 3),
                (2, 4),
                (1, 4),
                (4, 0),
            ],
        )
    }

    /// Runs forward (with saves) then backward, returning per-input grads.
    fn run_backward(
        prog: &Program,
        plan: &BackwardPlan,
        graph: &Snapshot,
        inputs: &[Tensor],
        node_consts: &[Tensor],
        grad_out: &Tensor,
    ) -> Vec<Option<Tensor>> {
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let consts: Vec<&Tensor> = node_consts.iter().collect();
        let save_ids = plan.save_ids();
        let fwd = execute(prog, graph, &refs, &consts, &[], &save_ids);
        // Split the returned saves back into node and edge lists.
        let n_node_value_saves = plan
            .node_saves
            .iter()
            .filter(|s| matches!(s, NodeSave::Value(_)))
            .count();
        let (node_vals, edge_vals) = fwd.saved.split_at(n_node_value_saves);
        let mut node_val_iter = node_vals.iter();
        let mut b_node_consts: Vec<&Tensor> = node_consts.iter().collect();
        for s in &plan.node_saves {
            match s {
                NodeSave::Input(i) => b_node_consts.push(&inputs[*i]),
                NodeSave::Value(_) => b_node_consts.push(node_val_iter.next().unwrap()),
            }
        }
        let b_edge_consts: Vec<&Tensor> = edge_vals.iter().collect();
        let bexec = execute(
            &plan.program,
            graph,
            &[grad_out],
            &b_node_consts,
            &b_edge_consts,
            &[],
        );
        plan.input_grads
            .iter()
            .map(|ig| ig.map(|idx| bexec.outputs[idx].clone()))
            .collect()
    }

    /// Numeric-vs-analytic gradient check: objective = sum(output ⊙ seed).
    fn gradcheck_program(
        prog: &Program,
        graph: &Snapshot,
        inputs: &[Tensor],
        node_consts: &[Tensor],
        tol: f32,
    ) {
        let plan = differentiate(prog);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = graph.csr.num_nodes();
        let out_w = prog.node(prog.outputs[0]).width;
        let seed = Tensor::rand_uniform((n, out_w), -1.0, 1.0, &mut rng);

        let grads = run_backward(prog, &plan, graph, inputs, node_consts, &seed);
        for (slot, maybe_g) in grads.iter().enumerate() {
            let Some(analytic) = maybe_g else { continue };
            let mut f = |t: &Tensor| {
                let mut ins = inputs.to_vec();
                ins[slot] = t.clone();
                let refs: Vec<&Tensor> = ins.iter().collect();
                let consts: Vec<&Tensor> = node_consts.iter().collect();
                let out = execute(prog, graph, &refs, &consts, &[], &[])
                    .outputs
                    .remove(0);
                out.mul(&seed).sum().item()
            };
            let numeric =
                stgraph_tensor::autograd::check::numeric_grad(&mut f, &inputs[slot], 1e-2);
            stgraph_tensor::autograd::check::assert_close(analytic, &numeric, tol);
        }
    }

    #[test]
    fn gcn_backward_saves_nothing_extra() {
        let prog = gcn_aggregation(4);
        let plan = differentiate(&prog);
        assert!(plan.edge_saves.is_empty(), "GCN must not save edge tensors");
        assert!(
            plan.node_saves.is_empty(),
            "GCN backward needs no saved activations"
        );
        assert_eq!(plan.input_grads, vec![Some(0)]);
        // Backward aggregates over out-edges: contains an AggSumSrc.
        assert!(plan
            .program
            .nodes
            .iter()
            .any(|n| matches!(n.op, Op::AggSumSrc(_))));
    }

    #[test]
    fn gcn_gradcheck() {
        let g = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let f = 3;
        let x = Tensor::rand_uniform((5, f), -1.0, 1.0, &mut rng);
        let norm = Tensor::from_vec((5, 1), gcn_norm(&g.in_degrees));
        gradcheck_program(&gcn_aggregation(f), &g, &[x], &[norm], 2e-2);
    }

    #[test]
    fn gat_gradcheck() {
        let g = snap();
        // Seed chosen so no leaky_relu pre-activation lands within the
        // finite-difference step of the kink, where numeric gradients are
        // meaningless.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = 3;
        let h = Tensor::rand_uniform((5, f), -1.0, 1.0, &mut rng);
        let el = Tensor::rand_uniform((5, 1), -1.0, 1.0, &mut rng);
        let er = Tensor::rand_uniform((5, 1), -1.0, 1.0, &mut rng);
        gradcheck_program(&gat_aggregation(f, 0.2), &g, &[h, el, er], &[], 3e-2);
    }

    #[test]
    fn gat_saved_set_is_small() {
        // The memory optimisation: GAT saves only width-1 edge values and
        // width-1 node values — never the [m, F] gathered features.
        let prog = gat_aggregation(16, 0.2);
        let plan = differentiate(&prog);
        for &id in &plan.edge_saves {
            assert_eq!(
                prog.node(id).width,
                1,
                "only scalar edge values may be saved"
            );
        }
        for s in &plan.node_saves {
            match s {
                NodeSave::Value(id) => assert_eq!(prog.node(*id).width, 1),
                NodeSave::Input(slot) => {
                    // Only h (slot 0) is needed; el/er values are not.
                    assert_eq!(*slot, 0);
                }
            }
        }
        assert_eq!(plan.saved_input_slots(), vec![0]);
    }

    #[test]
    fn sum_aggregation_grad_is_outdegree_scaled() {
        // out_v = sum in-nbrs h_u; objective = sum(out) => dh_u = out_deg(u).
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let gsrc = b.gather_src(h);
        let out = b.agg_sum_dst(gsrc);
        let prog = b.finish(&[out]);
        let plan = differentiate(&prog);
        let g = snap();
        let ones = Tensor::ones((5, 1));
        let grads = run_backward(&prog, &plan, &g, &[Tensor::zeros((5, 1))], &[], &ones);
        let got = grads[0].as_ref().unwrap();
        let want: Vec<f32> = g.out_degrees.iter().map(|&d| d as f32).collect();
        assert_eq!(got.to_vec(), want);
    }

    #[test]
    fn sigmoid_tanh_gradcheck() {
        // An edge-gated aggregation: out_v = Σ tanh(σ(h_u)) — smooth
        // everywhere, so numerics are reliable.
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let g = b.gather_src(h);
        let sg = b.sigmoid(g);
        let tg = b.tanh(sg);
        let out = b.agg_sum_dst(tg);
        let prog = b.finish(&[out]);
        let graph = snap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let x = Tensor::rand_uniform((5, 2), -2.0, 2.0, &mut rng);
        gradcheck_program(&prog, &graph, &[x], &[], 2e-2);
        // The saved set holds the two edge-space activations (width 2).
        let plan = differentiate(&prog);
        assert_eq!(plan.edge_saves.len(), 2);
    }

    #[test]
    fn constant_only_branch_gets_no_gradient_machinery() {
        // Multiplying by a node-const must not save anything.
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let c = b.node_const(1);
        let scaled = b.mul(h, c);
        let gsrc = b.gather_src(scaled);
        let out = b.agg_sum_dst(gsrc);
        let prog = b.finish(&[out]);
        let plan = differentiate(&prog);
        assert!(plan.node_saves.is_empty());
        assert!(plan.edge_saves.is_empty());
    }

    #[test]
    fn two_outputs_get_two_grad_inputs() {
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let g1 = b.gather_src(h);
        let o1 = b.agg_sum_dst(g1);
        let g2 = b.gather_dst(h);
        let o2 = b.agg_sum_src(g2);
        let prog = b.finish(&[o1, o2]);
        let plan = differentiate(&prog);
        assert_eq!(plan.program.input_widths, vec![2, 2]);
        assert_eq!(plan.input_grads, vec![Some(0)]);
    }
}
