//! Kernel generation and execution for vertex-centric programs.
//!
//! This module plays the role of Seastar's CUDA code generator + executor.
//! Node-space ops run as whole-tensor kernels. Edge-space subtrees are
//! *compiled* to a small register program (`EdgePlan`) and evaluated
//! per-edge inside fused, vertex-parallel aggregation loops — edge tensors
//! are never materialised unless the backward program explicitly needs one
//! saved. Vertices are scheduled in the degree-sorted `node_ids` order
//! (Figure 3) so long rows start first and overlap with the tail of short
//! rows — the paper's load-balancing argument for its speed-ups.

use crate::ir::{Id, Op, Program, Space};
use rayon::prelude::*;
use stgraph_graph::base::STGraphBase;
use stgraph_graph::csr::Csr;
use stgraph_tensor::mem::{self, TrackedBuf};
use stgraph_tensor::simd::{self, F32x8, LANES};
use stgraph_tensor::tensor::gemm_row;
use stgraph_tensor::{par_min, Shape, Tensor};

/// Lane-dispatched `dst[j] = scalar(a[j], b[j])` over equal-width scratch
/// regions. `lane` must apply the same per-lane IEEE op as `scalar`, so the
/// SIMD and `STGRAPH_NO_SIMD` paths stay bitwise equal.
#[inline(always)]
fn lane_bin(
    dst: &mut [f32],
    a: &[f32],
    b: &[f32],
    lane: impl Fn(F32x8, F32x8) -> F32x8,
    scalar: impl Fn(f32, f32) -> f32,
) {
    if simd::enabled() {
        let main = dst.len() / LANES * LANES;
        let (dm, dt) = dst.split_at_mut(main);
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (dc, (ac, bc)) in dm.chunks_exact_mut(LANES).zip(ac.by_ref().zip(bc.by_ref())) {
            lane(F32x8::load(ac), F32x8::load(bc)).store(dc);
        }
        for (d, (&x, &y)) in dt.iter_mut().zip(ac.remainder().iter().zip(bc.remainder())) {
            *d = scalar(x, y);
        }
    } else {
        for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
            *d = scalar(x, y);
        }
    }
}

/// Lane-dispatched in-place accumulate `row[j] = scalar(row[j], val[j])`
/// (the fused aggregation's hot loop). Same bitwise contract as
/// [`lane_bin`].
#[inline(always)]
fn lane_accum(
    row: &mut [f32],
    val: &[f32],
    lane: impl Fn(F32x8, F32x8) -> F32x8,
    scalar: impl Fn(f32, f32) -> f32,
) {
    if simd::enabled() {
        let main = row.len() / LANES * LANES;
        let (rm, rt) = row.split_at_mut(main);
        let mut vc = val.chunks_exact(LANES);
        for (rc, vc) in rm.chunks_exact_mut(LANES).zip(vc.by_ref()) {
            lane(F32x8::load(rc), F32x8::load(vc)).store(rc);
        }
        for (r, &v) in rt.iter_mut().zip(vc.remainder()) {
            *r = scalar(*r, v);
        }
    } else {
        for (r, &v) in row.iter_mut().zip(val) {
            *r = scalar(*r, v);
        }
    }
}

/// Binary edge-op kinds.
#[derive(Debug, Clone, Copy)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
}

/// One instruction of a compiled edge subtree. Registers are offsets into a
/// per-thread scratch buffer.
#[derive(Debug, Clone)]
enum Instr {
    /// Copy the source endpoint's row of node tensor `t`.
    GatherSrc { t: usize, out: usize, w: usize },
    /// Copy the destination endpoint's row of node tensor `t`.
    GatherDst { t: usize, out: usize, w: usize },
    /// Copy row `eid` of edge tensor `t`.
    LoadEdge { t: usize, out: usize, w: usize },
    /// `out = a (op) b` with width-1 broadcast on either side.
    Bin {
        k: BinKind,
        a: usize,
        wa: usize,
        b: usize,
        wb: usize,
        out: usize,
        w: usize,
    },
    /// `out = a * c`.
    Scale {
        a: usize,
        c: f32,
        out: usize,
        w: usize,
    },
    /// `out = leaky_relu(a)`.
    LeakyRelu {
        a: usize,
        slope: f32,
        out: usize,
        w: usize,
    },
    /// `out = g * leaky_relu'(x)`.
    LeakyReluGrad {
        g: usize,
        x: usize,
        slope: f32,
        out: usize,
        w: usize,
    },
    /// `out = exp(a)`.
    Exp { a: usize, out: usize, w: usize },
    /// `out = sigmoid(a)`.
    Sigmoid { a: usize, out: usize, w: usize },
    /// `out = tanh(a)`.
    Tanh { a: usize, out: usize, w: usize },
    /// `out[0] = Σ_j a[j]`.
    ReduceFeat { a: usize, wa: usize, out: usize },
    /// `out[j] = a[0]`.
    BroadcastFeat { a: usize, out: usize, w: usize },
}

/// A compiled edge subtree: instructions, total scratch length, result
/// register/width, and the node/edge tensors the instructions index.
struct EdgePlan<'a> {
    instrs: Vec<Instr>,
    scratch_len: usize,
    root: usize,
    root_w: usize,
    node_tensors: Vec<&'a Tensor>,
    edge_tensors: Vec<&'a Tensor>,
}

struct EdgeCompiler<'p, 'a> {
    prog: &'p Program,
    values: &'a [Option<Tensor>],
    plan_instrs: Vec<Instr>,
    regs: std::collections::HashMap<Id, (usize, usize)>,
    scratch_len: usize,
    node_tensors: Vec<&'a Tensor>,
    node_tensor_ids: std::collections::HashMap<Id, usize>,
    edge_tensors: Vec<&'a Tensor>,
    edge_tensor_slots: std::collections::HashMap<usize, usize>,
    edge_consts: &'a [&'a Tensor],
}

impl<'p, 'a> EdgeCompiler<'p, 'a> {
    fn alloc(&mut self, w: usize) -> usize {
        let r = self.scratch_len;
        self.scratch_len += w;
        r
    }

    fn node_tensor(&mut self, id: Id) -> usize {
        if let Some(&t) = self.node_tensor_ids.get(&id) {
            return t;
        }
        let tensor = self.values[id]
            .as_ref()
            .expect("gathered node value not materialised before kernel");
        self.node_tensors.push(tensor);
        let t = self.node_tensors.len() - 1;
        self.node_tensor_ids.insert(id, t);
        t
    }

    fn edge_tensor(&mut self, slot: usize) -> usize {
        if let Some(&t) = self.edge_tensor_slots.get(&slot) {
            return t;
        }
        self.edge_tensors.push(self.edge_consts[slot]);
        let t = self.edge_tensors.len() - 1;
        self.edge_tensor_slots.insert(slot, t);
        t
    }

    /// Compiles the edge-space subtree rooted at `id`, returning
    /// `(register, width)`.
    fn compile(&mut self, id: Id) -> (usize, usize) {
        if let Some(&rw) = self.regs.get(&id) {
            return rw;
        }
        let node = self.prog.node(id);
        debug_assert_eq!(
            node.space,
            Space::Edge,
            "edge plan reached a node-space value"
        );
        let w = node.width;
        let rw = match node.op {
            Op::GatherSrc(v) => {
                let t = self.node_tensor(v);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::GatherSrc { t, out, w });
                (out, w)
            }
            Op::GatherDst(v) => {
                let t = self.node_tensor(v);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::GatherDst { t, out, w });
                (out, w)
            }
            Op::EdgeConst(slot) => {
                let t = self.edge_tensor(slot);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::LoadEdge { t, out, w });
                (out, w)
            }
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Div(a, b) => {
                let k = match node.op {
                    Op::Add(..) => BinKind::Add,
                    Op::Sub(..) => BinKind::Sub,
                    Op::Mul(..) => BinKind::Mul,
                    _ => BinKind::Div,
                };
                let (ra, wa) = self.compile(a);
                let (rb, wb) = self.compile(b);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::Bin {
                    k,
                    a: ra,
                    wa,
                    b: rb,
                    wb,
                    out,
                    w,
                });
                (out, w)
            }
            Op::Scale(a, c) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::Scale { a: ra, c, out, w });
                (out, w)
            }
            Op::LeakyRelu(a, slope) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::LeakyRelu {
                    a: ra,
                    slope,
                    out,
                    w,
                });
                (out, w)
            }
            Op::LeakyReluGrad(g, x, slope) => {
                let (rg, _) = self.compile(g);
                let (rx, _) = self.compile(x);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::LeakyReluGrad {
                    g: rg,
                    x: rx,
                    slope,
                    out,
                    w,
                });
                (out, w)
            }
            Op::Exp(a) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::Exp { a: ra, out, w });
                (out, w)
            }
            Op::Sigmoid(a) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::Sigmoid { a: ra, out, w });
                (out, w)
            }
            Op::Tanh(a) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs.push(Instr::Tanh { a: ra, out, w });
                (out, w)
            }
            Op::ReduceFeat(a) => {
                let (ra, wa) = self.compile(a);
                let out = self.alloc(1);
                self.plan_instrs.push(Instr::ReduceFeat { a: ra, wa, out });
                (out, 1)
            }
            Op::BroadcastFeat(a, _) => {
                let (ra, _) = self.compile(a);
                let out = self.alloc(w);
                self.plan_instrs
                    .push(Instr::BroadcastFeat { a: ra, out, w });
                (out, w)
            }
            Op::NodeInput(_)
            | Op::NodeConst(_)
            | Op::AggSumDst(_)
            | Op::AggSumSrc(_)
            | Op::AggMaxDst(_)
            | Op::MatmulConst(..)
            | Op::MatmulConstT(..)
            | Op::AggMatmulDst(..)
            | Op::AggMatmulSrc(..) => {
                unreachable!("node-space op inside an edge plan")
            }
        };
        self.regs.insert(id, rw);
        rw
    }
}

fn compile_edge_plan<'a>(
    prog: &Program,
    root: Id,
    values: &'a [Option<Tensor>],
    edge_consts: &'a [&'a Tensor],
) -> EdgePlan<'a> {
    let mut c = EdgeCompiler {
        prog,
        values,
        plan_instrs: Vec::new(),
        regs: Default::default(),
        scratch_len: 0,
        node_tensors: Vec::new(),
        node_tensor_ids: Default::default(),
        edge_tensors: Vec::new(),
        edge_tensor_slots: Default::default(),
        edge_consts,
    };
    let (root_reg, root_w) = c.compile(root);
    EdgePlan {
        instrs: c.plan_instrs,
        scratch_len: c.scratch_len,
        root: root_reg,
        root_w,
        node_tensors: c.node_tensors,
        edge_tensors: c.edge_tensors,
    }
}

impl EdgePlan<'_> {
    /// When the whole edge program is one bare gather of a node tensor —
    /// the shape every GCN/GRU aggregation compiles to — the aggregation
    /// loops can read each neighbour's row in place instead of routing it
    /// through scratch (a copy plus instruction dispatch per edge, with a
    /// tensor deref inside the hot loop). Returns the node-tensor index
    /// and whether the gather reads the edge's source (`true`) or its
    /// destination (`false`).
    fn direct_gather(&self) -> Option<(usize, bool)> {
        match *self.instrs.as_slice() {
            [Instr::GatherSrc { t, out, w }] if out == self.root && w == self.root_w => {
                Some((t, true))
            }
            [Instr::GatherDst { t, out, w }] if out == self.root && w == self.root_w => {
                Some((t, false))
            }
            _ => None,
        }
    }

    /// Evaluates the plan for one edge into `scratch`.
    #[inline]
    fn eval(&self, scratch: &mut [f32], src: usize, dst: usize, eid: usize) {
        for instr in &self.instrs {
            match *instr {
                Instr::GatherSrc { t, out, w } => {
                    let d = self.node_tensors[t].data();
                    scratch[out..out + w].copy_from_slice(&d[src * w..src * w + w]);
                }
                Instr::GatherDst { t, out, w } => {
                    let d = self.node_tensors[t].data();
                    scratch[out..out + w].copy_from_slice(&d[dst * w..dst * w + w]);
                }
                Instr::LoadEdge { t, out, w } => {
                    let d = self.edge_tensors[t].data();
                    scratch[out..out + w].copy_from_slice(&d[eid * w..eid * w + w]);
                }
                Instr::Bin {
                    k,
                    a,
                    wa,
                    b,
                    wb,
                    out,
                    w,
                } => {
                    if wa == w && wb == w {
                        // Register allocation is monotonic, so the output
                        // region always lies after both operand regions —
                        // split there for a safe parallel borrow.
                        debug_assert!(a + w <= out && b + w <= out);
                        let (lo, hi) = scratch.split_at_mut(out);
                        let (dst, aa, bb) = (&mut hi[..w], &lo[a..a + w], &lo[b..b + w]);
                        match k {
                            BinKind::Add => lane_bin(dst, aa, bb, |x, y| x.add(y), |x, y| x + y),
                            BinKind::Sub => lane_bin(dst, aa, bb, |x, y| x.sub(y), |x, y| x - y),
                            BinKind::Mul => lane_bin(dst, aa, bb, |x, y| x.mul(y), |x, y| x * y),
                            BinKind::Div => lane_bin(dst, aa, bb, |x, y| x.div(y), |x, y| x / y),
                        }
                    } else {
                        for j in 0..w {
                            let av = scratch[a + if wa == 1 { 0 } else { j }];
                            let bv = scratch[b + if wb == 1 { 0 } else { j }];
                            scratch[out + j] = match k {
                                BinKind::Add => av + bv,
                                BinKind::Sub => av - bv,
                                BinKind::Mul => av * bv,
                                BinKind::Div => av / bv,
                            };
                        }
                    }
                }
                Instr::Scale { a, c, out, w } => {
                    debug_assert!(a + w <= out);
                    let (lo, hi) = scratch.split_at_mut(out);
                    let cx = F32x8::splat(c);
                    lane_bin(
                        &mut hi[..w],
                        &lo[a..a + w],
                        &lo[a..a + w],
                        |x, _| x.mul(cx),
                        |x, _| x * c,
                    );
                }
                Instr::LeakyRelu { a, slope, out, w } => {
                    for j in 0..w {
                        let x = scratch[a + j];
                        scratch[out + j] = if x >= 0.0 { x } else { slope * x };
                    }
                }
                Instr::LeakyReluGrad {
                    g,
                    x,
                    slope,
                    out,
                    w,
                } => {
                    for j in 0..w {
                        let d = if scratch[x + j] >= 0.0 { 1.0 } else { slope };
                        scratch[out + j] = scratch[g + j] * d;
                    }
                }
                Instr::Exp { a, out, w } => {
                    for j in 0..w {
                        scratch[out + j] = scratch[a + j].exp();
                    }
                }
                Instr::Sigmoid { a, out, w } => {
                    for j in 0..w {
                        scratch[out + j] = 1.0 / (1.0 + (-scratch[a + j]).exp());
                    }
                }
                Instr::Tanh { a, out, w } => {
                    for j in 0..w {
                        scratch[out + j] = scratch[a + j].tanh();
                    }
                }
                Instr::ReduceFeat { a, wa, out } => {
                    scratch[out] = scratch[a..a + wa].iter().sum();
                }
                Instr::BroadcastFeat { a, out, w } => {
                    let v = scratch[a];
                    scratch[out..out + w].fill(v);
                }
            }
        }
    }
}

/// Aggregation kind for the fused kernel.
#[derive(Clone, Copy, PartialEq)]
enum AggKind {
    SumDst,
    SumSrc,
    MaxDst,
}

/// Splits `node_ids` into ranges of roughly `n_chunks` equal *edge* counts
/// using a prefix sum of row extents. Degree-sorted order puts the heaviest
/// vertices first, so naive fixed-width chunking would hand one worker all
/// the hubs; cutting on cumulative edge work instead gives every worker the
/// same number of plan evaluations (± one vertex).
fn balanced_ranges(csr: &Csr, n_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let ids = &csr.node_ids;
    // +1 per vertex charges the fixed row setup so empty rows aren't free.
    let mut prefix = Vec::with_capacity(ids.len() + 1);
    let mut acc = 0usize;
    prefix.push(0);
    for &v in ids {
        acc += csr.degree(v as usize) + 1;
        prefix.push(acc);
    }
    let target = acc.div_ceil(n_chunks.max(1)).max(1);
    let mut ranges = Vec::with_capacity(n_chunks);
    let mut start = 0;
    let mut next_cut = target;
    for i in 0..ids.len() {
        if prefix[i + 1] >= next_cut {
            ranges.push(start..i + 1);
            start = i + 1;
            next_cut = prefix[i + 1] + target;
        }
    }
    if start < ids.len() {
        ranges.push(start..ids.len());
    }
    ranges
}

/// Runs a fused aggregation kernel over the appropriate CSR in degree-sorted
/// order, evaluating the edge plan per edge and accumulating into the output
/// rows. Parallelism is *edge-balanced*: vertices are grouped into chunks of
/// equal cumulative degree (see [`balanced_ranges`]) and each chunk reuses
/// one pooled scratch buffer for every plan evaluation it performs. Each
/// vertex appears exactly once in `node_ids`, so output rows are written by
/// exactly one task (the same disjointness argument the CUDA kernel relies
/// on) — and because every row is written, the output can start from a
/// pooled uninitialised buffer (rows are zero-filled before accumulation).
fn run_aggregation(plan: &EdgePlan<'_>, csr: &Csr, kind: AggKind, num_nodes: usize) -> Tensor {
    let _sp = stgraph_telemetry::span_cat("seastar.agg", "kernel");
    let w = plan.root_w;
    let mem_pool = mem::current_pool();
    let mut out = TrackedBuf::raw_in(mem_pool, num_nodes * w);
    if csr.node_ids.len() != num_nodes {
        // Defensive: rows not covered by node_ids must still read as zero.
        out.as_mut_slice().fill(0.0);
    }
    {
        struct Shared(*mut f32);
        unsafe impl Sync for Shared {}
        let shared = Shared(out.as_mut_slice().as_mut_ptr());
        let node_ids = &csr.node_ids;
        // Hoisted once per kernel launch, not per edge: the bare-gather
        // fast path and its tensor slice.
        let direct = plan
            .direct_gather()
            .map(|(t, is_src)| (plan.node_tensors[t].data(), is_src));
        let per_vertex = |scratch: &mut [f32], v: u32| {
            let shared = &shared;
            let v = v as usize;
            let row = unsafe { std::slice::from_raw_parts_mut(shared.0.add(v * w), w) };
            row.fill(0.0);
            let mut first = true;
            for (nbr, eid) in csr.iter_row(v) {
                // For Dst kernels the CSR is the reverse CSR: rows are
                // destinations, neighbours are sources. For Src kernels the
                // rows are sources.
                let (src, dst) = match kind {
                    AggKind::SumDst | AggKind::MaxDst => (nbr as usize, v),
                    AggKind::SumSrc => (v, nbr as usize),
                };
                let val: &[f32] = if let Some((d, is_src)) = &direct {
                    let i = if *is_src { src } else { dst };
                    &d[i * w..i * w + w]
                } else {
                    plan.eval(scratch, src, dst, eid as usize);
                    &scratch[plan.root..plan.root + w]
                };
                match kind {
                    AggKind::SumDst | AggKind::SumSrc => {
                        lane_accum(row, val, |r, v| r.add(v), |r, v| r + v);
                    }
                    AggKind::MaxDst => {
                        if first {
                            row.copy_from_slice(val);
                        } else {
                            lane_accum(row, val, |r, v| r.max(v), |r, v| r.max(v));
                        }
                    }
                }
                first = false;
            }
        };
        if csr.num_edges() * w >= par_min() {
            let ranges = balanced_ranges(csr, rayon::current_num_threads() * 4);
            ranges.par_iter().for_each(|range| {
                let mut scratch = TrackedBuf::raw_in(mem_pool, plan.scratch_len);
                for &v in &node_ids[range.clone()] {
                    per_vertex(scratch.as_mut_slice(), v);
                }
            });
        } else {
            let mut scratch = TrackedBuf::raw_in(mem_pool, plan.scratch_len);
            for &v in node_ids {
                per_vertex(scratch.as_mut_slice(), v);
            }
        }
    }
    Tensor::from_buf(Shape::Mat(num_nodes, w), out)
}

/// Runs the aggregate-into-GEMM fused kernel: per vertex, the edge plan is
/// evaluated and summed into a width-`k` scratch row (never a whole `[n, k]`
/// tensor), then that row is multiplied through the `[k, m]` mat-const with
/// the *same* row kernel `Tensor::matmul` dispatches to — so the fused
/// result is bitwise identical to `matmul(run_aggregation(..), mat)` while
/// touching the adjacency once and skipping the intermediate materialise.
fn run_agg_matmul(
    plan: &EdgePlan<'_>,
    csr: &Csr,
    kind: AggKind,
    num_nodes: usize,
    mat: &Tensor,
) -> Tensor {
    let _sp = stgraph_telemetry::span_cat("seastar.agg_matmul", "kernel");
    debug_assert!(!matches!(kind, AggKind::MaxDst), "fusion is sum-only");
    let k = plan.root_w;
    let m = mat.cols();
    debug_assert_eq!(mat.rows(), k, "mat-const rows vs aggregate width");
    let mat_d = mat.data();
    let mem_pool = mem::current_pool();
    let mut out = TrackedBuf::raw_in(mem_pool, num_nodes * m);
    if csr.node_ids.len() != num_nodes {
        // Defensive: rows not covered by node_ids must still read as zero.
        out.as_mut_slice().fill(0.0);
    }
    {
        struct Shared(*mut f32);
        unsafe impl Sync for Shared {}
        let shared = Shared(out.as_mut_slice().as_mut_ptr());
        let node_ids = &csr.node_ids;
        // Scratch layout: [plan registers | k-wide aggregate row].
        let scratch_len = plan.scratch_len + k;
        // Hoisted once per kernel launch, not per edge: the bare-gather
        // fast path and its tensor slice.
        let direct = plan
            .direct_gather()
            .map(|(t, is_src)| (plan.node_tensors[t].data(), is_src));
        let per_vertex = |scratch: &mut [f32], v: u32| {
            let shared = &shared;
            let v = v as usize;
            let row = unsafe { std::slice::from_raw_parts_mut(shared.0.add(v * m), m) };
            let (plan_scr, agg) = scratch.split_at_mut(plan.scratch_len);
            agg.fill(0.0);
            let mut any = false;
            for (nbr, eid) in csr.iter_row(v) {
                let (src, dst) = match kind {
                    AggKind::SumDst | AggKind::MaxDst => (nbr as usize, v),
                    AggKind::SumSrc => (v, nbr as usize),
                };
                let val: &[f32] = if let Some((d, is_src)) = &direct {
                    let i = if *is_src { src } else { dst };
                    &d[i * k..i * k + k]
                } else {
                    plan.eval(plan_scr, src, dst, eid as usize);
                    &plan_scr[plan.root..plan.root + k]
                };
                lane_accum(agg, val, |r, v| r.add(v), |r, v| r + v);
                any = true;
            }
            if any {
                gemm_row(row, agg, mat_d, m);
            } else {
                // A zero aggregate row matmuls to exactly +0.0 everywhere;
                // skip the k·m flops.
                row.fill(0.0);
            }
        };
        if csr.num_edges() * k + csr.node_ids.len() * k * m >= par_min() {
            let ranges = balanced_ranges(csr, rayon::current_num_threads() * 4);
            ranges.par_iter().for_each(|range| {
                let mut scratch = TrackedBuf::raw_in(mem_pool, scratch_len);
                for &v in &node_ids[range.clone()] {
                    per_vertex(scratch.as_mut_slice(), v);
                }
            });
        } else {
            let mut scratch = TrackedBuf::raw_in(mem_pool, scratch_len);
            for &v in node_ids {
                per_vertex(scratch.as_mut_slice(), v);
            }
        }
    }
    Tensor::from_buf(Shape::Mat(num_nodes, m), out)
}

/// Materialises an edge-space value as an `[m, w]` tensor indexed by edge
/// id, used only when the backward program needs the value saved. Iterates
/// the dense reverse CSR so every edge id is visited exactly once.
fn materialize_edge_value(plan: &EdgePlan<'_>, rev: &Csr, num_edges: usize) -> Tensor {
    let _sp = stgraph_telemetry::span_cat("seastar.edge_values", "kernel");
    let w = plan.root_w;
    let mem_pool = mem::current_pool();
    let mut out = TrackedBuf::zeros_in(mem_pool, num_edges * w);
    {
        struct Shared(*mut f32);
        unsafe impl Sync for Shared {}
        let shared = Shared(out.as_mut_slice().as_mut_ptr());
        let per_vertex = |scratch: &mut [f32], v: u32| {
            let shared = &shared;
            let dst = v as usize;
            for (src, eid) in rev.iter_row(dst) {
                plan.eval(scratch, src as usize, dst, eid as usize);
                let row =
                    unsafe { std::slice::from_raw_parts_mut(shared.0.add(eid as usize * w), w) };
                row.copy_from_slice(&scratch[plan.root..plan.root + w]);
            }
        };
        if num_edges * w >= par_min() {
            let ranges = balanced_ranges(rev, rayon::current_num_threads() * 4);
            ranges.par_iter().for_each(|range| {
                let mut scratch = TrackedBuf::raw_in(mem_pool, plan.scratch_len);
                for &v in &rev.node_ids[range.clone()] {
                    per_vertex(scratch.as_mut_slice(), v);
                }
            });
        } else {
            let mut scratch = TrackedBuf::raw_in(mem_pool, plan.scratch_len);
            for &v in &rev.node_ids {
                per_vertex(scratch.as_mut_slice(), v);
            }
        }
    }
    Tensor::from_buf(Shape::Mat(num_edges, w), out)
}

/// Node-space elementwise binary with width-1 row broadcast. One pooled
/// output and one parallel driver serve both the equal-width and the
/// broadcast path; the per-row loop is specialised outside the hot loop so
/// the equal-width case stays branch-free per element.
fn node_binary(a: &Tensor, b: &Tensor, w: usize, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let n = a.rows();
    debug_assert_eq!(b.rows(), n);
    let (wa, wb) = (a.cols(), b.cols());
    let (ad, bd) = (a.data(), b.data());
    let mut out = TrackedBuf::raw(n * w);
    let dst = out.as_mut_slice();
    let row_body = |(i, drow): (usize, &mut [f32])| {
        let arow = &ad[i * wa..i * wa + wa];
        let brow = &bd[i * wb..i * wb + wb];
        match (wa == 1, wb == 1) {
            (false, false) => {
                for (d, (&x, &y)) in drow.iter_mut().zip(arow.iter().zip(brow)) {
                    *d = f(x, y);
                }
            }
            (true, false) => {
                for (d, &y) in drow.iter_mut().zip(brow) {
                    *d = f(arow[0], y);
                }
            }
            (false, true) => {
                for (d, &x) in drow.iter_mut().zip(arow) {
                    *d = f(x, brow[0]);
                }
            }
            (true, true) => {
                drow.fill(f(arow[0], brow[0]));
            }
        }
    };
    if n * w >= par_min() {
        dst.par_chunks_mut(w).enumerate().for_each(row_body);
    } else {
        dst.chunks_mut(w).enumerate().for_each(row_body);
    }
    Tensor::from_buf(Shape::Mat(n, w), out)
}

/// Result of executing a program.
pub struct ExecOutput {
    /// Output tensors, in program output order.
    pub outputs: Vec<Tensor>,
    /// Values of the requested `save` ids, in request order.
    pub saved: Vec<Tensor>,
}

/// Executes a vertex-centric program against a graph.
///
/// ```
/// use stgraph_graph::base::Snapshot;
/// use stgraph_seastar::ir::ProgramBuilder;
/// use stgraph_seastar::exec::execute;
/// use stgraph_tensor::Tensor;
///
/// // out_v = sum of in-neighbour features.
/// let mut b = ProgramBuilder::new();
/// let h = b.input(1);
/// let gathered = b.gather_src(h);
/// let out = b.agg_sum_dst(gathered);
/// let prog = b.finish(&[out]);
///
/// let graph = Snapshot::from_edges(3, &[(0, 2), (1, 2)]);
/// let x = Tensor::from_vec((3, 1), vec![1.0, 2.0, 4.0]);
/// let result = execute(&prog, &graph, &[&x], &[], &[], &[]);
/// assert_eq!(result.outputs[0].to_vec(), vec![0.0, 0.0, 3.0]);
/// ```
///
/// * `inputs` — differentiable node inputs, by slot.
/// * `node_consts` / `edge_consts` — constant tensors, by slot.
/// * `save` — forward IR ids whose values the caller wants back (the
///   backward program's saved set); edge-space ids trigger the edge
///   materialisation kernel.
///
/// Programs using mat-consts must go through [`execute_with_mats`].
pub fn execute(
    prog: &Program,
    graph: &dyn STGraphBase,
    inputs: &[&Tensor],
    node_consts: &[&Tensor],
    edge_consts: &[&Tensor],
    save: &[Id],
) -> ExecOutput {
    execute_with_mats(prog, graph, inputs, node_consts, edge_consts, &[], save)
}

/// [`execute`] with mat-const slots filled: `mat_consts[i]` must match
/// `prog.mat_const_dims[i]`. `MatmulConst`/`MatmulConstT` run as dense
/// tensor matmuls; `AggMatmulDst`/`AggMatmulSrc` run the fused
/// aggregate-into-GEMM kernel ([`run_agg_matmul`]).
pub fn execute_with_mats(
    prog: &Program,
    graph: &dyn STGraphBase,
    inputs: &[&Tensor],
    node_consts: &[&Tensor],
    edge_consts: &[&Tensor],
    mat_consts: &[&Tensor],
    save: &[Id],
) -> ExecOutput {
    let n = graph.num_nodes();
    assert_eq!(inputs.len(), prog.input_widths.len(), "input slot count");
    assert_eq!(
        mat_consts.len(),
        prog.mat_const_dims.len(),
        "mat const slot count"
    );
    for (i, t) in mat_consts.iter().enumerate() {
        let (r, c) = prog.mat_const_dims[i];
        assert_eq!((t.rows(), t.cols()), (r, c), "mat const {i}: dims");
    }
    assert_eq!(
        node_consts.len(),
        prog.node_const_widths.len(),
        "node const slot count"
    );
    assert_eq!(
        edge_consts.len(),
        prog.edge_const_widths.len(),
        "edge const slot count"
    );
    for (i, t) in inputs.iter().enumerate() {
        assert_eq!(t.rows(), n, "input {i}: rows vs num_nodes");
        assert_eq!(t.cols(), prog.input_widths[i], "input {i}: width");
    }

    let mut values: Vec<Option<Tensor>> = vec![None; prog.len()];
    for (id, node) in prog.nodes.iter().enumerate() {
        if node.space == Space::Edge {
            continue; // fused into kernels
        }
        let w = node.width;
        let value = match node.op {
            Op::NodeInput(slot) => inputs[slot].clone(),
            Op::NodeConst(slot) => node_consts[slot].clone(),
            Op::AggSumDst(e) | Op::AggMaxDst(e) => {
                let plan = compile_edge_plan(prog, e, &values, edge_consts);
                let kind = if matches!(node.op, Op::AggSumDst(_)) {
                    AggKind::SumDst
                } else {
                    AggKind::MaxDst
                };
                run_aggregation(&plan, graph.reverse_csr(), kind, n)
            }
            Op::AggSumSrc(e) => {
                let plan = compile_edge_plan(prog, e, &values, edge_consts);
                run_aggregation(&plan, graph.csr(), AggKind::SumSrc, n)
            }
            Op::MatmulConst(a, s) => values[a].as_ref().unwrap().matmul(mat_consts[s]),
            Op::MatmulConstT(a, s) => values[a]
                .as_ref()
                .unwrap()
                .matmul(&mat_consts[s].transpose()),
            Op::AggMatmulDst(e, s) => {
                let plan = compile_edge_plan(prog, e, &values, edge_consts);
                run_agg_matmul(
                    &plan,
                    graph.reverse_csr(),
                    AggKind::SumDst,
                    n,
                    mat_consts[s],
                )
            }
            Op::AggMatmulSrc(e, s) => {
                let plan = compile_edge_plan(prog, e, &values, edge_consts);
                run_agg_matmul(&plan, graph.csr(), AggKind::SumSrc, n, mat_consts[s])
            }
            Op::Add(a, b) => node_binary(
                values[a].as_ref().unwrap(),
                values[b].as_ref().unwrap(),
                w,
                |x, y| x + y,
            ),
            Op::Sub(a, b) => node_binary(
                values[a].as_ref().unwrap(),
                values[b].as_ref().unwrap(),
                w,
                |x, y| x - y,
            ),
            Op::Mul(a, b) => node_binary(
                values[a].as_ref().unwrap(),
                values[b].as_ref().unwrap(),
                w,
                |x, y| x * y,
            ),
            Op::Div(a, b) => node_binary(
                values[a].as_ref().unwrap(),
                values[b].as_ref().unwrap(),
                w,
                |x, y| x / y,
            ),
            Op::Scale(a, c) => values[a].as_ref().unwrap().mul_scalar(c),
            Op::LeakyRelu(a, s) => values[a].as_ref().unwrap().leaky_relu(s),
            Op::LeakyReluGrad(g, x, s) => node_binary(
                values[g].as_ref().unwrap(),
                values[x].as_ref().unwrap(),
                w,
                move |gv, xv| gv * if xv >= 0.0 { 1.0 } else { s },
            ),
            Op::Exp(a) => values[a].as_ref().unwrap().exp(),
            Op::Sigmoid(a) => values[a].as_ref().unwrap().sigmoid(),
            Op::Tanh(a) => values[a].as_ref().unwrap().tanh(),
            Op::ReduceFeat(a) => {
                let t = values[a].as_ref().unwrap();
                t.sum_axis1().reshape(Shape::Mat(t.rows(), 1))
            }
            Op::BroadcastFeat(a, bw) => {
                let t = values[a].as_ref().unwrap();
                let src = t.data();
                let mut out = TrackedBuf::raw(t.rows() * bw);
                let dst = out.as_mut_slice();
                for i in 0..t.rows() {
                    dst[i * bw..(i + 1) * bw].fill(src[i]);
                }
                Tensor::from_buf(Shape::Mat(t.rows(), bw), out)
            }
            Op::EdgeConst(_) | Op::GatherSrc(_) | Op::GatherDst(_) => {
                unreachable!("edge-space op reached node evaluation")
            }
        };
        values[id] = Some(value);
    }

    let saved = save
        .iter()
        .map(|&id| match prog.node(id).space {
            Space::Node => values[id].as_ref().expect("saved node value").clone(),
            Space::Edge => {
                let plan = compile_edge_plan(prog, id, &values, edge_consts);
                materialize_edge_value(&plan, graph.reverse_csr(), graph.num_edges())
            }
        })
        .collect();

    let outputs = prog
        .outputs
        .iter()
        .map(|&o| values[o].as_ref().expect("output value").clone())
        .collect();
    ExecOutput { outputs, saved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{gcn_aggregation, ProgramBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph_graph::base::{dense_adjacency, gcn_norm, Snapshot};

    fn diamond() -> Snapshot {
        Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn plain_copy_aggregation_sums_in_neighbours() {
        // out_v = sum of h_u over in-neighbours u.
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let g = b.gather_src(h);
        let out = b.agg_sum_dst(g);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let x = Tensor::from_vec((4, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[], &[]);
        // node1 <- node0; node2 <- node0; node3 <- node1 + node2.
        assert_eq!(
            r.outputs[0].to_vec(),
            vec![0.0, 0.0, 1.0, 2.0, 1.0, 2.0, 8.0, 10.0]
        );
    }

    #[test]
    fn agg_sum_src_sums_out_neighbours() {
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let g = b.gather_dst(h);
        let out = b.agg_sum_src(g);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let x = Tensor::from_vec((4, 1), vec![10.0, 20.0, 30.0, 40.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[], &[]);
        // node0 -> {1,2}: 50; node1 -> {3}: 40; node2 -> {3}: 40; node3: 0.
        assert_eq!(r.outputs[0].to_vec(), vec![50.0, 40.0, 40.0, 0.0]);
    }

    #[test]
    fn agg_max_takes_row_max() {
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let g = b.gather_src(h);
        let out = b.agg_max_dst(g);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let x = Tensor::from_vec((4, 1), vec![-5.0, -1.0, -2.0, 0.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[], &[]);
        // node3's in-nbrs {1,2}: max(-1,-2) = -1. Isolated (node0): 0.
        assert_eq!(r.outputs[0].to_vec(), vec![0.0, -5.0, -5.0, -1.0]);
    }

    #[test]
    fn gcn_matches_dense_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let snap = Snapshot::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (2, 5),
                (1, 1),
            ],
        );
        let f = 4;
        let x = Tensor::rand_uniform((6, f), -1.0, 1.0, &mut rng);
        let prog = gcn_aggregation(f);
        let norm = gcn_norm(&snap.in_degrees);
        let norm_t = Tensor::from_vec((6, 1), norm.clone());
        let got = execute(&prog, &snap, &[&x], &[&norm_t], &[], &[])
            .outputs
            .remove(0);
        // Dense oracle: out = N (A^T + I) N X  with N = diag(norm).
        let a = dense_adjacency(&snap);
        let n = 6;
        let mut want = vec![0.0f32; n * f];
        for v in 0..n {
            for u in 0..n {
                let w_uv = a[u][v]; // edge u -> v
                if w_uv != 0.0 {
                    for j in 0..f {
                        want[v * f + j] += norm[v] * w_uv * norm[u] * x.at(u, j);
                    }
                }
            }
            for j in 0..f {
                want[v * f + j] += norm[v] * norm[v] * x.at(v, j);
            }
        }
        let want = Tensor::from_vec((n, f), want);
        assert!(
            got.approx_eq(&want, 1e-4),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn gapped_csr_execution_skips_spaces() {
        use stgraph_graph::csr::{Csr, SPACE};
        // Same diamond but with gaps in the out-CSR (as GPMA produces).
        let csr = Csr::from_parts(
            vec![0, 3, 5, 7, 8],
            vec![1, SPACE, 2, 3, SPACE, SPACE, 3, SPACE],
            vec![0, 9, 1, 2, 9, 9, 3, 9],
        );
        let snap = Snapshot::from_csr(csr);
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let g = b.gather_dst(h);
        let out = b.agg_sum_src(g);
        let prog = b.finish(&[out]);
        let x = Tensor::from_vec((4, 1), vec![10.0, 20.0, 30.0, 40.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[], &[]);
        assert_eq!(r.outputs[0].to_vec(), vec![50.0, 40.0, 40.0, 0.0]);
    }

    #[test]
    fn saved_edge_value_materialises_by_eid() {
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let gs = b.gather_src(h);
        let gd = b.gather_dst(h);
        let prod = b.mul(gs, gd);
        let out = b.agg_sum_dst(prod);
        let prog = b.finish(&[out]);
        let prod_id = prog
            .nodes
            .iter()
            .position(|nd| matches!(nd.op, Op::Mul(_, _)))
            .unwrap();
        let snap = diamond();
        let x = Tensor::from_vec((4, 1), vec![2.0, 3.0, 5.0, 7.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[], &[prod_id]);
        // Edge e labelled by canonical order: (0,1)=6, (0,2)=10, (1,3)=21, (2,3)=35.
        assert_eq!(r.saved[0].to_vec(), vec![6.0, 10.0, 21.0, 35.0]);
        assert_eq!(r.outputs[0].to_vec(), vec![0.0, 6.0, 10.0, 56.0]);
    }

    #[test]
    fn edge_const_loads_by_eid() {
        let mut b = ProgramBuilder::new();
        let h = b.input(1);
        let wts = b.edge_const(1);
        let gs = b.gather_src(h);
        let weighted = b.mul(gs, wts);
        let out = b.agg_sum_dst(weighted);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let x = Tensor::ones((4, 1));
        let w = Tensor::from_vec((4, 1), vec![1.0, 10.0, 100.0, 1000.0]);
        let r = execute(&prog, &snap, &[&x], &[], &[&w], &[]);
        assert_eq!(r.outputs[0].to_vec(), vec![0.0, 1.0, 10.0, 1100.0]);
    }

    #[test]
    fn sigmoid_tanh_in_kernels_match_node_space() {
        // Edge-space sigmoid/tanh inside a kernel == node-space math.
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let g = b.gather_src(h);
        let sg = b.sigmoid(g);
        let tg = b.tanh(sg);
        let out = b.agg_sum_dst(tg);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let x = Tensor::rand_uniform((4, 2), -2.0, 2.0, &mut rng);
        let got = execute(&prog, &snap, &[&x], &[], &[], &[])
            .outputs
            .remove(0);
        // Oracle via node-space transforms + plain copy aggregation.
        let tx = x.sigmoid().tanh();
        let mut want = vec![0.0f32; 8];
        for v in 0..4 {
            for (u, _) in snap.reverse_csr.iter_row(v) {
                for j in 0..2 {
                    want[v * 2 + j] += tx.at(u as usize, j);
                }
            }
        }
        assert!(got.approx_eq(&Tensor::from_vec((4, 2), want), 1e-5));
    }

    #[test]
    #[should_panic(expected = "rows vs num_nodes")]
    fn wrong_input_rows_panics() {
        let prog = gcn_aggregation(2);
        let snap = diamond();
        let x = Tensor::zeros((3, 2));
        let norm = Tensor::zeros((4, 1));
        let _ = execute(&prog, &snap, &[&x], &[&norm], &[], &[]);
    }

    /// `agg_sum_dst` + `matmul_const`, with a trailing matmul on a second
    /// branch so the program also exercises the unfused `MatmulConst` arm.
    fn agg_then_matmul_program(f: usize, m: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let h = b.input(f);
        let w = b.mat_const(f, m);
        let g = b.gather_src(h);
        let agg = b.agg_sum_dst(g);
        let aw = b.matmul_const(agg, w);
        let hw = b.matmul_const(h, w);
        let out = b.add(aw, hw);
        b.finish(&[out])
    }

    #[test]
    fn fused_agg_matmul_is_bitwise_equal_to_unfused() {
        let prog = agg_then_matmul_program(3, 5);
        let (fused, _) = prog.fuse_agg_matmul(&[]);
        assert!(fused
            .nodes
            .iter()
            .any(|nd| matches!(nd.op, Op::AggMatmulDst(..))));
        let snap = diamond(); // node 0 has no in-edges: covers the zero row
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let x = Tensor::rand_uniform((4, 3), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((3, 5), -1.0, 1.0, &mut rng);
        let plain = execute_with_mats(&prog, &snap, &[&x], &[], &[], &[&w], &[])
            .outputs
            .remove(0);
        let fast = execute_with_mats(&fused, &snap, &[&x], &[], &[], &[&w], &[])
            .outputs
            .remove(0);
        assert_eq!(plain.to_vec(), fast.to_vec(), "fusion must be bitwise");
    }

    #[test]
    fn fused_agg_matmul_src_matches_unfused() {
        let mut b = ProgramBuilder::new();
        let h = b.input(2);
        let w = b.mat_const(2, 3);
        let g = b.gather_dst(h);
        let agg = b.agg_sum_src(g);
        let out = b.matmul_const(agg, w);
        let prog = b.finish(&[out]);
        let (fused, _) = prog.fuse_agg_matmul(&[]);
        assert!(fused
            .nodes
            .iter()
            .any(|nd| matches!(nd.op, Op::AggMatmulSrc(..))));
        let snap = diamond(); // node 3 has no out-edges: covers the zero row
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let x = Tensor::rand_uniform((4, 2), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((2, 3), -1.0, 1.0, &mut rng);
        let plain = execute_with_mats(&prog, &snap, &[&x], &[], &[], &[&w], &[])
            .outputs
            .remove(0);
        let fast = execute_with_mats(&fused, &snap, &[&x], &[], &[], &[&w], &[])
            .outputs
            .remove(0);
        assert_eq!(plain.to_vec(), fast.to_vec());
    }

    #[test]
    fn matmul_const_t_is_matmul_by_transpose() {
        let mut b = ProgramBuilder::new();
        let h = b.input(4);
        let w = b.mat_const(3, 4);
        let out = b.matmul_const_t(h, w);
        let prog = b.finish(&[out]);
        let snap = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let x = Tensor::rand_uniform((4, 4), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((3, 4), -1.0, 1.0, &mut rng);
        let got = execute_with_mats(&prog, &snap, &[&x], &[], &[], &[&w], &[])
            .outputs
            .remove(0);
        assert_eq!(got.to_vec(), x.matmul(&w.transpose()).to_vec());
    }

    #[test]
    #[should_panic(expected = "mat const slot count")]
    fn missing_mat_const_panics() {
        let prog = agg_then_matmul_program(2, 2);
        let snap = diamond();
        let x = Tensor::zeros((4, 2));
        let _ = execute(&prog, &snap, &[&x], &[], &[], &[]);
    }
}
