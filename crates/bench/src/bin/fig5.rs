//! Figure 5: per-epoch time vs feature size for the five static-temporal
//! datasets, STGraph vs PyG-T (TGCN, node regression, MSE).

use stgraph_bench::{
    print_table, run_static, write_json, BenchScale, Framework, Row, StaticConfig,
};

fn main() {
    let scale = BenchScale::from_env();
    let feature_sizes = [8usize, 16, 32, 64];
    let datasets = ["WVM", "WO", "HC", "MB", "PM"];
    let mut rows = Vec::new();
    for ds in datasets {
        for &f in &feature_sizes {
            let cfg = StaticConfig::new(ds, f, 10);
            for fw in [Framework::PygT, Framework::StGraph] {
                let r = run_static(&cfg, fw, scale);
                eprintln!("done {ds} F={f} {} ({:.1} ms)", fw.name(), r.epoch_ms);
                rows.push(Row {
                    dataset: ds.into(),
                    series: fw.name().into(),
                    x: f as f64,
                    result: r,
                });
            }
        }
    }
    print_table(
        "Figure 5: per-epoch time vs feature size (static-temporal)",
        "feat",
        &rows,
        "pygt",
    );
    write_json("fig5", &rows);
}
