//! Figure 9: percentage breakdown of STGraph-GPMA's total processing time
//! into GNN compute and graph-update time, per feature size.

use stgraph_bench::{run_dynamic, write_json, BenchScale, DynamicConfig, DynamicVariant, Row};

fn main() {
    let scale = BenchScale::from_env();
    let feature_sizes = [8usize, 16, 32, 64, 128];
    let datasets = ["WT", "SU", "SO", "MO", "RT"];
    let mut rows = Vec::new();
    println!("Figure 9: STGraph-GPMA time breakdown (GNN compute vs graph update)");
    println!(
        "{:<6} {:>6} {:>12} {:>10} {:>10}",
        "data", "feat", "epoch_ms", "gnn_%", "update_%"
    );
    for ds in datasets {
        for &f in &feature_sizes {
            let cfg = DynamicConfig::new(ds, f, 5.0);
            let r = run_dynamic(&cfg, DynamicVariant::Gpma, scale);
            println!(
                "{:<6} {:>6} {:>12.2} {:>9.1}% {:>9.1}%",
                ds,
                f,
                r.epoch_ms,
                100.0 * r.gnn_fraction,
                100.0 * (1.0 - r.gnn_fraction)
            );
            rows.push(Row {
                dataset: ds.into(),
                series: "stgraph-gpma".into(),
                x: f as f64,
                result: r,
            });
        }
    }
    write_json("fig9", &rows);
}
