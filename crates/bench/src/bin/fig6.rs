//! Figure 6: memory consumption vs sequence length for the five
//! static-temporal datasets at feature size 8, STGraph vs PyG-T.

use stgraph_bench::{
    print_table, run_static, write_json, BenchScale, Framework, Row, StaticConfig,
};

fn main() {
    // Memory figure: run un-pooled so live/peak bytes are true working-set
    // sizes, not inflated by cached workspace buffers (see stgraph_tensor::pool).
    stgraph_tensor::pool::force_disable(true);
    let mut scale = BenchScale::from_env();
    // Sequence-length sweep needs enough timestamps to matter.
    scale.timestamps = scale.timestamps.max(40);
    let seq_lens = [5usize, 10, 20, 40];
    let datasets = ["WVM", "WO", "HC", "MB", "PM"];
    let mut rows = Vec::new();
    for ds in datasets {
        for &s in &seq_lens {
            let cfg = StaticConfig::new(ds, 8, s);
            for fw in [Framework::PygT, Framework::StGraph] {
                let r = run_static(&cfg, fw, scale);
                eprintln!(
                    "done {ds} seq={s} {} ({:.1} MiB)",
                    fw.name(),
                    r.peak_bytes as f64 / 1048576.0
                );
                rows.push(Row {
                    dataset: ds.into(),
                    series: fw.name().into(),
                    x: s as f64,
                    result: r,
                });
            }
        }
    }
    print_table(
        "Figure 6: peak memory vs sequence length (static-temporal, feature size 8)",
        "seqlen",
        &rows,
        "pygt",
    );
    write_json("fig6", &rows);
}
