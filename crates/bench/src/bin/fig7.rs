//! Figure 7: per-epoch time vs feature size for the five DTDGs at 5%
//! snapshot change — STGraph-Naive, STGraph-GPMA and PyG-T (TGCN, link
//! prediction, BCE-with-logits).

use stgraph_bench::{
    print_table, run_dynamic, write_json, BenchScale, DynamicConfig, DynamicVariant, Row,
};

fn main() {
    let scale = BenchScale::from_env();
    let feature_sizes = [8usize, 16, 32, 64];
    let datasets = ["WT", "SU", "SO", "MO", "RT"];
    let mut rows = Vec::new();
    for ds in datasets {
        for &f in &feature_sizes {
            let cfg = DynamicConfig::new(ds, f, 5.0);
            for v in [
                DynamicVariant::PygT,
                DynamicVariant::Naive,
                DynamicVariant::Gpma,
            ] {
                let r = run_dynamic(&cfg, v, scale);
                eprintln!("done {ds} F={f} {} ({:.1} ms)", v.name(), r.epoch_ms);
                rows.push(Row {
                    dataset: ds.into(),
                    series: v.name().into(),
                    x: f as f64,
                    result: r,
                });
            }
        }
    }
    print_table(
        "Figure 7: per-epoch time vs feature size (DTDG, 5% change)",
        "feat",
        &rows,
        "pygt",
    );
    write_json("fig7", &rows);
}
