//! Regenerates Table II: the dataset summary, printing both the paper's
//! reported sizes and the sizes our generators actually produce (at
//! benchmark scale for the dynamic half).

use stgraph_bench::BenchScale;
use stgraph_datasets::{load_dynamic, load_static, table2, GraphKind};
use stgraph_graph::base::STGraphBase;

fn main() {
    let scale = BenchScale::from_env();
    println!("Table II: Summary of Benchmarking Datasets");
    println!(
        "{:<5} {:<24} {:>10} {:>10} {:>9} | {:>12} {:>12}",
        "S.No", "Dataset", "# Nodes", "# Edges", "Type", "gen nodes", "gen edges"
    );
    for (i, info) in table2().iter().enumerate() {
        let (gn, gm, kind) = match info.kind {
            GraphKind::StaticTemporal => {
                let d = load_static(info.name, 4, 4);
                (d.graph.num_nodes(), d.graph.num_edges(), "Static")
            }
            GraphKind::Dynamic => {
                let d = load_dynamic(info.name, scale.scale);
                (d.num_nodes, d.num_events(), "Dynamic")
            }
        };
        println!(
            "{:<5} {:<24} {:>10} {:>10} {:>9} | {:>12} {:>12}",
            i + 1,
            format!("{} ({})", info.name, info.code),
            info.num_nodes,
            info.num_edges,
            kind,
            gn,
            gm
        );
    }
    println!("\n(dynamic generators run at 1/{} of Table II size; set STGRAPH_BENCH_SCALE=1 for full size)", scale.scale);
}
