//! Table III: max/avg speed-up and memory improvement of the STGraph
//! variants over PyG-T, aggregated across datasets and sweep points.

use stgraph_bench::{
    run_dynamic, run_static, summarize, write_json, BenchScale, DynamicConfig, DynamicVariant,
    Framework, Row, StaticConfig,
};

fn main() {
    let scale = BenchScale::from_env();
    // Static aggregate: feature-size sweep on all five static datasets.
    let mut static_rows = Vec::new();
    for ds in ["WVM", "WO", "HC", "MB", "PM"] {
        for f in [8usize, 16, 32] {
            let cfg = StaticConfig::new(ds, f, 10);
            for fw in [Framework::PygT, Framework::StGraph] {
                let r = run_static(&cfg, fw, scale);
                eprintln!("static {ds} F={f} {}", fw.name());
                static_rows.push(Row {
                    dataset: ds.into(),
                    series: fw.name().into(),
                    x: f as f64,
                    result: r,
                });
            }
        }
    }
    // Dynamic aggregate: feature sweep at 5% plus pct sweep at F=8.
    let mut dyn_rows = Vec::new();
    for ds in ["WT", "SU", "SO", "MO", "RT"] {
        for f in [8usize, 32] {
            let cfg = DynamicConfig::new(ds, f, 5.0);
            for v in [
                DynamicVariant::PygT,
                DynamicVariant::Naive,
                DynamicVariant::Gpma,
            ] {
                let r = run_dynamic(&cfg, v, scale);
                eprintln!("dyn {ds} F={f} {}", v.name());
                dyn_rows.push(Row {
                    dataset: ds.into(),
                    series: v.name().into(),
                    x: f as f64,
                    result: r,
                });
            }
        }
        for p in [2.5f64, 10.0] {
            let cfg = DynamicConfig::new(ds, 8, p);
            for v in [
                DynamicVariant::PygT,
                DynamicVariant::Naive,
                DynamicVariant::Gpma,
            ] {
                let r = run_dynamic(&cfg, v, scale);
                eprintln!("dyn {ds} pct={p} {}", v.name());
                dyn_rows.push(Row {
                    dataset: ds.into(),
                    series: v.name().into(),
                    x: 1000.0 + p,
                    result: r,
                });
            }
        }
    }

    let (s_max, s_avg, m_max, m_avg) = summarize(&static_rows, "stgraph", "pygt");
    let (ns_max, ns_avg, nm_max, nm_avg) = summarize(&dyn_rows, "stgraph-naive", "pygt");
    let (gs_max, gs_avg, gm_max, gm_avg) = summarize(&dyn_rows, "stgraph-gpma", "pygt");

    println!("\nTable III: Improvement of STGraph variants over PyG-T");
    println!(
        "{:<36} {:>8} {:>8} {:>8}",
        "Metric", "Static", "Naive", "GPMA"
    );
    println!(
        "{:<36} {:>7.2}x {:>7.2}x {:>7.2}x",
        "Time Taken per epoch (max)", s_max, ns_max, gs_max
    );
    println!(
        "{:<36} {:>7.2}x {:>7.2}x {:>7.2}x",
        "Time Taken per epoch (avg)", s_avg, ns_avg, gs_avg
    );
    println!(
        "{:<36} {:>7.2}x {:>7.2}x {:>7.2}x",
        "Memory Consumed (max)", m_max, nm_max, gm_max
    );
    println!(
        "{:<36} {:>7.2}x {:>7.2}x {:>7.2}x",
        "Memory Consumed (avg)", m_avg, nm_avg, gm_avg
    );
    println!("\nPaper's Table III:            Static   Naive    GPMA");
    println!("Time (max):                    1.69x    1.65x    1.20x");
    println!("Time (avg):                    1.28x    1.22x    0.86x");
    println!("Memory (max):                  2.14x    1.10x    1.91x");
    println!("Memory (avg):                  1.30x    0.98x    1.23x");

    static_rows.extend(dyn_rows);
    write_json("table3", &static_rows);
}
