//! `shard_bench` — sharded vs single-store DTDG maintenance at scale.
//!
//! Drives the same closed loop a DTDG training epoch runs — apply an
//! update batch, refresh the queryable view, aggregate neighbour features
//! — against two storage arms over an identical synthetic stream:
//!
//! * **single**: one global [`Gpma`]; every batch re-derives the forward
//!   CSR (`csr_view`), re-counts nothing (in-degrees ride along), then
//!   transposes to the reverse CSR inside `Snapshot` and aggregates with
//!   [`dense_forward_sum`].
//! * **sharded K**: a [`ShardedGraph`] with K edge-cut shards storing
//!   in-neighbour rows directly in PMA order (reverse-first layout), so a
//!   view refresh is a per-shard slot scan — no transpose, no degree
//!   sort, no relabel — and the forward pass reads shard rows plus a
//!   gathered halo of ghost features.
//!
//! Reported per arm: build time, **update throughput** (edges/s through
//! apply + view refresh — i.e. updates made *queryable*, not just
//! buffered) and **epoch time** (apply + refresh + forward aggregation
//! per timestamp, the per-timestamp cost of Algorithm 1's outer loop).
//! Everything is single-process; with one core the sharded wins are
//! algorithmic (layout + locality), and extra cores only widen them
//! because shards apply and refresh independently.
//!
//! ```text
//! cargo run --release -p stgraph-bench --bin shard_bench -- \
//!     --nodes 10000000 --edges 30000000 --shards 1,2,4,8 --json BENCH_shard.json
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;
use stgraph_datasets::{community_stream, resolve_seed, SynthConfig, UpdateBatch, UpdateStream};
use stgraph_dyngraph::{dense_forward_sum, ShardedGraph};
use stgraph_graph::base::Snapshot;
use stgraph_pma::Gpma;
use stgraph_tensor::Tensor;

const HELP: &str = "shard_bench — sharded vs single-store update/epoch benchmark

Options:
  --nodes <n>        vertices (default 10000000)
  --edges <n>        seed edges (default 30000000)
  --batches <n>      update batches / timestamps (default 12)
  --batch-edges <n>  insertions per batch (default 100000)
  --delete-frac <f>  deletions per insertion (default 0.25)
  --features <n>     feature width for the forward pass (default 8)
  --communities <n>  generator communities (default 64)
  --shards <list>    comma-separated K values (default 1,2,4,8)
  --seed <n>         stream seed (default: STGRAPH_SEED, else 42)
  --json <path>      write the report there (default BENCH_shard.json)
  --help             this text";

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        if key == "--help" || key == "-h" {
            println!("{HELP}");
            std::process::exit(0);
        }
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("unexpected argument '{key}' (try --help)");
            std::process::exit(2);
        };
        let Some(value) = args.next() else {
            eprintln!("missing value for --{name}");
            std::process::exit(2);
        };
        out.insert(name.replace('-', "_"), value);
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: '{v}'");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// One measured arm.
#[derive(Serialize)]
struct ArmReport {
    arm: String,
    shards: usize,
    build_s: f64,
    /// Edges applied *and made queryable* per second.
    update_edges_per_s: f64,
    /// Apply + refresh + forward aggregation, per timestamp.
    epoch_s: f64,
    /// Forward aggregation alone, per timestamp.
    forward_s: f64,
    edges_final: usize,
    halo_edges: usize,
    edge_cut_ratio: f64,
    bytes: usize,
}

#[derive(Serialize)]
struct Report {
    nodes: usize,
    edges: usize,
    batches: usize,
    batch_edges: usize,
    delete_frac: f64,
    features: usize,
    communities: usize,
    seed: u64,
    arms: Vec<ArmReport>,
    /// Speedups of each sharded arm over the single-store arm.
    speedups: Vec<Speedup>,
}

/// update-throughput and epoch-time gain of one sharded arm.
#[derive(Serialize)]
struct Speedup {
    arm: String,
    update_throughput: f64,
    epoch_time: f64,
}

/// Pre-generates the update batches so every arm replays identical churn.
fn make_batches(
    cfg: &SynthConfig,
    batches: usize,
    batch_edges: usize,
    delete_frac: f64,
) -> Vec<UpdateBatch> {
    let mut churn_cfg = cfg.clone();
    churn_cfg.seed = cfg.seed ^ 0x0bad_5eed;
    churn_cfg.num_edges = batches * batch_edges;
    let mut us = UpdateStream::new(&churn_cfg, delete_frac, 1 << 20);
    let mut out = Vec::with_capacity(batches);
    while let Some(b) = us.next_batch(batch_edges) {
        out.push(b);
    }
    out
}

fn run_single(cfg: &SynthConfig, batches: &[UpdateBatch], feats: &Tensor) -> ArmReport {
    let n = cfg.num_nodes;
    let t0 = Instant::now();
    let mut g = Gpma::new(n);
    let mut chunk = Vec::with_capacity(1 << 22);
    let mut stream = community_stream(cfg);
    loop {
        chunk.clear();
        chunk.extend((&mut stream).take(1 << 22));
        if chunk.is_empty() {
            break;
        }
        g.insert_edges(&chunk);
    }
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!("single: built {} edges in {build_s:.1}s", g.num_edges());

    let mut applied_edges = 0usize;
    let mut update_s = 0.0f64;
    let mut forward_s = 0.0f64;
    let mut sink = 0.0f32;
    for (adds, dels) in batches {
        let t = Instant::now();
        g.insert_edges(adds);
        g.delete_edges(dels);
        // Make the batch queryable: forward CSR + reverse transpose.
        let (csr, in_deg) = g.csr_view();
        let snap = Snapshot::from_csr_with_in_degrees(csr, in_deg);
        update_s += t.elapsed().as_secs_f64();
        applied_edges += adds.len() + dels.len();
        let t = Instant::now();
        let out = dense_forward_sum(&snap, feats);
        forward_s += t.elapsed().as_secs_f64();
        sink += out.data()[0];
    }
    std::hint::black_box(sink);
    let steps = batches.len().max(1) as f64;
    ArmReport {
        arm: "single".into(),
        shards: 1,
        build_s,
        update_edges_per_s: applied_edges as f64 / update_s.max(1e-9),
        epoch_s: (update_s + forward_s) / steps,
        forward_s: forward_s / steps,
        edges_final: g.num_edges(),
        halo_edges: 0,
        edge_cut_ratio: 0.0,
        bytes: g.bytes(),
    }
}

fn run_sharded(cfg: &SynthConfig, k: usize, batches: &[UpdateBatch], feats: &Tensor) -> ArmReport {
    let t0 = Instant::now();
    let mut g = ShardedGraph::from_edge_stream(cfg.num_nodes, k, || community_stream(cfg));
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "sharded k={k}: built {} edges in {build_s:.1}s (cut {:.3})",
        g.num_edges(),
        g.edge_cut_ratio()
    );

    let mut applied_edges = 0usize;
    let mut update_s = 0.0f64;
    let mut forward_s = 0.0f64;
    let mut sink = 0.0f32;
    for (adds, dels) in batches {
        let t = Instant::now();
        g.apply_batch(adds, dels);
        let _ = g.halo_edges(); // forces the per-shard view refresh
        update_s += t.elapsed().as_secs_f64();
        applied_edges += adds.len() + dels.len();
        let t = Instant::now();
        let out = g.forward_sum(feats);
        forward_s += t.elapsed().as_secs_f64();
        sink += out.data()[0];
    }
    std::hint::black_box(sink);
    let steps = batches.len().max(1) as f64;
    ArmReport {
        arm: format!("sharded-k{k}"),
        shards: k,
        build_s,
        update_edges_per_s: applied_edges as f64 / update_s.max(1e-9),
        epoch_s: (update_s + forward_s) / steps,
        forward_s: forward_s / steps,
        edges_final: g.num_edges(),
        halo_edges: g.halo_edges(),
        edge_cut_ratio: g.edge_cut_ratio(),
        bytes: g.bytes(),
    }
}

fn main() {
    let args = parse_args();
    let nodes = get(&args, "nodes", 10_000_000usize);
    let edges = get(&args, "edges", 30_000_000usize);
    let batches_n = get(&args, "batches", 12usize);
    let batch_edges = get(&args, "batch_edges", 100_000usize);
    let delete_frac = get(&args, "delete_frac", 0.25f64);
    let features = get(&args, "features", 8usize);
    let communities = get(&args, "communities", 64usize);
    let seed = resolve_seed(args.get("seed").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --seed: '{v}'");
            std::process::exit(2);
        })
    }));
    let json_path = args
        .get("json")
        .cloned()
        .unwrap_or_else(|| "BENCH_shard.json".into());
    let shard_list: Vec<usize> = args
        .get("shards")
        .map(String::as_str)
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| s.trim().parse().expect("bad --shards entry"))
        .collect();

    let mut cfg = SynthConfig::new(nodes, edges, seed);
    cfg.communities = communities;
    println!(
        "shard_bench: {nodes} nodes, {edges} edges, {batches_n}x{batch_edges} update batches, \
         {features} features, K in {shard_list:?}"
    );

    let batches = make_batches(&cfg, batches_n, batch_edges, delete_frac);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfea7);
    let feats = Tensor::rand_uniform((nodes, features), -1.0, 1.0, &mut rng);

    let single = run_single(&cfg, &batches, &feats);
    println!(
        "single:      update {:>10.0} edges/s   epoch {:.3}s   forward {:.3}s",
        single.update_edges_per_s, single.epoch_s, single.forward_s
    );
    let mut arms = vec![single];
    for &k in &shard_list {
        let r = run_sharded(&cfg, k, &batches, &feats);
        println!(
            "sharded k={k}: update {:>10.0} edges/s   epoch {:.3}s   forward {:.3}s   \
             halo {}   cut {:.3}",
            r.update_edges_per_s, r.epoch_s, r.forward_s, r.halo_edges, r.edge_cut_ratio
        );
        arms.push(r);
    }

    let base_update = arms[0].update_edges_per_s;
    let base_epoch = arms[0].epoch_s;
    let speedups: Vec<Speedup> = arms
        .iter()
        .skip(1)
        .map(|a| Speedup {
            arm: a.arm.clone(),
            update_throughput: a.update_edges_per_s / base_update,
            epoch_time: base_epoch / a.epoch_s,
        })
        .collect();
    for s in &speedups {
        println!(
            "{}: {:.2}x update throughput, {:.2}x epoch time vs single-store",
            s.arm, s.update_throughput, s.epoch_time
        );
    }

    let report = Report {
        nodes,
        edges,
        batches: batches_n,
        batch_edges,
        delete_frac,
        features,
        communities,
        seed,
        arms,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&json_path, json + "\n").expect("write report");
    println!("wrote {json_path}");
}
