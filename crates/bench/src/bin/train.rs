//! `stgraph-train` — a command-line trainer over the whole library: pick a
//! dataset, a model, and the knobs, and it trains and reports.
//!
//! ```text
//! cargo run --release -p stgraph-bench --bin train -- \
//!     --dataset HC --model tgcn --hidden 32 --epochs 20
//! cargo run --release -p stgraph-bench --bin train -- \
//!     --dataset MO --task link --storage gpma --pct-change 5 --epochs 5
//! cargo run --release -p stgraph-bench --bin train -- --help
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use stgraph::backend::create_backend;
use stgraph::executor::{GraphSource, TemporalExecutor};
use stgraph::tgnn::{GConvGru, GConvLstm, RecurrentCell, Tgcn};
use stgraph::tgnn_ext::Dcrnn;
use stgraph::train::{
    eval_link_prediction, link_prediction_batches, train_epoch_link_prediction,
    train_epoch_node_regression, NodeRegressor,
};
use stgraph_ctdg::{CtdgConfig, CtdgWorkload, Strategy};
use stgraph_datasets::{info, load_dynamic, load_static, resolve_seed, GraphKind};
use stgraph_dyngraph::{DtdgGraph, DtdgSource, GpmaGraph, NaiveGraph, ShardedGraph};
use stgraph_graph::base::{STGraphBase, Snapshot};
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::optim::Adam;
use stgraph_tensor::Tensor;

const HELP: &str = "stgraph-train — train a TGNN on a Table II dataset

Options:
  --workload <dtdg|ctdg>  workload family (default dtdg). `ctdg` trains
                          TGN-style continuous-time link prediction on the
                          synthetic fraud-burst event stream; see the
                          continuous-time options below
  --dataset <name|code>   dataset (default HC); see `--bin table2`
  --task <auto|node|link> task (default: node for static, link for dynamic)
  --model <tgcn|gconvgru|gconvlstm|dcrnn>   temporal cell (default tgcn)
  --storage <naive|gpma|sharded>            DTDG storage (default gpma)
  --shards <k>            shard count for --storage sharded (default: the
                          STGRAPH_SHARDS environment variable, else 1)
  --backend <seastar|reference>             kernel backend (default seastar)
  --features <n>          feature size / lags (default 8)
  --hidden <n>            hidden width (default 32)
  --epochs <n>            training epochs (default 10)
  --seq-len <n>           Algorithm-1 sequence length (default 10)
  --timestamps <n>        supervised timestamps (default 40 static / 20 dynamic)
  --pct-change <f>        DTDG snapshot churn percent (default 5)
  --scale <n>             dynamic dataset size divisor (default 64)
  --lr <f>                Adam learning rate (default 0.01)
  --seed <n>              RNG seed (default: the STGRAPH_SEED environment
                          variable, else 42)
  --save <path>           write trained weights as an .stgc checkpoint; a
                          path without the .stgc extension is treated as a
                          checkpoint *directory*: every epoch saves a
                          rotated, sequence-numbered checkpoint there
  --keep-checkpoints <n>  retained checkpoints when --save is a directory
                          (default 3)
  --online-steps <n>      after link training, continue learning online over
                          the stream's update batches (one incremental step
                          + atomic weight publish per batch, up to n steps)
                          — the same train-while-serving loop `serve
                          --online` runs (default 0 = off)
  --trace <path>          enable tracing and write a Chrome trace_event JSON
                          timeline there (chrome://tracing / Perfetto)
  --help                  this text

Continuous-time options (--workload ctdg):
  --nodes <n>             vertices in the synthetic stream (default 2000)
  --events <n>            events in the synthetic stream (default 40000)
  --dim <n>               per-node memory width (default 32)
  --neighbors <k>         temporal neighbors per query (default 10)
  --batch-size <n>        events per batch (default 200)
  --strategy <recent|uniform>  neighbor sampling strategy (default recent)
  --resume                load the latest checkpoint from --save (which
                          must be a directory) and continue after its
                          recorded epoch; the loss trajectory matches an
                          uninterrupted run exactly";

fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        if key == "--help" || key == "-h" {
            println!("{HELP}");
            std::process::exit(0);
        }
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("unexpected argument '{key}' (try --help)");
            std::process::exit(2);
        };
        if name == "resume" {
            out.insert(name.to_string(), "1".to_string());
            continue;
        }
        let Some(value) = args.next() else {
            eprintln!("missing value for --{name}");
            std::process::exit(2);
        };
        out.insert(name.replace('-', "_"), value);
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: '{v}'");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn make_cell(
    model: &str,
    params: &mut ParamSet,
    features: usize,
    hidden: usize,
    rng: &mut ChaCha8Rng,
) -> Box<dyn RecurrentCell> {
    match model {
        "tgcn" => Box::new(Tgcn::new(params, "cell", features, hidden, rng)),
        "gconvgru" => Box::new(GConvGru::new(params, "cell", features, hidden, 2, rng)),
        "gconvlstm" => Box::new(GConvLstm::new(params, "cell", features, hidden, 2, rng)),
        "dcrnn" => Box::new(Dcrnn::new(params, "cell", features, hidden, 2, rng)),
        other => {
            eprintln!("unknown model '{other}' (try --help)");
            std::process::exit(2);
        }
    }
}

/// Where `--save` writes checkpoints: a single `.stgc` file at the end of
/// training, or (for a directory path) a rotated sequence with one
/// checkpoint per epoch, pruned to `--keep-checkpoints`.
enum Saver {
    Disabled,
    File(String),
    Dir(stgraph_serve::CheckpointManager),
}

impl Saver {
    fn from_args(path: Option<&str>, keep: usize) -> Saver {
        match path {
            None => Saver::Disabled,
            Some(p) if p.ends_with(".stgc") => Saver::File(p.to_string()),
            Some(p) => Saver::Dir(stgraph_serve::CheckpointManager::new(p, "model", keep)),
        }
    }

    /// Per-epoch rotated save (directory mode only). Save faults are
    /// retried inside the manager; a save that still fails only loses this
    /// epoch's snapshot, never the training run.
    fn epoch(&self, params: &ParamSet) {
        if let Saver::Dir(mgr) = self {
            if let Err(e) = mgr.save_model(params) {
                eprintln!("epoch checkpoint failed (training continues): {e}");
            }
        }
    }

    /// Final save: the single file, or one last rotated sequence entry.
    fn finish(&self, params: &ParamSet) {
        let result = match self {
            Saver::Disabled => return,
            Saver::File(path) => stgraph_serve::save_model(path, params).map(|()| path.clone()),
            Saver::Dir(mgr) => mgr.save_model(params).map(|p| p.display().to_string()),
        };
        match result {
            Ok(path) => println!("saved checkpoint to {path}"),
            Err(e) => {
                eprintln!("failed to save checkpoint: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Trains the continuous-time workload (`--workload ctdg`).
fn run_ctdg(args: &HashMap<String, String>, seed: u64) {
    let cfg = CtdgConfig {
        num_nodes: get(args, "nodes", 2000usize),
        num_events: get(args, "events", 40_000usize),
        dim: get(args, "dim", 32usize),
        k: get(args, "neighbors", 10usize),
        batch_size: get(args, "batch_size", 200usize),
        epochs: get(args, "epochs", 5usize),
        lr: get(args, "lr", 0.01f32),
        strategy: get(args, "strategy", Strategy::Recent),
        seed,
    };
    let resume = args.contains_key("resume");
    let manager = match args.get("save") {
        Some(p) if p.ends_with(".stgc") => {
            eprintln!("--workload ctdg checkpoints are rotated; pass a directory to --save");
            std::process::exit(2);
        }
        Some(p) => Some(stgraph_serve::CheckpointManager::new(
            p,
            "ctdg",
            get(args, "keep_checkpoints", 3usize),
        )),
        None => None,
    };
    if resume && manager.is_none() {
        eprintln!("--resume needs --save <dir> to load from");
        std::process::exit(2);
    }
    println!(
        "ctdg: {} nodes, {} events, dim {}, k {} ({}), batch {}, seed {seed}",
        cfg.num_nodes,
        cfg.num_events,
        cfg.dim,
        cfg.k,
        cfg.strategy.name(),
        cfg.batch_size
    );
    let mut w = CtdgWorkload::new(cfg);
    let (tr, va, te) = {
        let start = std::time::Instant::now();
        let report = match &manager {
            Some(m) => w.run_with_checkpoints(m, resume),
            None => w.run(),
        };
        for e in &report.epochs {
            println!(
                "epoch {:>3}: BCE {:.5}, val ROC-AUC {:.4}",
                e.epoch + 1,
                e.loss,
                e.val_auc
            );
        }
        println!(
            "trained {} epochs in {:.2}s — test ROC-AUC {:.4}",
            report.epochs.len(),
            start.elapsed().as_secs_f32(),
            report.test_auc
        );
        report.split
    };
    println!("chronological split: {tr} train / {va} val / {te} test events");
}

fn write_trace(path: &str) {
    match stgraph_telemetry::export::write_chrome_trace(path) {
        Ok(()) => println!("wrote Chrome trace to {path}"),
        Err(e) => {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let seed = resolve_seed(args.get("seed").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --seed: '{v}'");
            std::process::exit(2);
        })
    }));
    let trace_path = args.get("trace").cloned();
    if trace_path.is_some() {
        stgraph_telemetry::set_enabled(true);
    }
    if args.get("workload").map(String::as_str) == Some("ctdg") {
        run_ctdg(&args, seed);
        if let Some(path) = &trace_path {
            write_trace(path);
        }
        return;
    }
    let dataset = args
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("HC")
        .to_string();
    let meta = info(&dataset);
    let task = match args.get("task").map(String::as_str).unwrap_or("auto") {
        "auto" => {
            if meta.kind == GraphKind::StaticTemporal {
                "node"
            } else {
                "link"
            }
        }
        t @ ("node" | "link") => t,
        other => {
            eprintln!("unknown task '{other}'");
            std::process::exit(2);
        }
    };
    let model = args
        .get("model")
        .map(String::as_str)
        .unwrap_or("tgcn")
        .to_string();
    let backend = args
        .get("backend")
        .map(String::as_str)
        .unwrap_or("seastar")
        .to_string();
    let features = get(&args, "features", 8usize);
    let hidden = get(&args, "hidden", 32usize);
    let epochs = get(&args, "epochs", 10usize);
    let seq_len = get(&args, "seq_len", 10usize);
    let lr = get(&args, "lr", 0.01f32);
    let save_path = args.get("save").cloned();
    let keep = get(&args, "keep_checkpoints", 3usize);
    let saver = Saver::from_args(save_path.as_deref(), keep);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    println!(
        "dataset: {} ({:?}), task: {task}, model: {model}, backend: {backend}",
        meta.name, meta.kind
    );

    match task {
        "node" => {
            assert_eq!(
                meta.kind,
                GraphKind::StaticTemporal,
                "node regression needs a static-temporal dataset"
            );
            let timestamps = get(&args, "timestamps", 40usize);
            let ds = load_static(meta.name, features, timestamps);
            println!(
                "graph: {} nodes, {} edges; {} timestamps, {} lags",
                ds.graph.num_nodes(),
                ds.graph.num_edges(),
                ds.num_timestamps(),
                ds.lags
            );
            let snap = Snapshot::from_edges(ds.graph.num_nodes(), &ds.graph.edges);
            let exec = TemporalExecutor::new(create_backend(&backend), GraphSource::Static(snap));
            let mut params = ParamSet::new();
            let cell = make_cell(&model, &mut params, features, hidden, &mut rng);
            let regressor = NodeRegressor::new(&mut params, cell, 1, &mut rng);
            println!("parameters: {}", params.numel());
            let trained = params.clone();
            let mut opt = Adam::new(params, lr);
            let start = std::time::Instant::now();
            for epoch in 1..=epochs {
                let loss = train_epoch_node_regression(
                    &regressor,
                    &exec,
                    &mut opt,
                    &ds.features,
                    &ds.targets,
                    seq_len,
                );
                println!("epoch {epoch:>3}: MSE {loss:.5}");
                saver.epoch(&trained);
            }
            println!(
                "trained {epochs} epochs in {:.2}s",
                start.elapsed().as_secs_f32()
            );
            saver.finish(&trained);
        }
        "link" => {
            assert_eq!(
                meta.kind,
                GraphKind::Dynamic,
                "link prediction needs a dynamic dataset"
            );
            let scale = get(&args, "scale", 64usize);
            let pct = get(&args, "pct_change", 5.0f64);
            let max_t = get(&args, "timestamps", 20usize);
            let raw = load_dynamic(meta.name, scale);
            let mut src = DtdgSource::from_temporal_edges(raw.num_nodes, &raw.edges, pct);
            src.snapshots.truncate(max_t);
            println!(
                "DTDG: {} nodes, {} timestamps, mean churn {:.1}%",
                src.num_nodes,
                src.num_timestamps(),
                src.mean_pct_change()
            );
            let storage = args.get("storage").map(String::as_str).unwrap_or("gpma");
            let provider: Rc<RefCell<dyn DtdgGraph>> = match storage {
                "naive" => Rc::new(RefCell::new(NaiveGraph::new(&src))),
                "gpma" => Rc::new(RefCell::new(GpmaGraph::new(&src))),
                "sharded" => {
                    let k = get(&args, "shards", stgraph_dyngraph::shards_from_env());
                    println!("sharded storage: {k} shards");
                    Rc::new(RefCell::new(ShardedGraph::from_source(&src, k)))
                }
                other => {
                    eprintln!("unknown storage '{other}'");
                    std::process::exit(2);
                }
            };
            let exec =
                TemporalExecutor::new(create_backend(&backend), GraphSource::Dynamic(provider));
            let mut params = ParamSet::new();
            let cell = make_cell(&model, &mut params, features, hidden, &mut rng);
            println!("parameters: {}", params.numel());
            let trained = params.clone();
            let mut opt = Adam::new(params, lr);
            let feats = Tensor::rand_uniform((src.num_nodes, features), -1.0, 1.0, &mut rng);
            let batches = link_prediction_batches(&src, 512, seed);
            let start = std::time::Instant::now();
            for epoch in 1..=epochs {
                let loss =
                    train_epoch_link_prediction(&cell, &exec, &mut opt, &feats, &batches, seq_len);
                println!("epoch {epoch:>3}: BCE {loss:.5}");
                saver.epoch(&trained);
            }
            let (loss, auc, acc) = eval_link_prediction(&cell, &exec, &feats, &batches, seq_len);
            println!(
                "trained {epochs} epochs in {:.2}s — eval BCE {loss:.4}, ROC-AUC {auc:.4}, accuracy {acc:.4}",
                start.elapsed().as_secs_f32()
            );
            saver.finish(&trained);
            let online_steps = get(&args, "online_steps", 0usize);
            if online_steps > 0 {
                run_online_continuation(
                    &model,
                    &src,
                    features,
                    hidden,
                    seed,
                    &trained,
                    &feats,
                    online_steps,
                );
            }
        }
        _ => unreachable!(),
    }

    if let Some(path) = &trace_path {
        write_trace(path);
    }
}

/// `--online-steps`: continue learning over the stream's update batches
/// with the same train-while-serving loop `serve --online` runs — one
/// incremental gradient step on a replay sample plus an atomic weight
/// publish per applied batch. Demonstrates drift correction without
/// standing up the serving stack.
#[allow(clippy::too_many_arguments)] // a CLI leaf, not a library API
fn run_online_continuation(
    model: &str,
    src: &DtdgSource,
    features: usize,
    hidden: usize,
    seed: u64,
    trained: &ParamSet,
    feats: &Tensor,
    max_steps: usize,
) {
    use stgraph_serve::online::{OnlineConfig, OnlineTrainer};
    use stgraph_serve::LiveGraph;

    let cfg = OnlineConfig {
        seed,
        ..OnlineConfig::default()
    };
    let Some(mut trainer) = OnlineTrainer::new(model, features, hidden, src.num_nodes, cfg) else {
        eprintln!("online: unknown model '{model}'");
        return;
    };
    trainer
        .load_weights(&trained.state_dict())
        .expect("trained weights match the online cell");
    let mut live = LiveGraph::from_source(src);
    for batch in src.diffs_from(0) {
        if trainer.steps() >= max_steps as u64 {
            break;
        }
        live.apply(&batch);
        let (_, snap) = live.snapshot();
        match trainer.on_advance(live.generation(), &batch, snap, feats) {
            Ok(Some(p)) => println!(
                "online step {:>3}: BCE {:.5} (weight gen {})",
                trainer.steps(),
                trainer.stats().last_loss,
                p.weight_generation
            ),
            Ok(None) => {}
            Err(e) => {
                eprintln!("online: halted ({e})");
                break;
            }
        }
    }
    let s = trainer.stats();
    println!(
        "online: {} steps, weight generation {}, replay {} edges",
        s.steps, s.weight_generation, s.replay_len
    );
}
