//! Figure 8: memory consumption vs percentage change between snapshots for
//! the five DTDGs — STGraph-Naive, STGraph-GPMA and PyG-T.

use stgraph_bench::{
    print_table, run_dynamic, write_json, BenchScale, DynamicConfig, DynamicVariant, Row,
};

fn main() {
    // Memory figure: run un-pooled so live/peak bytes are true working-set
    // sizes, not inflated by cached workspace buffers (see stgraph_tensor::pool).
    stgraph_tensor::pool::force_disable(true);
    let scale = BenchScale::from_env();
    let pcts = [1.0f64, 2.5, 5.0, 10.0];
    let datasets = ["WT", "SU", "SO", "MO", "RT"];
    let mut rows = Vec::new();
    for ds in datasets {
        for &p in &pcts {
            let mut cfg = DynamicConfig::new(ds, 8, p);
            // Smaller % change => more snapshots for the same stream; the
            // snapshot count is exactly what drives Naive/PyG-T memory, so
            // do not truncate it here.
            cfg.max_timestamps = 500;
            for v in [
                DynamicVariant::PygT,
                DynamicVariant::Naive,
                DynamicVariant::Gpma,
            ] {
                let r = run_dynamic(&cfg, v, scale);
                eprintln!(
                    "done {ds} pct={p} {} ({:.1} MiB)",
                    v.name(),
                    r.peak_bytes as f64 / 1048576.0
                );
                rows.push(Row {
                    dataset: ds.into(),
                    series: v.name().into(),
                    x: p,
                    result: r,
                });
            }
        }
    }
    print_table(
        "Figure 8: peak memory vs % change between snapshots (DTDG)",
        "pct",
        &rows,
        "pygt",
    );
    write_json("fig8", &rows);
}
