//! Kernel microbenchmarks tracking the perf trajectory of the SIMD /
//! fusion / quantization layer: GEMM row microkernels (SIMD vs scalar),
//! aggregation-into-GEMM fusion (fused vs materialize-then-GEMM), and the
//! i8 quantized matmul. Prints a table and writes `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run --release -p stgraph-bench --bin kernels
//! STGRAPH_NO_SIMD=1 cargo run --release -p stgraph-bench --bin kernels
//! ```
//!
//! The SIMD dispatch flag is latched per process, so the scalar "before"
//! numbers come from re-running under `STGRAPH_NO_SIMD=1`; the JSON rows
//! carry the active mode so runs can be diffed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;
use stgraph::backend::{AggregationBackend, SeastarBackend};
use stgraph_graph::base::Snapshot;
use stgraph_seastar::ir::{Program, ProgramBuilder};
use stgraph_tensor::tensor::{gemm_row, gemm_row_scalar};
use stgraph_tensor::{quant, simd, Tensor};

#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    config: String,
    simd: bool,
    ms_per_iter: f64,
    gflops: f64,
    speedup_vs_baseline: f64,
}

/// Median-of-reps wall time per iteration, in milliseconds.
fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    // Warm up, then size the iteration count to ~60ms of work.
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.06 / once) as usize).clamp(1, 10_000);
    let mut reps: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .collect();
    reps.sort_by(f64::total_cmp);
    reps[1]
}

/// `agg = sum_dst(gather_src(h)); out = agg @ W` — the aggregate-then-GEMM
/// pattern the fusion pass rewrites into one adjacency pass.
fn agg_gemm_program(k: usize, m: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let h = b.input(k);
    let w = b.mat_const(k, m);
    let g = b.gather_src(h);
    let agg = b.agg_sum_dst(g);
    let out = b.matmul_const(agg, w);
    b.finish(&[out])
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(stgraph_datasets::resolve_seed(None) ^ 0x6b11);
    let simd_on = simd::enabled();
    let mut rows: Vec<KernelRow> = Vec::new();
    println!(
        "kernel microbenches (SIMD {}):",
        if simd_on {
            "on"
        } else {
            "off — STGRAPH_NO_SIMD"
        }
    );
    println!(
        "{:<26} {:<22} {:>12} {:>10} {:>9}",
        "kernel", "config", "ms/iter", "GFLOP/s", "speedup"
    );
    let mut push = |kernel: &str, config: String, ms: f64, flops: f64, base_ms: f64| {
        let gflops = flops / (ms * 1e-3) / 1e9;
        let speedup = base_ms / ms;
        println!("{kernel:<26} {config:<22} {ms:>12.4} {gflops:>10.2} {speedup:>8.2}x");
        rows.push(KernelRow {
            kernel: kernel.to_string(),
            config,
            simd: simd_on,
            ms_per_iter: ms,
            gflops,
            speedup_vs_baseline: speedup,
        });
    };

    // --- GEMM row microkernel: scalar vs SIMD dispatch, serial over rows
    // (isolates the microkernel from rayon scheduling). ---
    for (n, k, m) in [(256usize, 256usize, 256usize), (512, 64, 64)] {
        let a = Tensor::rand_uniform((n, k), -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform((k, m), -1.0, 1.0, &mut rng);
        let (ad, bd) = (a.data(), b.data());
        let mut out = vec![0f32; n * m];
        let flops = (2 * n * k * m) as f64;
        let cfg = format!("{n}x{k}x{m}");
        let scalar_ms = time_ms(|| {
            for (i, row) in out.chunks_mut(m).enumerate() {
                gemm_row_scalar(row, &ad[i * k..(i + 1) * k], bd, m);
            }
        });
        push("gemm_row scalar", cfg.clone(), scalar_ms, flops, scalar_ms);
        let dispatch_ms = time_ms(|| {
            for (i, row) in out.chunks_mut(m).enumerate() {
                gemm_row(row, &ad[i * k..(i + 1) * k], bd, m);
            }
        });
        push(
            "gemm_row dispatch",
            cfg.clone(),
            dispatch_ms,
            flops,
            scalar_ms,
        );
        // The full parallel matmul (what table3's training path calls).
        let par_ms = time_ms(|| {
            std::hint::black_box(a.matmul(&b));
        });
        push("matmul parallel", cfg, par_ms, flops, scalar_ms);
    }

    // --- Aggregation-into-GEMM fusion: materialize-then-GEMM vs the fused
    // single-pass kernel, same backend, same graph. ---
    for (n, deg, k, m) in [
        // L2-resident features (the per-snapshot working set of the paper's
        // datasets) and a DRAM-resident sweep point.
        (5_000usize, 16usize, 64usize, 64usize),
        (20_000, 16, 64, 64),
        (20_000, 16, 32, 128),
    ] {
        let edges: Vec<(u32, u32)> = (0..n * deg)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let snap = Snapshot::from_edges(n, &edges);
        let h = Tensor::rand_uniform((n, k), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((k, m), -0.5, 0.5, &mut rng);
        let unfused = agg_gemm_program(k, m);
        let (fused, _) = unfused.fuse_agg_matmul(&[]);
        // Edge traversals + the dense GEMM, as multiply-adds.
        let flops = (2 * (edges.len() * k + n * k * m)) as f64;
        let cfg = format!("n={n} d={deg} {k}->{m}");
        let unfused_ms = time_ms(|| {
            std::hint::black_box(SeastarBackend.execute(
                &unfused,
                &snap,
                &[&h],
                &[],
                &[],
                &[&w],
                &[],
            ));
        });
        push(
            "agg+gemm unfused",
            cfg.clone(),
            unfused_ms,
            flops,
            unfused_ms,
        );
        let fused_ms = time_ms(|| {
            std::hint::black_box(SeastarBackend.execute(
                &fused,
                &snap,
                &[&h],
                &[],
                &[],
                &[&w],
                &[],
            ));
        });
        push("agg+gemm fused", cfg, fused_ms, flops, unfused_ms);
    }

    // --- Quantized matmul vs f32 (the serve --quantize path). ---
    for (n, k, m) in [(4096usize, 64usize, 64usize), (1024, 256, 256)] {
        let x = Tensor::rand_uniform((n, k), -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform((k, m), -0.5, 0.5, &mut rng);
        let flops = (2 * n * k * m) as f64;
        let cfg = format!("{n}x{k}x{m}");
        let f32_ms = time_ms(|| {
            std::hint::black_box(x.matmul(&w));
        });
        push("matmul f32", cfg.clone(), f32_ms, flops, f32_ms);
        let q_ms = time_ms(|| {
            std::hint::black_box(quant::quantized_matmul(&x, &w));
        });
        push("matmul i8 quantized", cfg, q_ms, flops, f32_ms);
    }

    let path = "BENCH_kernels.json";
    std::fs::write(path, serde_json::to_string_pretty(&rows).unwrap())
        .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
    println!("(wrote {path})");
}
