//! Design-choice ablations beyond the paper's figures, printed as one
//! table each:
//!
//! 1. **State-Stack saved-set minimisation** (§V.B): bytes retained on the
//!    State Stack mid-sequence, minimal vs save-everything policy.
//! 2. **Degree-sorted scheduling** (Figure 3) and **kernel fusion** (§IV)
//!    are measured by the Criterion benches; this binary reports the
//!    saved-set ablation which is about *memory*, not time.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph::backend::create_backend;
use stgraph::executor::{compile, compile_save_all_inputs, GraphSource, TemporalExecutor};
use stgraph_graph::base::{gcn_norm, Snapshot};
use stgraph_seastar::ir::{gat_aggregation, gcn_aggregation};
use stgraph_tensor::{Tape, Tensor};

fn main() {
    let n = 2000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    use rand::Rng;
    let edges: Vec<(u32, u32)> = (0..n * 8)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let f = 32;

    println!(
        "Ablation: State-Stack saved-set minimisation (seq of 10 timestamps, n={n}, m={}, F={f})",
        edges.len()
    );
    println!(
        "{:<10} {:<12} {:>16} {:>16}",
        "layer", "policy", "stack_bytes", "stack_peak_depth"
    );
    for (layer, make) in [("GCN", true), ("GAT", false)] {
        for (policy, save_all) in [("minimal", false), ("save-all", true)] {
            let snap = Snapshot::from_edges(n, &edges);
            let exec =
                TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap.clone()));
            let prog = if make {
                if save_all {
                    compile_save_all_inputs(gcn_aggregation(f))
                } else {
                    compile(gcn_aggregation(f))
                }
            } else if save_all {
                compile_save_all_inputs(gat_aggregation(f, 0.2))
            } else {
                compile(gat_aggregation(f, 0.2))
            };
            let norm = Tensor::from_vec((n, 1), gcn_norm(&snap.in_degrees));
            let tape = Tape::new();
            let mut x = tape.constant(Tensor::rand_uniform((n, f), -1.0, 1.0, &mut rng));
            for t in 0..10 {
                x = if make {
                    exec.apply(&tape, &prog, t, &[&x], vec![norm.clone()], vec![])
                } else {
                    let el = x.slice_cols(0, 1);
                    let er = x.slice_cols(1, 2);
                    exec.apply(&tape, &prog, t, &[&x, &el, &er], vec![], vec![])
                };
            }
            let (_, _, peak_depth, bytes) = exec.state_stack_stats();
            println!(
                "{:<10} {:<12} {:>16} {:>16}",
                layer, policy, bytes, peak_depth
            );
            let loss = x.square().sum();
            tape.backward(&loss);
        }
    }
    println!("\n(minimal = the paper's forward/backward IR comparison; save-all = what a\nframework without that analysis would retain. GCN needs nothing; GAT keeps\nonly width-1 attention vectors, never the [m, F] messages.)");
}
