//! `ctdg_bench` — throughput of the continuous-time event store and
//! temporal neighbor sampler, written to `BENCH_ctdg.json`.
//!
//! Two axes, matching the questions the CTDG tier raises:
//!
//! * **Ingest**: events/s of T-CSR batch appends as the index grows (the
//!   per-node tail-block design should keep this flat).
//! * **Sampling**: queries/s of `recent` vs `uniform` sampling at
//!   increasing adjacency sizes — `recent` is pure index arithmetic,
//!   `uniform` pays an RNG per slot; the gap is the cost of coverage.
//!
//! ```sh
//! cargo run --release -p stgraph-bench --bin ctdg_bench            # 1.2M events
//! cargo run --release -p stgraph-bench --bin ctdg_bench -- --quick # CI smoke
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;
use stgraph_ctdg::{sample, CtdgStore, SamplerConfig, Strategy};
use stgraph_datasets::{fraud_stream, resolve_seed, FraudConfig};

#[derive(Serialize)]
struct IngestRow {
    /// Events already in the index when this batch landed.
    events_before: u64,
    batch: usize,
    events_per_sec: f64,
    blocks: u64,
}

#[derive(Serialize)]
struct SampleRow {
    /// Events in the index when sampled.
    events: u64,
    strategy: String,
    k: usize,
    queries: usize,
    queries_per_sec: f64,
    slots_per_sec: f64,
    mean_valid: f64,
}

#[derive(Serialize)]
struct Report {
    nodes: usize,
    events: usize,
    k: usize,
    seed: u64,
    quick: bool,
    ingest: Vec<IngestRow>,
    sampling: Vec<SampleRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ctdg.json".to_string());
    let seed = resolve_seed(None);
    // Full mode exceeds the ISSUE's 1M-event floor; quick mode is a CI
    // smoke that exercises the same code paths in under a second.
    let (nodes, events, k) = if quick {
        (2_000usize, 60_000usize, 10usize)
    } else {
        (50_000usize, 1_200_000usize, 10usize)
    };
    let batch = 4096usize;
    let sample_queries = if quick { 4_000 } else { 50_000 };
    println!("ctdg_bench: {nodes} nodes, {events} events, k {k}, seed {seed} (quick: {quick})");

    let cfg = FraudConfig::new(nodes, events, seed);
    let stream: Vec<_> = fraud_stream(&cfg).map(|e| e.edge).collect();

    // --- Ingest throughput as the index grows. Measured per growth
    // decile so the flat-append claim is visible in the report. ---
    let mut store = CtdgStore::new(nodes);
    let mut ingest = Vec::new();
    let checkpoints: Vec<usize> = (1..=10).map(|i| events * i / 10).collect();
    let mut next_cp = 0usize;
    let mut t0 = Instant::now();
    let mut since = 0usize;
    for chunk in stream.chunks(batch) {
        store.append_batch(chunk);
        since += chunk.len();
        if next_cp < checkpoints.len() && store.index().num_events() >= checkpoints[next_cp] as u64
        {
            let dt = t0.elapsed().as_secs_f64();
            ingest.push(IngestRow {
                events_before: store.index().num_events() - since as u64,
                batch,
                events_per_sec: since as f64 / dt,
                blocks: store.index().num_blocks(),
            });
            next_cp += 1;
            since = 0;
            t0 = Instant::now();
        }
    }
    println!(
        "{:>14} {:>14} {:>12}",
        "events_before", "events/s", "blocks"
    );
    for r in &ingest {
        println!(
            "{:>14} {:>14.0} {:>12}",
            r.events_before, r.events_per_sec, r.blocks
        );
    }

    // --- Sampling throughput, recent vs uniform, at three adjacency
    // sizes (the same stream truncated). ---
    let sizes: Vec<usize> = if quick {
        vec![events / 4, events]
    } else {
        vec![events / 10, events / 2, events]
    };
    let mut sampling = Vec::new();
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>10}",
        "events", "strategy", "queries/s", "slots/s", "mean_valid"
    );
    for &size in &sizes {
        let mut s = CtdgStore::new(nodes);
        for chunk in stream[..size].chunks(batch) {
            s.append_batch(chunk);
        }
        let horizon = s.index().last_timestamp() + 1;
        // Query hot nodes (event endpoints) at the stream horizon — the
        // workload's access pattern, not uniform cold nodes.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbe7c);
        let queries: Vec<(u32, u64)> = (0..sample_queries)
            .map(|_| {
                let e = stream[rng.gen_range(0..size)];
                (if rng.gen_bool(0.5) { e.src } else { e.dst }, horizon)
            })
            .collect();
        for strategy in [Strategy::Recent, Strategy::Uniform] {
            let cfg = SamplerConfig { k, strategy, seed };
            // Warm up, then time enough reps to smooth scheduler noise.
            let ns = sample(s.index(), &queries, &cfg);
            let reps = if quick { 3 } else { 5 };
            let t = Instant::now();
            let mut valid = 0usize;
            for _ in 0..reps {
                valid += sample(s.index(), &queries, &cfg).total_valid();
            }
            let dt = t.elapsed().as_secs_f64();
            let row = SampleRow {
                events: s.index().num_events(),
                strategy: strategy.name().to_string(),
                k,
                queries: queries.len(),
                queries_per_sec: (queries.len() * reps) as f64 / dt,
                slots_per_sec: valid as f64 / dt,
                mean_valid: ns.total_valid() as f64 / queries.len() as f64,
            };
            println!(
                "{:>10} {:>8} {:>12.0} {:>14.0} {:>10.2}",
                row.events, row.strategy, row.queries_per_sec, row.slots_per_sec, row.mean_valid
            );
            sampling.push(row);
        }
    }

    let report = Report {
        nodes,
        events,
        k,
        seed,
        quick,
        ingest,
        sampling,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&json_path, json + "\n").expect("write report");
    println!("wrote {json_path}");
}
