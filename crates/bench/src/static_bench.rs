//! Static-temporal benchmark runner (Figures 5 & 6): trains the paper's
//! default TGCN on a static-temporal dataset under STGraph or the PyG-T
//! baseline and reports per-epoch time, peak memory and final loss.

use crate::{BenchScale, CounterSnapshot, RunResult};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use stgraph::backend::create_backend;
use stgraph::executor::{GraphSource, TemporalExecutor};
use stgraph::tgnn::Tgcn;
use stgraph::train::{train_epoch_node_regression, NodeRegressor};
use stgraph_datasets::load_static;
use stgraph_graph::base::Snapshot;
use stgraph_tensor::mem;
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::optim::Adam;

/// Which framework to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// This reproduction's STGraph (fused Seastar backend).
    StGraph,
    /// The PyG-T-equivalent edge-parallel baseline.
    PygT,
}

impl Framework {
    /// Display / memory-pool name.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::StGraph => "stgraph",
            Framework::PygT => "pygt",
        }
    }
}

/// One static-temporal benchmark configuration.
#[derive(Debug, Clone)]
pub struct StaticConfig {
    /// Dataset name or code (Table II).
    pub dataset: String,
    /// Feature size (lags) — the Figure 5 sweep variable.
    pub feature_size: usize,
    /// Sequence length — the Figure 6 sweep variable.
    pub seq_len: usize,
    /// Hidden width of the TGCN.
    pub hidden: usize,
}

impl StaticConfig {
    /// The paper's default TGCN configuration on a dataset.
    pub fn new(dataset: &str, feature_size: usize, seq_len: usize) -> StaticConfig {
        StaticConfig {
            dataset: dataset.to_string(),
            feature_size,
            seq_len,
            hidden: 32,
        }
    }
}

/// Runs one configuration and returns the measurements.
pub fn run_static(cfg: &StaticConfig, framework: Framework, scale: BenchScale) -> RunResult {
    // Dataset tensors are charged to a separate pool: both frameworks read
    // the same data, so it is excluded from the comparison.
    let ds = mem::with_pool("dataset", || {
        load_static(&cfg.dataset, cfg.feature_size, scale.timestamps)
    });
    let pool = framework.name();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5737_0001);

    mem::with_pool(pool, || match framework {
        Framework::StGraph => {
            // Pre-processing (Seastar does this once for static graphs).
            let snap = Snapshot::from_edges(ds.graph.snapshot().csr.num_nodes(), &ds.graph.edges);
            let exec = TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap));
            let mut ps = ParamSet::new();
            let cell = Tgcn::new(&mut ps, "tgcn", cfg.feature_size, cfg.hidden, &mut rng);
            let model = NodeRegressor::new(&mut ps, cell, 1, &mut rng);
            let mut opt = Adam::new(ps, 0.01);
            let mut loss = 0.0;
            for _ in 0..scale.warmup {
                loss = train_epoch_node_regression(
                    &model,
                    &exec,
                    &mut opt,
                    &ds.features,
                    &ds.targets,
                    cfg.seq_len,
                );
            }
            mem::reset_peak(pool);
            let counters = CounterSnapshot::capture(pool);
            let start = Instant::now();
            for _ in 0..scale.epochs {
                loss = train_epoch_node_regression(
                    &model,
                    &exec,
                    &mut opt,
                    &ds.features,
                    &ds.targets,
                    cfg.seq_len,
                );
            }
            let epoch_ms = start.elapsed().as_secs_f64() * 1000.0 / scale.epochs as f64;
            let (allocs, pool_hit_rate) = counters.delta(pool, scale.epochs);
            RunResult {
                epoch_ms,
                peak_bytes: mem::stats(pool).peak,
                final_loss: loss,
                gnn_fraction: 1.0,
                allocs,
                pool_hit_rate,
            }
        }
        Framework::PygT => {
            let graph =
                pygt_baseline::CooGraph::new(ds.graph.snapshot().csr.num_nodes(), &ds.graph.edges);
            let mut ps = ParamSet::new();
            let cell = pygt_baseline::BaselineTgcn::new(
                &mut ps,
                "tgcn",
                cfg.feature_size,
                cfg.hidden,
                &mut rng,
            );
            let model = pygt_baseline::BaselineRegressor::new(&mut ps, cell, 1, &mut rng);
            let mut opt = Adam::new(ps, 0.01);
            let mut loss = 0.0;
            for _ in 0..scale.warmup {
                loss = pygt_baseline::train::train_epoch_node_regression(
                    &model,
                    &graph,
                    &mut opt,
                    &ds.features,
                    &ds.targets,
                    cfg.seq_len,
                );
            }
            mem::reset_peak(pool);
            let counters = CounterSnapshot::capture(pool);
            let start = Instant::now();
            for _ in 0..scale.epochs {
                loss = pygt_baseline::train::train_epoch_node_regression(
                    &model,
                    &graph,
                    &mut opt,
                    &ds.features,
                    &ds.targets,
                    cfg.seq_len,
                );
            }
            let epoch_ms = start.elapsed().as_secs_f64() * 1000.0 / scale.epochs as f64;
            let (allocs, pool_hit_rate) = counters.delta(pool, scale.epochs);
            RunResult {
                epoch_ms,
                peak_bytes: mem::stats(pool).peak,
                final_loss: loss,
                gnn_fraction: 1.0,
                allocs,
                pool_hit_rate,
            }
        }
    })
}
