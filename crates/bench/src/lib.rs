//! # stgraph-bench
//!
//! The harness regenerating every table and figure of the paper's
//! evaluation (§VII). The library provides the measurement machinery; one
//! binary per exhibit (`table2`, `fig5` … `fig9`, `table3`) drives it and
//! prints the same rows/series the paper reports. Criterion micro-benches
//! for the substrate-level design choices live in `benches/`.
//!
//! Absolute numbers are CPU numbers (see DESIGN.md's device substitution);
//! the comparisons — who wins, by what factor, where the crossovers sit —
//! are the reproduction targets recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod dynamic_bench;
pub mod report;
pub mod static_bench;

pub use dynamic_bench::{run_dynamic, DynamicConfig, DynamicVariant};
pub use report::{print_table, summarize, write_json, Row};
pub use static_bench::{run_static, Framework, StaticConfig};

use serde::Serialize;

/// Result of one benchmark run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Mean wall-clock time per measured epoch, milliseconds.
    pub epoch_ms: f64,
    /// Peak tracked memory during the measured epochs, bytes.
    pub peak_bytes: u64,
    /// Final training loss (cross-framework equivalence check).
    pub final_loss: f32,
    /// Fraction of epoch time spent on GNN compute (dynamic runs; 1.0 for
    /// frameworks without the split instrumented).
    pub gnn_fraction: f64,
    /// Tracked allocator calls per measured epoch (memory-tracker counter,
    /// the same one telemetry exports as `mem.<pool>.allocations`).
    pub allocs: u64,
    /// Workspace buffer-pool hit rate over the measured epochs
    /// (`hits / (hits + misses)`; 0 when the pool saw no traffic).
    pub pool_hit_rate: f64,
}

/// Before/after snapshot of the allocator and buffer-pool counters, so runs
/// report per-epoch deltas rather than process-lifetime totals.
#[derive(Debug, Clone, Copy)]
pub struct CounterSnapshot {
    allocations: u64,
    hits: u64,
    misses: u64,
}

impl CounterSnapshot {
    /// Captures the counters for the named memory pool.
    pub fn capture(pool: &str) -> CounterSnapshot {
        let p = stgraph_tensor::pool::stats();
        CounterSnapshot {
            allocations: stgraph_tensor::mem::stats(pool).allocations,
            hits: p.hits,
            misses: p.misses,
        }
    }

    /// `(allocations per epoch, pool hit rate)` accumulated since `self`.
    pub fn delta(&self, pool: &str, epochs: usize) -> (u64, f64) {
        let after = CounterSnapshot::capture(pool);
        let allocs = (after.allocations - self.allocations) / epochs.max(1) as u64;
        let (hits, misses) = (after.hits - self.hits, after.misses - self.misses);
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        (allocs, rate)
    }
}

/// Benchmark scale knobs, overridable via environment variables so the
/// recorded full runs and quick smoke runs share one code path:
/// `STGRAPH_BENCH_EPOCHS`, `STGRAPH_BENCH_WARMUP`, `STGRAPH_BENCH_SCALE`
/// (dynamic dataset divisor), `STGRAPH_BENCH_TIMESTAMPS`.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Measured epochs per configuration.
    pub epochs: usize,
    /// Warm-up epochs excluded from timing (the paper ignores its first 3
    /// of 100).
    pub warmup: usize,
    /// Dynamic dataset size divisor.
    pub scale: usize,
    /// Static-temporal timestamps per run.
    pub timestamps: usize,
}

impl BenchScale {
    /// Reads the scale from the environment, with defaults sized for a
    /// multi-minute full run.
    pub fn from_env() -> BenchScale {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        BenchScale {
            epochs: get("STGRAPH_BENCH_EPOCHS", 5),
            warmup: get("STGRAPH_BENCH_WARMUP", 2),
            scale: get("STGRAPH_BENCH_SCALE", 64),
            timestamps: get("STGRAPH_BENCH_TIMESTAMPS", 20),
        }
    }
}
