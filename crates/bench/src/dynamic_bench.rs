//! DTDG benchmark runner (Figures 7, 8 & 9): link-prediction TGCN training
//! over windowed snapshots, comparing STGraph-Naive, STGraph-GPMA and the
//! PyG-T baseline, with the GNN-compute vs graph-update time split
//! instrumented for the STGraph variants.

use crate::{BenchScale, CounterSnapshot, RunResult};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;
use stgraph::backend::create_backend;
use stgraph::executor::{GraphSource, TemporalExecutor};
use stgraph::tgnn::Tgcn;
use stgraph::train::{link_prediction_batches, train_epoch_link_prediction, LinkPredBatch};
use stgraph_datasets::load_dynamic;
use stgraph_dyngraph::{DtdgGraph, DtdgSource, GpmaGraph, NaiveGraph};
use stgraph_tensor::mem;
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::optim::Adam;
use stgraph_tensor::Tensor;

/// Which DTDG implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicVariant {
    /// STGraph with all snapshots precomputed (§V.C).
    Naive,
    /// STGraph with on-demand GPMA snapshots (§V.D).
    Gpma,
    /// The PyG-T baseline (full COO snapshot list).
    PygT,
}

impl DynamicVariant {
    /// Display / memory-pool name.
    pub fn name(&self) -> &'static str {
        match self {
            DynamicVariant::Naive => "stgraph-naive",
            DynamicVariant::Gpma => "stgraph-gpma",
            DynamicVariant::PygT => "pygt",
        }
    }
}

/// One DTDG benchmark configuration.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Dataset name or code (Table II, dynamic half).
    pub dataset: String,
    /// Feature size — the Figure 7 sweep variable.
    pub feature_size: usize,
    /// Percent change between consecutive snapshots — the Figure 8 sweep.
    pub pct_change: f64,
    /// Sequence length.
    pub seq_len: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Cap on the number of timestamps (small `pct_change` otherwise
    /// explodes the snapshot count).
    pub max_timestamps: usize,
    /// Cap on positive edges sampled per timestamp for the BCE loss.
    pub max_pos: usize,
}

impl DynamicConfig {
    /// The paper's default DTDG configuration (5% change).
    pub fn new(dataset: &str, feature_size: usize, pct_change: f64) -> DynamicConfig {
        DynamicConfig {
            dataset: dataset.to_string(),
            feature_size,
            pct_change,
            seq_len: 5,
            hidden: 16,
            max_timestamps: 20,
            max_pos: 512,
        }
    }
}

/// Builds the windowed DTDG source for a configuration.
pub fn build_source(cfg: &DynamicConfig, scale: BenchScale) -> DtdgSource {
    let raw = load_dynamic(&cfg.dataset, scale.scale);
    let mut src = DtdgSource::from_temporal_edges(raw.num_nodes, &raw.edges, cfg.pct_change);
    src.snapshots.truncate(cfg.max_timestamps);
    src
}

/// Runs one configuration under one variant.
pub fn run_dynamic(cfg: &DynamicConfig, variant: DynamicVariant, scale: BenchScale) -> RunResult {
    let (src, batches, feats) = mem::with_pool("dataset", || {
        let src = build_source(cfg, scale);
        let batches: Vec<LinkPredBatch> = link_prediction_batches(&src, cfg.max_pos, 0xfeed);
        let mut rng = ChaCha8Rng::seed_from_u64(0x0d0d);
        let feats = Tensor::rand_uniform((src.num_nodes, cfg.feature_size), -1.0, 1.0, &mut rng);
        (src, batches, feats)
    });
    let pool = variant.name();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5737_0002);

    mem::with_pool(pool, || match variant {
        DynamicVariant::Naive | DynamicVariant::Gpma => {
            let provider: Rc<RefCell<dyn DtdgGraph>> = match variant {
                DynamicVariant::Naive => Rc::new(RefCell::new(NaiveGraph::new(&src))),
                _ => Rc::new(RefCell::new(GpmaGraph::new(&src))),
            };
            let exec = TemporalExecutor::new(
                create_backend("seastar"),
                GraphSource::Dynamic(Rc::clone(&provider)),
            );
            let mut ps = ParamSet::new();
            let cell = Tgcn::new(&mut ps, "tgcn", cfg.feature_size, cfg.hidden, &mut rng);
            let mut opt = Adam::new(ps, 0.01);
            let mut loss = 0.0;
            for _ in 0..scale.warmup {
                loss = train_epoch_link_prediction(
                    &cell,
                    &exec,
                    &mut opt,
                    &feats,
                    &batches,
                    cfg.seq_len,
                );
            }
            // Drain instrumentation accumulated during warm-up.
            let _ = exec.take_gnn_time();
            let _ = provider.borrow_mut().take_update_time();
            mem::reset_peak(pool);
            let counters = CounterSnapshot::capture(pool);
            let start = Instant::now();
            for _ in 0..scale.epochs {
                loss = train_epoch_link_prediction(
                    &cell,
                    &exec,
                    &mut opt,
                    &feats,
                    &batches,
                    cfg.seq_len,
                );
            }
            let total = start.elapsed().as_secs_f64();
            let epoch_ms = total * 1000.0 / scale.epochs as f64;
            // The paper's Figure 9 splits *total* processing time into GNN
            // processing and graph-update time; everything that is not
            // updating/constructing snapshots is model compute.
            let _ = exec.take_gnn_time();
            let update = provider.borrow_mut().take_update_time().as_secs_f64();
            let (allocs, pool_hit_rate) = counters.delta(pool, scale.epochs);
            RunResult {
                epoch_ms,
                peak_bytes: mem::stats(pool).peak,
                final_loss: loss,
                gnn_fraction: if total > 0.0 {
                    (total - update).max(0.0) / total
                } else {
                    1.0
                },
                allocs,
                pool_hit_rate,
            }
        }
        DynamicVariant::PygT => {
            let dtdg = pygt_baseline::BaselineDtdg::new(&src);
            let mut ps = ParamSet::new();
            let cell = pygt_baseline::BaselineTgcn::new(
                &mut ps,
                "tgcn",
                cfg.feature_size,
                cfg.hidden,
                &mut rng,
            );
            let mut opt = Adam::new(ps, 0.01);
            let mut loss = 0.0;
            for _ in 0..scale.warmup {
                loss = pygt_baseline::train::train_epoch_link_prediction(
                    &cell,
                    &dtdg,
                    &mut opt,
                    &feats,
                    &batches,
                    cfg.seq_len,
                );
            }
            mem::reset_peak(pool);
            let counters = CounterSnapshot::capture(pool);
            let start = Instant::now();
            for _ in 0..scale.epochs {
                loss = pygt_baseline::train::train_epoch_link_prediction(
                    &cell,
                    &dtdg,
                    &mut opt,
                    &feats,
                    &batches,
                    cfg.seq_len,
                );
            }
            let epoch_ms = start.elapsed().as_secs_f64() * 1000.0 / scale.epochs as f64;
            let (allocs, pool_hit_rate) = counters.delta(pool, scale.epochs);
            RunResult {
                epoch_ms,
                peak_bytes: mem::stats(pool).peak,
                final_loss: loss,
                gnn_fraction: 1.0,
                allocs,
                pool_hit_rate,
            }
        }
    })
}
