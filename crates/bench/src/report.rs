//! Result reporting: aligned console tables (the figures' series, printed
//! as rows) and JSON dumps under `results/` for EXPERIMENTS.md.

use crate::RunResult;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One labelled measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset code.
    pub dataset: String,
    /// Series label (framework / variant).
    pub series: String,
    /// Sweep variable value (feature size, sequence length, % change, ...).
    pub x: f64,
    /// The measurements.
    #[serde(flatten)]
    pub result: RunResult,
}

/// Prints a figure's rows as an aligned table with ratio columns
/// (baseline = the series named `baseline`).
pub fn print_table(title: &str, x_label: &str, rows: &[Row], baseline: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<6} {:<14} {:>10} {:>12} {:>12} {:>9} {:>9} {:>6} {:>10} {:>10}",
        "data",
        "series",
        x_label,
        "epoch_ms",
        "peak_MiB",
        "loss",
        "allocs",
        "hit%",
        "speedup",
        "mem_ratio"
    );
    for row in rows {
        let base = rows.iter().find(|r| {
            r.series == baseline && r.dataset == row.dataset && (r.x - row.x).abs() < 1e-9
        });
        let (speedup, mem_ratio) = match base {
            Some(b) if row.series != baseline => (
                format!("{:.2}x", b.result.epoch_ms / row.result.epoch_ms),
                format!(
                    "{:.2}x",
                    b.result.peak_bytes as f64 / row.result.peak_bytes as f64
                ),
            ),
            _ => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{:<6} {:<14} {:>10} {:>12.2} {:>12.2} {:>9.4} {:>9} {:>6.1} {:>10} {:>10}",
            row.dataset,
            row.series,
            row.x,
            row.result.epoch_ms,
            row.result.peak_bytes as f64 / (1024.0 * 1024.0),
            row.result.final_loss,
            row.result.allocs,
            row.result.pool_hit_rate * 100.0,
            speedup,
            mem_ratio,
        );
    }
}

/// Summarises max/avg speed-up and memory improvement of `series` over the
/// baseline across all matching rows (Table III's aggregation).
pub fn summarize(rows: &[Row], series: &str, baseline: &str) -> (f64, f64, f64, f64) {
    let mut speedups = Vec::new();
    let mut mems = Vec::new();
    for row in rows.iter().filter(|r| r.series == series) {
        if let Some(b) = rows.iter().find(|r| {
            r.series == baseline && r.dataset == row.dataset && (r.x - row.x).abs() < 1e-9
        }) {
            speedups.push(b.result.epoch_ms / row.result.epoch_ms);
            mems.push(b.result.peak_bytes as f64 / row.result.peak_bytes as f64);
        }
    }
    let max = |v: &[f64]| v.iter().copied().fold(f64::NAN, f64::max);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (max(&speedups), avg(&speedups), max(&mems), avg(&mems))
}

/// Writes rows as JSON into `results/<name>.json` (for EXPERIMENTS.md).
pub fn write_json(name: &str, rows: &[Row]) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(rows).unwrap());
        println!("(wrote {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ds: &str, series: &str, x: f64, ms: f64, bytes: u64) -> Row {
        Row {
            dataset: ds.into(),
            series: series.into(),
            x,
            result: RunResult {
                epoch_ms: ms,
                peak_bytes: bytes,
                final_loss: 0.1,
                gnn_fraction: 1.0,
                allocs: 0,
                pool_hit_rate: 0.0,
            },
        }
    }

    #[test]
    fn summarize_computes_ratios() {
        let rows = vec![
            row("HC", "pygt", 8.0, 100.0, 2000),
            row("HC", "stgraph", 8.0, 50.0, 1000),
            row("HC", "pygt", 16.0, 100.0, 3000),
            row("HC", "stgraph", 16.0, 80.0, 1500),
        ];
        let (smax, savg, mmax, mavg) = summarize(&rows, "stgraph", "pygt");
        assert!((smax - 2.0).abs() < 1e-9);
        assert!((savg - 1.625).abs() < 1e-9);
        assert!((mmax - 2.0).abs() < 1e-9);
        assert!((mavg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_skips_unmatched_x() {
        let rows = vec![
            row("HC", "pygt", 8.0, 100.0, 1000),
            row("HC", "stgraph", 99.0, 50.0, 500),
        ];
        let (smax, savg, _, _) = summarize(&rows, "stgraph", "pygt");
        assert!(smax.is_nan());
        assert!(savg == 0.0 || savg.is_nan());
    }
}
