//! Ablation: the parallel atomic-sub reverse-CSR kernel (Algorithm 3) vs
//! the sequential transpose.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph_graph::csr::{reverse_csr, reverse_csr_sequential, Csr};

fn bench_reverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_csr");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for &m in &[20_000usize, 200_000] {
        let n = m / 10;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let g = Csr::from_edges(n, &edges);
        let in_deg = reverse_csr_sequential(&g, n).degrees();

        group.bench_with_input(BenchmarkId::new("algorithm3_parallel", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(reverse_csr(&g, &in_deg)))
        });
        group.bench_with_input(BenchmarkId::new("sequential_transpose", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(reverse_csr_sequential(&g, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reverse);
criterion_main!(benches);
