//! Ablation: degree-sorted `node_ids` scheduling (Figure 3) vs natural
//! vertex order, on a skewed-degree graph where long rows matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use stgraph::backend::{AggregationBackend, SeastarBackend};
use stgraph_graph::base::{gcn_norm, Snapshot};
use stgraph_seastar::ir::gcn_aggregation;
use stgraph_tensor::Tensor;

fn bench_scheduling(c: &mut Criterion) {
    // Power-law graph: a few hubs with huge in-degree.
    let n = 8000u32;
    let m = 120_000;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let v = ((n as f64) * rng.gen_range(0.0f64..1.0).powf(3.0)) as u32 % n;
            (u, v)
        })
        .collect();
    let sorted = Snapshot::from_edges(n as usize, &edges);
    // Same snapshot but with node_ids reset to natural order.
    let rev = &sorted.reverse_csr;
    let mut rev2 = stgraph_graph::csr::Csr::from_parts(
        rev.row_offset.clone(),
        rev.col_indices.clone(),
        rev.eids.clone(),
    );
    rev2.node_ids = (0..n).collect();
    let unsorted = Snapshot {
        csr: sorted.csr.clone(),
        reverse_csr: Arc::new(rev2),
        in_degrees: sorted.in_degrees.clone(),
        out_degrees: sorted.out_degrees.clone(),
    };
    let f = 32;
    let x = Tensor::rand_uniform((n as usize, f), -1.0, 1.0, &mut rng);
    let norm = Tensor::from_vec((n as usize, 1), gcn_norm(&sorted.in_degrees));
    let prog = gcn_aggregation(f);

    let mut group = c.benchmark_group("degree_sorted_scheduling");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for (name, snap) in [("degree_sorted", &sorted), ("natural_order", &unsorted)] {
        group.bench_with_input(BenchmarkId::new("gcn_forward", name), &name, |b, _| {
            b.iter(|| {
                std::hint::black_box(SeastarBackend.execute(
                    &prog,
                    snap,
                    &[&x],
                    &[&norm],
                    &[],
                    &[],
                    &[],
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
