//! Ablation: fused Seastar kernels (edge values in registers) vs the
//! unfused reference backend (edge values materialised) — the Seastar
//! operator-fusion claim (§IV), on GCN and GAT forward aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph::backend::{AggregationBackend, ReferenceBackend, SeastarBackend};
use stgraph_graph::base::{gcn_norm, Snapshot};
use stgraph_seastar::ir::{gat_aggregation, gcn_aggregation};
use stgraph_tensor::Tensor;

fn random_snapshot(n: u32, m: usize, seed: u64) -> Snapshot {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    Snapshot::from_edges(n as usize, &edges)
}

fn bench_backends(c: &mut Criterion) {
    let n = 4000u32;
    let m = 40_000;
    let f = 32;
    let snap = random_snapshot(n, m, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let x = Tensor::rand_uniform((n as usize, f), -1.0, 1.0, &mut rng);
    let norm = Tensor::from_vec((n as usize, 1), gcn_norm(&snap.in_degrees));
    let el = Tensor::rand_uniform((n as usize, 1), -1.0, 1.0, &mut rng);
    let er = Tensor::rand_uniform((n as usize, 1), -1.0, 1.0, &mut rng);
    let gcn = gcn_aggregation(f);
    let gat = gat_aggregation(f, 0.2);

    let mut group = c.benchmark_group("fused_vs_unfused");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for (name, be) in [
        ("fused", &SeastarBackend as &dyn AggregationBackend),
        ("unfused", &ReferenceBackend as &dyn AggregationBackend),
    ] {
        group.bench_with_input(BenchmarkId::new("gcn_forward", name), &name, |b, _| {
            b.iter(|| std::hint::black_box(be.execute(&gcn, &snap, &[&x], &[&norm], &[], &[], &[])))
        });
        group.bench_with_input(BenchmarkId::new("gat_forward", name), &name, |b, _| {
            b.iter(|| {
                std::hint::black_box(be.execute(&gat, &snap, &[&x, &el, &er], &[], &[], &[], &[]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
