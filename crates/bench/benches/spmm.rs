//! Ablation: vertex-parallel aggregation (STGraph) vs edge-parallel
//! gather–scale–scatter (the PyG strategy) for one GCN propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pygt_baseline::CooGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph::backend::{AggregationBackend, SeastarBackend};
use stgraph_graph::base::{gcn_norm, Snapshot};
use stgraph_seastar::ir::gcn_aggregation;
use stgraph_tensor::Tensor;

fn bench_spmm(c: &mut Criterion) {
    let n = 5000u32;
    let m = 60_000;
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let snap = Snapshot::from_edges(n as usize, &edges);
    let coo = CooGraph::new(n as usize, &edges);
    let mut group = c.benchmark_group("spmm_strategy");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for &f in &[8usize, 64] {
        let x = Tensor::rand_uniform((n as usize, f), -1.0, 1.0, &mut rng);
        let norm = Tensor::from_vec((n as usize, 1), gcn_norm(&snap.in_degrees));
        let prog = gcn_aggregation(f);
        group.bench_with_input(BenchmarkId::new("vertex_parallel", f), &f, |b, _| {
            b.iter(|| {
                std::hint::black_box(SeastarBackend.execute(
                    &prog,
                    &snap,
                    &[&x],
                    &[&norm],
                    &[],
                    &[],
                    &[],
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("edge_parallel", f), &f, |b, _| {
            b.iter(|| {
                let msgs = x.gather_rows(&coo.src).scale_rows(&coo.edge_norm);
                std::hint::black_box(msgs.scatter_add_rows(&coo.dst, n as usize))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
