//! Ablation: GPMA batch updates vs rebuilding a CSR from scratch — the
//! §V.D claim that PMA storage makes on-demand snapshots affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph_graph::csr::Csr;
use stgraph_pma::Gpma;

fn random_edges(rng: &mut ChaCha8Rng, n: u32, m: usize) -> Vec<(u32, u32)> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < m {
        set.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    set.into_iter().collect()
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("pma_update_vs_csr_rebuild");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for &m in &[10_000usize, 50_000] {
        let n = (m / 10) as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = random_edges(&mut rng, n, m);
        let batch: Vec<(u32, u32)> = (0..m / 100)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let dels: Vec<(u32, u32)> = base.iter().step_by(100).copied().collect();

        group.bench_with_input(BenchmarkId::new("gpma_batch_update", m), &m, |b, _| {
            let gpma = Gpma::from_edges(n as usize, &base);
            b.iter_batched(
                || gpma.clone_state(),
                |mut g| {
                    g.insert_edges(&batch);
                    g.delete_edges(&dels);
                    g.relabel_edges();
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("csr_full_rebuild", m), &m, |b, _| {
            b.iter(|| {
                let mut edges = base.clone();
                edges.extend(&batch);
                let del: std::collections::HashSet<_> = dels.iter().collect();
                edges.retain(|e| !del.contains(e));
                std::hint::black_box(Csr::from_edges(n as usize, &edges))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
