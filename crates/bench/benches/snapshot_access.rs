//! Ablation: NaiveGraph O(1) snapshot access vs GPMAGraph on-demand
//! construction (update + relabel + view + Algorithm-3 reverse), the
//! time/memory trade-off of §V.C vs §V.D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph_dyngraph::{DtdgGraph, DtdgSource, GpmaGraph, NaiveGraph};

fn churn_source(n: u32, m0: usize, t: usize, seed: u64) -> DtdgSource {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cur: std::collections::BTreeSet<(u32, u32)> = (0..m0)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let mut snaps = vec![cur.iter().copied().collect::<Vec<_>>()];
    for _ in 1..t {
        let removals: Vec<(u32, u32)> =
            cur.iter().copied().filter(|_| rng.gen_bool(0.05)).collect();
        for r in &removals {
            cur.remove(r);
        }
        for _ in 0..removals.len() {
            cur.insert((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        snaps.push(cur.iter().copied().collect());
    }
    DtdgSource::from_snapshot_edges(n as usize, snaps)
}

fn bench_snapshots(c: &mut Criterion) {
    let src = churn_source(2000, 30_000, 8, 7);
    let mut group = c.benchmark_group("snapshot_access");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("naive_sweep", 8), |b| {
        let mut g = NaiveGraph::new(&src);
        b.iter(|| {
            for t in 0..8 {
                std::hint::black_box(g.get_graph(t));
            }
        })
    });
    group.bench_function(BenchmarkId::new("gpma_sweep", 8), |b| {
        let mut g = GpmaGraph::new(&src);
        b.iter(|| {
            for t in 0..8 {
                std::hint::black_box(g.get_graph(t));
            }
            for t in (0..8).rev() {
                std::hint::black_box(g.get_backward_graph(t));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshots);
criterion_main!(benches);
