//! Allocation churn: one TGCN training epoch on the fig-5 chickenpox workload,
//! with the workspace buffer pool enabled vs disabled (`STGRAPH_NO_POOL`
//! semantics via `pool::force_disable`). Also prints the raw allocation count
//! per epoch in each mode, and compares the register-tiled matmul kernel
//! against the straightforward i-k-j loop it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph::backend::create_backend;
use stgraph::executor::{GraphSource, TemporalExecutor};
use stgraph::tgnn::Tgcn;
use stgraph::train::{train_epoch_node_regression, NodeRegressor};
use stgraph_datasets::load_static;
use stgraph_graph::base::{STGraphBase, Snapshot};
use stgraph_tensor::nn::ParamSet;
use stgraph_tensor::optim::Adam;
use stgraph_tensor::{mem, pool, Tensor};

struct Workload {
    model: NodeRegressor<Tgcn>,
    exec: TemporalExecutor,
    opt: Adam,
    features: Vec<Tensor>,
    targets: Vec<Tensor>,
}

fn tgcn_workload() -> Workload {
    let ds = load_static("hungary-chickenpox", 4, 24);
    let snap = Snapshot::from_edges(ds.graph.num_nodes(), &ds.graph.edges);
    let exec = TemporalExecutor::new(create_backend("seastar"), GraphSource::Static(snap));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let cell = Tgcn::new(&mut ps, "t", 4, 16, &mut rng);
    let model = NodeRegressor::new(&mut ps, cell, 1, &mut rng);
    let opt = Adam::new(ps, 0.01);
    Workload {
        model,
        exec,
        opt,
        features: ds.features,
        targets: ds.targets,
    }
}

fn epoch(w: &mut Workload) -> f32 {
    train_epoch_node_regression(&w.model, &w.exec, &mut w.opt, &w.features, &w.targets, 8)
}

/// Raw `TrackedBuf` allocations performed by one epoch in each mode. Printed
/// (not asserted) so `cargo bench --bench alloc_churn` documents the
/// pool's hit rate alongside the timing numbers.
fn report_alloc_counts() {
    for (label, disabled) in [("pooled", false), ("unpooled", true)] {
        pool::force_disable(disabled);
        let mut w = tgcn_workload();
        epoch(&mut w); // warm-up epoch: fills the pool / steady-state
        let before = mem::stats(mem::DEFAULT_POOL).allocations;
        let pstats_before = pool::stats();
        epoch(&mut w);
        let allocs = mem::stats(mem::DEFAULT_POOL).allocations - before;
        let pstats = pool::stats();
        let hits = pstats.hits - pstats_before.hits;
        let misses = pstats.misses - pstats_before.misses;
        eprintln!(
            "alloc_churn/{label}: {allocs} raw allocations per epoch \
             (pool hits {hits}, misses {misses})"
        );
        pool::force_disable(false);
    }
}

fn naive_matmul(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * m..(kk + 1) * m];
            let orow = &mut out[i * m..(i + 1) * m];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

fn bench_alloc_churn(c: &mut Criterion) {
    report_alloc_counts();

    let mut group = c.benchmark_group("alloc_churn");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    for (label, disabled) in [("pooled", false), ("unpooled", true)] {
        pool::force_disable(disabled);
        let mut w = tgcn_workload();
        epoch(&mut w); // steady-state before sampling
        group.bench_with_input(BenchmarkId::new("tgcn_epoch", label), &(), |b, _| {
            b.iter(|| std::hint::black_box(epoch(&mut w)))
        });
        pool::force_disable(false);
    }
    group.finish();

    // Kernel ablation: the cache-blocked register-tiled matmul vs the plain
    // i-k-j loop the seed shipped, on the dense-layer shapes TGNN cells hit.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut group = c.benchmark_group("matmul_tiling");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    for &(n, k, m) in &[
        (2000usize, 64usize, 64usize),
        (5000, 16, 16),
        (512, 256, 256),
    ] {
        let a = Tensor::rand_uniform((n, k), -1.0, 1.0, &mut rng);
        let b_t = Tensor::rand_uniform((k, m), -1.0, 1.0, &mut rng);
        let (av, bv) = (a.data().to_vec(), b_t.data().to_vec());
        let id = format!("{n}x{k}x{m}");
        group.bench_with_input(BenchmarkId::new("tiled", &id), &(), |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul(&b_t)))
        });
        group.bench_with_input(BenchmarkId::new("naive", &id), &(), |bch, _| {
            bch.iter(|| std::hint::black_box(naive_matmul(&av, &bv, n, k, m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alloc_churn);
criterion_main!(benches);
