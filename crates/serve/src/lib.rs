//! `stgraph-serve` — streaming inference for trained temporal GNNs.
//!
//! Training (the rest of the workspace) optimises a model over a *fixed*
//! DTDG. This crate covers what happens after: the model is frozen into a
//! checkpoint, the graph keeps changing, and queries arrive concurrently.
//! Three pieces:
//!
//! * [`checkpoint`] — the versioned, checksummed `.stgc` binary format plus
//!   a [`StateDict`](stgraph_tensor::StateDict) save/load pair usable with
//!   every model in `stgraph` and `pygt-baseline`;
//! * [`ingest`] — [`LiveGraph`](ingest::LiveGraph), a GPMA-backed graph
//!   advanced by [`UpdateBatch`](stgraph_dyngraph::UpdateBatch) diffs under
//!   a generation guard (readers never see a half-applied batch);
//! * [`engine`] — a micro-batching query engine that coalesces concurrent
//!   node queries into one batched recurrent step per graph generation and
//!   per resident model (queries carry a [`ModelKey`]), with latency
//!   percentiles and pool/memory stats in [`stats`];
//! * [`host`] — [`EngineHost`], which spawns the engine on its own thread
//!   (cells are `!Send`) behind a shared [`RequestQueue`], the submit
//!   boundary the network tier (`stgraph-net`) feeds;
//! * [`online`] — [`OnlineTrainer`](online::OnlineTrainer), the
//!   train-while-serving loop: incremental gradient steps on freshly
//!   ingested edges from a bounded time-indexed replay buffer, with weight
//!   generations published atomically and Adam state checkpointed
//!   crash-consistently;
//! * [`zoo`] — [`build_cell`], the architecture-name → cell constructor
//!   shared by the binaries and the per-tenant model registry.
//!
//! The `serve` binary wires them together: load an `.stgc` checkpoint,
//! replay a dataset's update stream, answer queries, print the report.
//! The network edge — HTTP + binary protocols, tenants, admission — lives
//! in the `stgraph-net` crate on top of this one.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod host;
pub mod ingest;
pub mod manager;
pub mod online;
pub mod stats;
pub mod zoo;

pub use checkpoint::{load_checkpoint, load_into, save_checkpoint, save_model, CheckpointError};
pub use engine::{
    InferenceEngine, ModelKey, ModelProvider, QueryResponse, RequestQueue, ServeConfig, ServeError,
    Ticket, DEFAULT_MODEL,
};
pub use host::EngineHost;
pub use ingest::{IngestError, IngestStats, LiveGraph};
pub use manager::CheckpointManager;
pub use online::{
    OnlineConfig, OnlineError, OnlineGauges, OnlineStats, OnlineTrainer, PublishedWeights,
    ReplayBuffer, ReplayEntry,
};
pub use stats::{LatencyRecorder, ServeReport};
pub use zoo::build_cell;
