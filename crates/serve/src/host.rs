//! [`EngineHost`] — owns the engine thread so `Send` callers (the network
//! tier, tests, binaries) can serve without touching the `!Send` model.
//!
//! Models built on [`stgraph_tensor::Param`] are reference-counted and must
//! live on exactly one thread. `EngineHost::spawn` takes a *builder
//! closure* instead of an engine: the closure (which is `Send` — it closes
//! over checkpoint entries, dataset handles, registry `Arc`s, all plain
//! data) runs on the freshly spawned engine thread, constructs the
//! [`InferenceEngine`] there, and the thread then serves the shared
//! [`RequestQueue`] until [`EngineHost::shutdown`] closes it.

use crate::engine::{InferenceEngine, RequestQueue, ServeConfig};
use crate::stats::ServeReport;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A handle to a running engine thread plus the queue that feeds it.
pub struct EngineHost {
    queue: Arc<RequestQueue>,
    handle: Option<JoinHandle<ServeReport>>,
}

impl EngineHost {
    /// Spawns the engine thread: `build` runs *on that thread* to construct
    /// the engine (cells are `!Send`; their parts — checkpoint entries,
    /// features, the live graph source — are `Send`), then the thread
    /// serves the returned queue until it is closed.
    pub fn spawn(
        config: ServeConfig,
        build: impl FnOnce() -> InferenceEngine + Send + 'static,
    ) -> EngineHost {
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let q = Arc::clone(&queue);
        let handle = std::thread::Builder::new()
            .name("stgraph-engine".into())
            .spawn(move || {
                let mut engine = build();
                let start = Instant::now();
                engine.run(&q, &config);
                engine.report(start.elapsed())
            })
            .expect("spawn engine thread");
        EngineHost {
            queue,
            handle: Some(handle),
        }
    }

    /// The queue producers submit to. Clone the `Arc` freely across
    /// threads.
    pub fn queue(&self) -> &Arc<RequestQueue> {
        &self.queue
    }

    /// Closes the queue, waits for the engine to drain it, and returns the
    /// run's report.
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        self.handle
            .take()
            .expect("shutdown called once")
            .join()
            .expect("engine thread panicked")
    }
}

impl Drop for EngineHost {
    /// A dropped host still closes the queue and joins, so no engine
    /// thread ever outlives its handle.
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.queue.close();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::LiveGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use stgraph::tgnn::Tgcn;
    use stgraph_dyngraph::source::DtdgSource;
    use stgraph_tensor::nn::ParamSet;
    use stgraph_tensor::Tensor;

    #[test]
    fn host_spawns_serves_and_reports() {
        let src = DtdgSource::from_snapshot_edges(
            4,
            vec![vec![(0, 1), (1, 2), (2, 3)], vec![(0, 1), (2, 3), (3, 0)]],
        );
        let host = EngineHost::spawn(ServeConfig::default(), move || {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut ps = ParamSet::new();
            let cell = Tgcn::new(&mut ps, "cell", 2, 3, &mut rng);
            let x = Tensor::rand_uniform((4, 2), -1.0, 1.0, &mut rng);
            let live = LiveGraph::from_source(&src);
            InferenceEngine::new(Box::new(cell), x, live, "seastar")
        });
        let resp = host.queue().submit(2).unwrap().wait().unwrap();
        assert_eq!(resp.node, 2);
        assert_eq!(resp.values.len(), 3);
        let report = host.shutdown();
        assert_eq!(report.queries, 1);
    }

    #[test]
    fn dropped_host_joins_cleanly() {
        let src = DtdgSource::from_snapshot_edges(3, vec![vec![(0, 1), (1, 2)]]);
        let host = EngineHost::spawn(ServeConfig::default(), move || {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut ps = ParamSet::new();
            let cell = Tgcn::new(&mut ps, "cell", 2, 2, &mut rng);
            let x = Tensor::rand_uniform((3, 2), -1.0, 1.0, &mut rng);
            InferenceEngine::new(Box::new(cell), x, LiveGraph::from_source(&src), "seastar")
        });
        drop(host); // must not hang or leak the engine thread
    }
}
