//! Rotated checkpoint retention with corruption rollback.
//!
//! A [`CheckpointManager`] owns a directory of sequence-numbered `.stgc`
//! files (`{prefix}-000042.stgc`). Saves append the next sequence number
//! (written through the crash-safe tmp+rename path, retried with backoff
//! when a `checkpoint.write`/`checkpoint.rename` fault fires) and prune to
//! the newest `keep` files. Loads walk newest → oldest, skipping any file
//! that fails validation — bad magic, truncation, CRC mismatch — so a torn
//! or bit-rotted latest checkpoint automatically rolls back to the newest
//! good one, with each skip counted on the shared `faults.rollbacks`
//! telemetry counter.

use crate::checkpoint::{decode, save_checkpoint, CheckpointError};
use std::path::{Path, PathBuf};
use stgraph_faultline::RetryPolicy;
use stgraph_tensor::{StateDict, StateEntry};

/// Manages a directory of rotated, sequence-numbered `.stgc` checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    prefix: String,
    keep: usize,
    retry: RetryPolicy,
}

impl CheckpointManager {
    /// A manager over `dir` (created if missing at first save), naming
    /// files `{prefix}-{seq:06}.stgc` and retaining the newest `keep`.
    pub fn new(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        keep: usize,
    ) -> CheckpointManager {
        CheckpointManager {
            dir: dir.into(),
            prefix: prefix.into(),
            keep: keep.max(1),
            retry: RetryPolicy::default(),
        }
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many checkpoints are retained after each save.
    pub fn keep(&self) -> usize {
        self.keep
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}-{:06}.stgc", self.prefix, seq))
    }

    /// Every `{prefix}-NNNNNN.stgc` in the directory, sorted by ascending
    /// sequence number. Files that don't match the naming scheme are
    /// ignored (the directory may hold other artifacts).
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        for entry in entries {
            let path = entry.map_err(CheckpointError::Io)?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name
                .strip_prefix(self.prefix.as_str())
                .and_then(|s| s.strip_prefix('-'))
                .and_then(|s| s.strip_suffix(".stgc"))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, path));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Saves `entries` as the next checkpoint in sequence and prunes old
    /// files down to `keep`. Injected save faults (torn write, lost
    /// rename) are retried with exponential backoff; the sequence number
    /// is claimed once, so a retried save lands at the same path.
    pub fn save(&self, entries: &[StateEntry]) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(&self.dir).map_err(CheckpointError::Io)?;
        let next = self.list()?.last().map(|(seq, _)| seq + 1).unwrap_or(0);
        let path = self.path_for(next);
        stgraph_faultline::retry(&self.retry, || save_checkpoint(&path, entries))?;
        self.prune()?;
        Ok(path)
    }

    /// Saves a model's parameters as the next checkpoint in sequence.
    pub fn save_model<M: StateDict + ?Sized>(&self, model: &M) -> Result<PathBuf, CheckpointError> {
        self.save(&model.to_state_dict())
    }

    /// Deletes all but the newest `keep` checkpoints (and any stale
    /// `.stgc.tmp` debris a crashed save left behind).
    pub fn prune(&self) -> Result<(), CheckpointError> {
        let files = self.list()?;
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                std::fs::remove_file(path).map_err(CheckpointError::Io)?;
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.to_str().is_some_and(|p| p.ends_with(".stgc.tmp")) {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(())
    }

    /// Loads the newest checkpoint that passes full validation, rolling
    /// back over corrupt files (bad magic, truncation, checksum mismatch,
    /// malformed structure) newest → oldest. Returns the winning sequence
    /// number and its entries. Every skipped file bumps the
    /// `faults.rollbacks` counter; if no file validates, the typed
    /// [`CheckpointError::NoValidCheckpoint`] reports how many were tried.
    pub fn load_latest(&self) -> Result<(u64, Vec<StateEntry>), CheckpointError> {
        let files = self.list()?;
        let mut rejected = 0usize;
        for (seq, path) in files.iter().rev() {
            match std::fs::read(path)
                .map_err(CheckpointError::Io)
                .and_then(|b| decode(&b))
            {
                Ok(entries) => return Ok((*seq, entries)),
                Err(e) => {
                    rejected += 1;
                    stgraph_faultline::note_rollback();
                    eprintln!("checkpoint {} rejected ({e}); rolling back", path.display());
                }
            }
        }
        Err(CheckpointError::NoValidCheckpoint { rejected })
    }

    /// Loads the newest valid checkpoint into `model` by parameter name.
    /// The model is untouched if nothing validates or the entries don't
    /// fit. Returns the loaded sequence number.
    pub fn load_latest_into<M: StateDict + ?Sized>(
        &self,
        model: &M,
    ) -> Result<u64, CheckpointError> {
        let (seq, entries) = self.load_latest()?;
        model.try_load_state_dict(&entries)?;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph_tensor::Shape;

    fn entries(tag: f32) -> Vec<StateEntry> {
        vec![("w".into(), Shape::Vec(3), vec![tag, tag + 1.0, tag + 2.0])]
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stgc-mgr-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn saves_rotate_and_prune_to_keep() {
        let dir = tmp_dir("rotate");
        let mgr = CheckpointManager::new(&dir, "model", 3);
        for i in 0..5 {
            mgr.save(&entries(i as f32)).unwrap();
        }
        let files = mgr.list().unwrap();
        assert_eq!(files.len(), 3, "pruned to keep");
        let seqs: Vec<u64> = files.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [2, 3, 4], "oldest pruned, sequence monotone");
        let (seq, e) = mgr.load_latest().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(e[0].2[0], 4.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_rolls_back_to_last_good() {
        let dir = tmp_dir("rollback");
        let mgr = CheckpointManager::new(&dir, "model", 4);
        for i in 0..3 {
            mgr.save(&entries(i as f32)).unwrap();
        }
        // Corrupt the newest file mid-body; CRC catches it.
        let (_, newest) = mgr.list().unwrap().last().cloned().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&newest, &bytes).unwrap();
        let before = stgraph_faultline::rollback_count();
        let (seq, e) = mgr.load_latest().unwrap();
        assert_eq!(seq, 1, "rolled back past the corrupt newest");
        assert_eq!(e[0].2[0], 1.0);
        // >= because the counter is process-global and concurrent tests
        // (or an env-armed fault plan) may also record rollbacks.
        assert!(stgraph_faultline::rollback_count() - before >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_corrupt_everything_is_typed() {
        let dir = tmp_dir("allbad");
        let mgr = CheckpointManager::new(&dir, "model", 4);
        for i in 0..2 {
            mgr.save(&entries(i as f32)).unwrap();
        }
        for (_, path) in mgr.list().unwrap() {
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..5]).unwrap(); // truncate
        }
        match mgr.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { rejected }) => assert_eq!(rejected, 2),
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_directory_is_typed() {
        let dir = tmp_dir("empty");
        let mgr = CheckpointManager::new(&dir, "model", 2);
        assert!(matches!(
            mgr.load_latest(),
            Err(CheckpointError::NoValidCheckpoint { rejected: 0 })
        ));
        assert_eq!(mgr.list().unwrap().len(), 0);
    }

    #[test]
    fn save_retries_through_injected_write_faults() {
        let _g = stgraph_faultline::test_lock();
        let dir = tmp_dir("faulty");
        let mgr = CheckpointManager::new(&dir, "model", 2);
        // The first save's write attempt tears; the second save's rename
        // attempt vanishes. Both saves must still land via retry.
        stgraph_faultline::set_plan(
            stgraph_faultline::FaultPlan::new()
                .fail_nth("checkpoint.write", 1)
                .fail_nth("checkpoint.rename", 2),
        );
        mgr.save(&entries(1.0)).unwrap();
        mgr.save(&entries(2.0)).unwrap();
        stgraph_faultline::clear_plan();
        let (seq, e) = mgr.load_latest().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(e[0].2[0], 2.0);
        assert_eq!(mgr.list().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
