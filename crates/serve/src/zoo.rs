//! The serving-side model zoo: builds any of the workspace's recurrent
//! cells by architecture name, with the training binaries' exact RNG draw
//! order, so checkpoint weights load into bit-identical parameter shapes.
//!
//! Shared by the `serve` binary, the network tier's model registry (which
//! materialises per-tenant checkpoints on the engine thread) and tests.

use rand_chacha::ChaCha8Rng;
use stgraph::tgnn::{GConvGru, GConvLstm, RecurrentCell, Tgcn};
use stgraph::tgnn_ext::Dcrnn;
use stgraph_tensor::nn::ParamSet;

/// Architecture names [`build_cell`] accepts.
pub const ARCHITECTURES: [&str; 4] = ["tgcn", "gconvgru", "gconvlstm", "dcrnn"];

/// Builds the named cell, registering its parameters (named under `"cell"`)
/// into `params`. Returns `None` for an unknown architecture.
pub fn build_cell(
    arch: &str,
    params: &mut ParamSet,
    features: usize,
    hidden: usize,
    rng: &mut ChaCha8Rng,
) -> Option<Box<dyn RecurrentCell>> {
    Some(match arch {
        "tgcn" => Box::new(Tgcn::new(params, "cell", features, hidden, rng)),
        "gconvgru" => Box::new(GConvGru::new(params, "cell", features, hidden, 2, rng)),
        "gconvlstm" => Box::new(GConvLstm::new(params, "cell", features, hidden, 2, rng)),
        "dcrnn" => Box::new(Dcrnn::new(params, "cell", features, hidden, 2, rng)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_listed_architecture_builds() {
        for arch in ARCHITECTURES {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut ps = ParamSet::new();
            let cell = build_cell(arch, &mut ps, 3, 4, &mut rng).expect(arch);
            // GConvLstm's served width is 2×hidden (it carries cell state).
            assert!(cell.hidden_size() >= 4, "{arch}");
            assert!(!ps.is_empty(), "{arch} must register parameters");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(build_cell("nope", &mut ParamSet::new(), 3, 4, &mut rng).is_none());
    }
}
